# Convenience targets for the POSG reproduction.

PYTHON ?= python
# every target runs against the in-tree sources without an install step
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: install test bench bench-throughput bench-telemetry bench-audit \
	bench-flightrecorder bench-lineage bench-history bench-parallel \
	bench-supervision chaos chaos-parallel observe multisource \
	multisource-coord attribution latency figures figures-paper-scale \
	examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# data-plane throughput baseline: writes BENCH_throughput.json at the
# repo root (REPRO_REPS / REPRO_SCALE scale the measurement)
bench-throughput:
	$(PYTHON) benchmarks/bench_throughput.py

# telemetry overhead gate: writes BENCH_telemetry_overhead.json and
# fails if disabled-mode telemetry costs more than 3%
bench-telemetry:
	$(PYTHON) benchmarks/bench_telemetry_overhead.py

# estimator-audit overhead gate: writes BENCH_audit_overhead.json and
# fails if a sparse audit costs more than 3% or the default sampled
# audit more than 10%
bench-audit:
	$(PYTHON) benchmarks/bench_audit_overhead.py

# flight-recorder overhead gate: writes
# BENCH_flightrecorder_overhead.json and fails if a sparse recorder
# costs more than 3% or the default sampled recorder more than 10%
# (both vs the uninstrumented sharded run)
bench-flightrecorder:
	$(PYTHON) benchmarks/bench_flightrecorder_overhead.py

# lineage-tracer overhead gate: writes BENCH_lineage_overhead.json and
# fails if a sparse tracer costs more than 3% or the default sampled
# tracer more than 10% (both vs the uninstrumented sharded run)
bench-lineage:
	$(PYTHON) benchmarks/bench_lineage_overhead.py

# append {throughput, telemetry overhead, audit overhead} to
# BENCH_history.jsonl with provenance; fails (without appending) if
# throughput regressed more than 10% vs the last recorded entry
bench-history:
	$(PYTHON) benchmarks/bench_history.py

# multi-process parallel data plane: sequential vs 1/2/4-worker
# throughput on the s=4 sharded configuration; writes
# BENCH_parallel.json and fails on any bit-identity mismatch (the 3x
# speedup target is enforced only on hosts with >= 4 cores)
bench-parallel:
	$(PYTHON) benchmarks/bench_parallel.py

# fault-free supervision overhead gate: writes BENCH_supervision.json
# and fails if armed worker supervision costs more than 3% vs the
# strict (detect-only) parallel baseline
bench-supervision:
	$(PYTHON) benchmarks/bench_supervision.py

# fault-injection acceptance scenario: 10% control-plane loss plus one
# mid-stream crash; writes report.json/metrics.prom/trace.jsonl under
# chaos-out/ and exits non-zero unless the scheduler recovers to RUN
chaos:
	$(PYTHON) -m repro.experiments chaos --scale 0.25 --output chaos-out

# process-level chaos against the parallel engine: a worker crash and a
# worker hang injected mid-run under message loss; writes
# recovery_report.json (plus report.json/trace.jsonl) under
# chaos-parallel-out/ and exits non-zero unless the disturbed run is
# bit-identical to the sequential engine AND fully healed by
# respawn-replay
chaos-parallel:
	$(PYTHON) -m repro.experiments chaos --parallel 2 --scale 0.25 --output chaos-parallel-out

# scheduling-quality observatory: estimator audit, decision-quality
# metrics, phase profile and dashboard; writes quality_report.{json,html},
# metrics.prom, profile.json and flamegraph.txt under observe-out/
observe:
	$(PYTHON) -m repro.experiments observe --scale 0.25 --output observe-out

# multi-source sharding sweep: L(s)/L(1) for s in {1,2,4,8}, every
# point both plain and with cross-shard coordination on; writes both
# degradation curves to multisource-out/multisource.json and exits
# non-zero if s=1 diverges from the single-scheduler path, any shard
# never completes a sync round, or (at full scale) the coordinated
# curve fails the L(8)/L(1) < 3 flatness gate
multisource:
	$(PYTHON) -m repro.experiments multisource --scale 0.25 --output multisource-out

# the same sweep with the parallel-engine bit-identity leg armed — the
# configuration the multisource-coord CI job runs
multisource-coord:
	$(PYTHON) -m repro.experiments multisource --scale 0.25 --parallel 2 --output multisource-coord-out

# flight-recorder attribution sweep: reruns the multisource sweep under
# the cross-shard flight recorder through all three engines (timelines
# gated bit-identical) and decomposes each point's excess L into
# staleness / collision / residual; writes attribution.{json,html}
# under attribution-out/
attribution:
	$(PYTHON) -m repro.experiments attribution --scale 0.25 --output attribution-out

# per-tuple latency decomposition sweep: runs the lineage tracer over
# round-robin and POSG at s in {1,2,4} through all three engines
# (timelines gated bit-identical, partition gated exact) and writes
# latency_report.{json,html} + metrics.prom under latency-out/
latency:
	$(PYTHON) -m repro.experiments latency --scale 0.25 --output latency-out

# regenerate every paper figure without pytest
figures:
	$(PYTHON) -m repro.experiments all

# paper-scale reproduction (hours of CPU)
figures-paper-scale:
	REPRO_REPS=100 $(PYTHON) -m repro.experiments all

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/policy_comparison.py 16384 5
	$(PYTHON) examples/queue_dynamics.py
	$(PYTHON) examples/load_shift_adaptation.py
	$(PYTHON) examples/tweet_enrichment_topology.py 50000 5
	$(PYTHON) examples/sketch_playground.py

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis build *.egg-info src/*.egg-info
