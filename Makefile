# Convenience targets for the POSG reproduction.

PYTHON ?= python

.PHONY: install test bench bench-throughput figures examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# data-plane throughput baseline: writes BENCH_throughput.json at the
# repo root (REPRO_REPS / REPRO_SCALE scale the measurement)
bench-throughput:
	$(PYTHON) benchmarks/bench_throughput.py

# regenerate every paper figure without pytest
figures:
	$(PYTHON) -m repro.experiments all

# paper-scale reproduction (hours of CPU)
figures-paper-scale:
	REPRO_REPS=100 $(PYTHON) -m repro.experiments all

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/policy_comparison.py 16384 5
	$(PYTHON) examples/queue_dynamics.py
	$(PYTHON) examples/load_shift_adaptation.py
	$(PYTHON) examples/tweet_enrichment_topology.py 50000 5
	$(PYTHON) examples/sketch_playground.py

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis build *.egg-info src/*.egg-info
