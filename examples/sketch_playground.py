#!/usr/bin/env python
"""Inside POSG's estimator: Count-Min sketches and Theorem 4.3.

The scheduler never sees true execution times — only the ratio of two
Count-Min sketches.  This example shows (1) how good those estimates are
on a skewed stream, (2) how they collapse toward the global mean on a
uniform stream (Theorem 4.3's regime), and (3) the closed-form
expectation matching simulation.

Run:  python examples/sketch_playground.py
"""

import numpy as np

from repro.analysis import expected_estimator_ratio, paper_numerical_application
from repro.core import FWPair, POSGConfig
from repro.core.matrices import make_shared_hashes
from repro.workloads import ExecutionTimeModel, UniformItems, ZipfItems


def feed(pair, distribution, model, m, rng):
    items = distribution.sample(m, rng)
    for item in items:
        pair.update(int(item), model.time_of(int(item)))
    return items


def report(pair, model, items, label):
    top_items = np.argsort(np.bincount(items, minlength=model.n))[::-1][:8]
    print(f"\n{label}: estimates for the 8 most frequent items")
    print(f"{'item':>6}  {'true (ms)':>9}  {'estimated':>9}  {'error':>7}")
    for item in top_items:
        true = model.time_of(int(item))
        estimate = pair.estimate(int(item))
        print(f"{item:>6}  {true:>9.1f}  {estimate:>9.1f}  "
              f"{estimate - true:>+7.1f}")


def main() -> None:
    rng = np.random.default_rng(5)
    config = POSGConfig(rows=4, cols=54)  # the paper's 4 x 54 matrices
    n, m = 4096, 32_768
    model = ExecutionTimeModel(n=n, w_n=64, w_min=1, w_max=64, rng=rng)

    # --- skewed stream: heavy hitters dominate their cells --------------
    pair = FWPair(make_shared_hashes(config, rng))
    items = feed(pair, ZipfItems(n, 1.5), model, m, rng)
    report(pair, model, items, "Zipf-1.5 stream")

    # --- uniform stream: everything blends toward the mean --------------
    pair = FWPair(make_shared_hashes(config, rng))
    items = feed(pair, UniformItems(n), model, m, rng)
    report(pair, model, items, "uniform stream (Theorem 4.3's worst case)")
    print(f"\nglobal mean execution time: {pair.mean_execution_time():.1f} ms"
          "  <- uniform estimates collapse toward this value")

    # --- Theorem 4.3, closed form ----------------------------------------
    app = paper_numerical_application()
    print("\nTheorem 4.3 numerical application (c=55, n=4096, w in 1..64):")
    print(f"  E{{W_v/C_v}} ranges over [{app.expectation_low:.2f}, "
          f"{app.expectation_high:.2f}]  (paper: [32.08, 32.92])")
    print(f"  Pr{{min over 10 rows >= 48}} <= {app.min_rows_bound_at_48:.4f} "
          "(paper: <= 0.024)")
    weights = np.repeat(np.arange(1.0, 65.0), n // 64)
    for w_v in (1.0, 32.0, 64.0):
        print(f"  closed-form E{{W_v/C_v}} for w_v={w_v:>4.0f}: "
              f"{expected_estimator_ratio(w_v, weights, 55):.2f}")


if __name__ == "__main__":
    main()
