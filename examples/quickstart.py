#!/usr/bin/env python
"""Quickstart: schedule one stream with POSG and compare against
Round-Robin and the Full-Knowledge oracle.

Run:  python examples/quickstart.py

This walks the library's three layers:

1. generate a synthetic workload (Section V-A of the paper);
2. simulate the scheduling stage under three grouping policies;
3. report the paper's metrics (average completion time L, speedup S_L).
"""

import numpy as np

from repro.core import POSGConfig, POSGGrouping, RoundRobinGrouping
from repro.core.grouping import FullKnowledgeGrouping
from repro.simulator import simulate_stream
from repro.workloads import StreamSpec, ZipfItems, generate_stream


def main() -> None:
    # --- 1. a skewed stream: 32,768 tuples over 4,096 distinct items,
    #        execution times 1..64 ms randomly associated to items -------
    spec = StreamSpec(m=32_768, n=4_096, w_n=64, w_min=1.0, w_max=64.0, k=5)
    stream = generate_stream(
        ZipfItems(spec.n, alpha=1.0), spec, np.random.default_rng(seed=42)
    )
    print(f"stream: {stream.m} tuples, mean execution time "
          f"{stream.average_time:.1f} ms, label {stream.label!r}")

    # --- 2. three grouping policies on identical input ------------------
    k = 5
    posg_config = POSGConfig(
        window_size=128,        # instance-side FSM window N
        mu=0.05,                # snapshot stability tolerance (Eq. 1)
        rows=4, cols=54,        # Count-Min shape (paper: eps=0.05, delta=0.1)
        merge_matrices=True,    # scheduler accumulates incoming sketches
        pooled_estimates=True,  # instances are uniform: average their views
    )
    results = {}
    results["round_robin"] = simulate_stream(stream, RoundRobinGrouping(), k=k)
    results["posg"] = simulate_stream(
        stream, POSGGrouping(posg_config), k=k, rng=np.random.default_rng(7)
    )
    # the oracle baseline receives the true execution time of every tuple
    results["full_knowledge"] = simulate_stream(
        stream, lambda oracle: FullKnowledgeGrouping(oracle), k=k
    )

    # --- 3. the paper's metrics ------------------------------------------
    baseline = results["round_robin"].stats
    print(f"\n{'policy':>15}  {'L (ms)':>10}  {'speedup':>8}")
    for name, result in results.items():
        stats = result.stats
        print(f"{name:>15}  {stats.average_completion_time:>10.1f}  "
              f"{stats.speedup_over(baseline):>8.2f}")

    posg = results["posg"]
    print(f"\nPOSG entered its RUN state at tuple {posg.run_entry_index()} "
          f"and exchanged {posg.control_messages} control messages "
          f"({posg.control_bits / 8 / 1024:.1f} KiB) for "
          f"{stream.m} data tuples.")


if __name__ == "__main__":
    main()
