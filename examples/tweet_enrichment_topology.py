#!/usr/bin/env python
"""The paper's motivating application on the mini-Storm engine.

A stream of tweets mentions entities of three kinds — *media* (enriched
with historical data from a database, ~25 ms), *politicians* (statistics
gathering, ~5 ms) and *others* (passed through, ~1 ms).  Execution time
therefore depends on tuple content, which is exactly the regime where
Round-Robin shuffle grouping (Storm's stock implementation, "ASSG")
queues tuples behind slow ones while other instances idle.

This example builds the Figure 12 topology twice — once with ASSG, once
with POSG as a custom stream grouping — and reports completion times and
tuple timeouts.

Run:  python examples/tweet_enrichment_topology.py [tweets] [k]
"""

import sys

import numpy as np

from repro.core import POSGConfig
from repro.storm import (
    ClusterConfig,
    LocalCluster,
    POSGShuffleGrouping,
    TopologyBuilder,
)
from repro.storm.components import STREAM_SPOUT_FIELDS, StreamSpout, WorkBolt
from repro.workloads import TwitterDatasetSpec, generate_twitter_stream


def build_cluster(stream, k, grouping_name, seed=11):
    """One topology: source spout -> k-way enrichment bolt."""
    builder = TopologyBuilder()
    builder.set_spout(
        "tweets", lambda: StreamSpout(stream), output_fields=STREAM_SPOUT_FIELDS
    )
    enrich = builder.set_bolt(
        "enrich", lambda: WorkBolt(stream.time_table), parallelism=k
    )
    if grouping_name == "posg":
        enrich.custom_grouping(
            "tweets",
            POSGShuffleGrouping(
                item_field="value",
                config=POSGConfig(window_size=128, rows=4, cols=54,
                                  merge_matrices=True, pooled_estimates=True),
                rng=np.random.default_rng(seed),
            ),
        )
    else:
        enrich.shuffle_grouping("tweets")  # Storm's stock ASSG
    cluster = LocalCluster(ClusterConfig(message_timeout=30_000.0))
    cluster.submit(builder.build())
    return cluster


def main() -> None:
    tweets = int(sys.argv[1]) if len(sys.argv) > 1 else 100_000
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 5

    # A synthetic stand-in for the paper's 2014-election crawl, fitted to
    # its reported statistics (n ~ 35k entities, top entity p = 0.065,
    # 25/5/1 ms class execution times).
    spec = TwitterDatasetSpec(m=tweets, k=k)
    stream = generate_twitter_stream(spec, np.random.default_rng(3))
    print(f"replaying {stream.m} tweets over {stream.n} entities on "
          f"k={k} enrichment tasks "
          f"(mean work {stream.average_time:.2f} ms/tweet)\n")

    reports = {}
    for grouping in ("assg", "posg"):
        cluster = build_cluster(stream, k, grouping)
        cluster.run()
        reports[grouping] = cluster.metrics

    print(f"{'grouping':>8}  {'L (ms)':>10}  {'completed':>9}  "
          f"{'timeouts':>8}  {'control msgs':>12}")
    for grouping, metrics in reports.items():
        print(f"{grouping:>8}  {metrics.average_completion_time():>10.1f}  "
              f"{metrics.completed:>9}  {metrics.timed_out:>8}  "
              f"{metrics.control_messages:>12}")

    speedup = (reports["assg"].average_completion_time()
               / reports["posg"].average_completion_time())
    print(f"\nPOSG speedup over ASSG: {speedup:.2f} "
          f"(paper Fig. 12 reports a mean of 1.37 across k)")


if __name__ == "__main__":
    main()
