#!/usr/bin/env python
"""Watch the queues: why POSG reduces completion time.

The per-tuple completion time the paper reports is (queueing delay +
execution time + network latency).  POSG's entire effect is on the
queueing term: it prevents the *transient imbalance* round-robin creates
when expensive tuples cluster on one instance.  This example samples
each instance's backlog (pending work, in ms) through the stream and
prints per-instance traces for Round-Robin vs POSG.

Run:  python examples/queue_dynamics.py
"""

import numpy as np

from repro.core import POSGConfig, POSGGrouping, RoundRobinGrouping
from repro.simulator import simulate_stream
from repro.workloads import StreamSpec, ZipfItems, generate_stream


def sparkline(values, width=64):
    blocks = " .:-=+*#%@"
    values = np.asarray(values, dtype=float)
    hi = values.max() if values.max() > 0 else 1.0
    step = max(1, len(values) // width)
    return "".join(
        blocks[min(len(blocks) - 1, int(v / hi * (len(blocks) - 1)))]
        for v in values[::step]
    )


def main() -> None:
    m, k = 32_768, 5
    stream = generate_stream(
        ZipfItems(4_096, 1.0), StreamSpec(m=m, k=k), np.random.default_rng(11)
    )
    config = POSGConfig(window_size=128, rows=4, cols=54,
                        merge_matrices=True, pooled_estimates=True)

    runs = {
        "round_robin": simulate_stream(
            stream, RoundRobinGrouping(), k=k, sample_queues_every=128
        ),
        "posg": simulate_stream(
            stream, POSGGrouping(config), k=k, sample_queues_every=128,
            rng=np.random.default_rng(12),
        ),
    }

    for name, result in runs.items():
        samples = result.queue_samples
        print(f"\n=== {name}: per-instance backlog "
              f"(max {samples.max():.0f} ms) ===")
        for instance in range(k):
            print(f"  inst {instance}  {sparkline(samples[:, instance])}")
        spread = samples.max(axis=1) - samples.min(axis=1)
        print(f"  mean backlog spread between instances: "
              f"{spread.mean():8.1f} ms")
        print(f"  average completion time L:            "
              f"{result.stats.average_completion_time:8.1f} ms")

    rr, posg = runs["round_robin"], runs["posg"]
    print(f"\nspeedup S_L = "
          f"{rr.stats.total_completion_time / posg.stats.total_completion_time:.2f}"
          f"  (smaller backlog spread -> less queueing -> lower L)")


if __name__ == "__main__":
    main()
