#!/usr/bin/env python
"""POSG adapting to an abrupt change in instance load (paper Fig. 10).

Halfway through a 150,000-tuple stream, the five operator instances'
speeds change abruptly (multipliers 1.05/1.025/1.0/0.975/0.95 become
0.90/0.95/1.0/1.05/1.10).  POSG's instance-side state machines detect
that their sketches no longer describe reality (Eq. 1 destabilizes),
re-stabilize, ship fresh matrices, and the scheduler resynchronizes —
all visible in the completion-time series this example prints.

Run:  python examples/load_shift_adaptation.py
"""

import numpy as np

from repro.core import POSGConfig, POSGGrouping, RoundRobinGrouping
from repro.core.scheduler import SchedulerState
from repro.simulator import simulate_stream
from repro.workloads import LoadShiftScenario, StreamSpec, ZipfItems, generate_stream


def sparkline(values, width=60):
    """Cheap terminal plot: one block character per bin."""
    blocks = " .:-=+*#%@"
    values = np.asarray(values)
    lo, hi = values.min(), values.max()
    span = hi - lo if hi > lo else 1.0
    step = max(1, len(values) // width)
    cells = [
        blocks[min(len(blocks) - 1, int((v - lo) / span * (len(blocks) - 1)))]
        for v in values[::step]
    ]
    return "".join(cells)


def main() -> None:
    m, k = 150_000, 5
    scenario = LoadShiftScenario.paper_figure10(m)
    stream = generate_stream(
        ZipfItems(4096, 1.0), StreamSpec(m=m, k=k), np.random.default_rng(0)
    )

    # Faithful Section V-A parameters: N = 1024, mu = 0.05, 4 x 54 sketch.
    policy = POSGGrouping(POSGConfig.paper_defaults())
    posg = simulate_stream(stream, policy, k=k, scenario=scenario,
                           rng=np.random.default_rng(1))
    rr = simulate_stream(stream, RoundRobinGrouping(), k=k, scenario=scenario)

    posg_series = posg.stats.time_series(bin_size=2000)
    rr_series = rr.stats.time_series(bin_size=2000)
    print("mean completion time per 2,000-tuple bin "
          "(low/high scaled per plot):")
    print(f"  POSG {sparkline(posg_series.mean)}")
    print(f"  RR   {sparkline(rr_series.mean)}")
    print(f"  shift at tuple {m // 2} "
          f"(bin {m // 2 // 2000} of {len(posg_series)})")

    print(f"\nPOSG diverged from Round-Robin at tuple "
          f"{posg.run_entry_index()} (scheduler entered RUN).")
    post_shift_syncs = [
        index for index, state in posg.state_transitions
        if state is SchedulerState.RUN and index > m // 2
    ]
    if post_shift_syncs:
        print(f"After the load shift, the scheduler received fresh matrices "
              f"and completed a resynchronization at tuple {post_shift_syncs[0]}.")

    half = m // 2
    for name, result in (("POSG", posg), ("Round-Robin", rr)):
        before = result.stats.completions[:half].mean()
        after = result.stats.completions[half:].mean()
        print(f"{name:>12}: L before shift {before:8.1f} ms, "
              f"after shift {after:8.1f} ms")
    speedup = (rr.stats.total_completion_time
               / posg.stats.total_completion_time)
    print(f"\noverall speedup S_L = {speedup:.2f}")


if __name__ == "__main__":
    main()
