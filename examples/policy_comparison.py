#!/usr/bin/env python
"""Tournament: every shuffle-grouping policy on the same stream.

Compares, on one seeded Zipf-1.0 stream (Section V-A parameters):

- ``random``          — uniform random assignment;
- ``key``             — hash-partitioning (key grouping, for contrast);
- ``round_robin``     — the stock baseline (Storm's ASSG);
- ``two_choices``     — power-of-two-choices over exact loads;
- ``posg``            — the paper's contribution (sketch estimates);
- ``full_knowledge``  — greedy with exact execution times (upper bound).

Run:  python examples/policy_comparison.py [m] [k]
"""

import sys

import numpy as np

from repro.core import (
    FullKnowledgeGrouping,
    POSGConfig,
    POSGGrouping,
    RoundRobinGrouping,
)
from repro.core.grouping import KeyGrouping, RandomGrouping, TwoChoicesGrouping
from repro.simulator import simulate_stream
from repro.workloads import StreamSpec, ZipfItems, generate_stream


def main() -> None:
    m = int(sys.argv[1]) if len(sys.argv) > 1 else 32_768
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 5

    stream = generate_stream(
        ZipfItems(4_096, 1.0), StreamSpec(m=m, k=k), np.random.default_rng(42)
    )
    posg_config = POSGConfig(window_size=128, rows=4, cols=54,
                             merge_matrices=True, pooled_estimates=True)
    policies = {
        "random": lambda oracle: RandomGrouping(),
        "key": lambda oracle: KeyGrouping(),
        "round_robin": lambda oracle: RoundRobinGrouping(),
        "two_choices": lambda oracle: TwoChoicesGrouping(oracle),
        "posg": lambda oracle: POSGGrouping(posg_config),
        "full_knowledge": lambda oracle: FullKnowledgeGrouping(oracle),
    }

    results = {}
    for name, factory in policies.items():
        results[name] = simulate_stream(
            stream, factory, k=k, rng=np.random.default_rng(7)
        )

    baseline = results["round_robin"].stats
    print(f"{'policy':>15}  {'L (ms)':>9}  {'p99 (ms)':>9}  {'speedup':>8}  "
          f"{'worst/avg inst.':>15}")
    order = sorted(results, key=lambda n: results[n].stats.average_completion_time)
    for name in order:
        stats = results[name].stats
        counts = stats.instance_tuple_counts(k)
        work = np.array([
            stream.base_times[stats.assignments == i].sum() for i in range(k)
        ])
        imbalance = work.max() / work.mean()
        print(f"{name:>15}  {stats.average_completion_time:>9.1f}  "
              f"{stats.percentile(99):>9.1f}  "
              f"{stats.speedup_over(baseline):>8.2f}  {imbalance:>15.3f}")

    print("\nNotes: 'key' pins every item to one instance, so a heavy item "
          "overloads it permanently — the paper's Section VI point that "
          "key-grouping balancers underperform for stateless operators. "
          "'two_choices' and 'full_knowledge' cheat: they read the true "
          "execution time; POSG only ever sees its sketches.")


if __name__ == "__main__":
    main()
