"""repro — Proactive Online Shuffle Grouping (POSG), reproduced.

A from-scratch Python implementation of

    N. Rivetti, E. Anceaume, Y. Busnel, L. Querzoni, B. Sericola.
    "Proactive Online Scheduling for Shuffle Grouping in Distributed
    Stream Processing Systems", MIDDLEWARE 2016.

Layers (see README.md / DESIGN.md):

- :mod:`repro.sketches`   — 2-universal hashing, Count-Min sketches;
- :mod:`repro.core`       — POSG itself: F/W matrices, the instance and
  scheduler state machines, the greedy online scheduler, grouping
  policies (POSG, Round-Robin, Full-Knowledge oracle, ...);
- :mod:`repro.simulator`  — discrete-event simulation of the scheduling
  stage (the substrate behind the paper's Figures 4-10);
- :mod:`repro.storm`      — a miniature Apache-Storm-like engine hosting
  POSG as a custom stream grouping (Figures 11-12);
- :mod:`repro.workloads`  — synthetic and Twitter-like stream generators;
- :mod:`repro.analysis`   — the paper's theorems, executable;
- :mod:`repro.experiments` — the harness regenerating every figure;
- :mod:`repro.telemetry`  — opt-in metrics registry, event tracing and
  run reports across all of the above (off by default, zero-cost when
  off);
- :mod:`repro.faults`     — seeded fault injection (control-message
  drop/delay/duplicate/reorder, instance crash-restarts, slow nodes)
  exercising the recovery defenses of
  :class:`~repro.core.config.RecoveryConfig`.
"""

from repro._version import __version__
from repro.core import (
    FWPair,
    FullKnowledgeGrouping,
    GroupingPolicy,
    InstanceTracker,
    POSGConfig,
    POSGGrouping,
    POSGScheduler,
    RecoveryConfig,
    RoundRobinGrouping,
)
from repro.faults import CrashFault, FaultInjector, FaultPlan, MessageFaults
from repro.simulator import CompletionStats, SimulationResult, simulate_stream
from repro.telemetry import (
    NULL_RECORDER,
    MetricsRegistry,
    RunReport,
    TelemetryRecorder,
    Tracer,
)
from repro.workloads import (
    Stream,
    StreamSpec,
    UniformItems,
    ZipfItems,
    generate_stream,
    generate_twitter_stream,
)

__all__ = [
    "__version__",
    "POSGConfig",
    "RecoveryConfig",
    "FaultPlan",
    "FaultInjector",
    "MessageFaults",
    "CrashFault",
    "POSGGrouping",
    "POSGScheduler",
    "InstanceTracker",
    "FWPair",
    "GroupingPolicy",
    "RoundRobinGrouping",
    "FullKnowledgeGrouping",
    "simulate_stream",
    "SimulationResult",
    "CompletionStats",
    "TelemetryRecorder",
    "NULL_RECORDER",
    "MetricsRegistry",
    "Tracer",
    "RunReport",
    "Stream",
    "StreamSpec",
    "UniformItems",
    "ZipfItems",
    "generate_stream",
    "generate_twitter_stream",
]
