"""The ``chaos`` CLI subcommand: POSG under injected faults.

Usage::

    python -m repro.experiments chaos
    python -m repro.experiments chaos --scale 0.1 --output out/

With ``--parallel N`` the subcommand instead runs **process-level
chaos** against the multi-process parallel engine
(:func:`run_parallel`): scripted :class:`~repro.faults.plan.WorkerFault`
events crash one shard worker and hang another mid-run while control
messages are being dropped, the
:class:`~repro.simulator.supervisor.WorkerSupervisor` kills and
respawns them with the failed segments replayed, and the run
self-gates on (1) output bit-identity to the sequential engine and
(2) full recovery (every failure healed, no degraded workers) —
exiting non-zero on any violation.  ``--output DIR`` additionally
writes ``recovery_report.json`` with the supervision block, the gate
verdicts and the measured recovery overhead.

Without ``--parallel``, runs a Figure 4-sized stream (m = 32,768
scaled, k = 5) twice with the self-healing control plane enabled (see
"Failure model and recovery" in DESIGN.md):

- a **fault-free** run — defenses armed but nothing to defend against;
- a **chaos** run on the same stream and seeds — 10% of every
  control-plane message class dropped, plus one seeded crash of an
  operator instance two thirds of the way through the stream.

It prints a Figure-10-style timeline (binned average completion time
for both runs, so the crash spike and the recovery back to baseline
are visible), the scheduler's defense counters, the completion-time
degradation ``L_chaos / L_fault_free``, and the estimator audit's
error quantiles split at the crash (the audit segments the stream at
the crash index, so the report shows W/F accuracy before and after
the restart).  With ``--output DIR`` it writes ``report.json`` (a v3
:class:`~repro.telemetry.report.RunReport` of the chaos run —
fault-free run as the baseline, fault summary, estimator-audit and
decision-quality blocks embedded), ``metrics.prom`` and
``trace.jsonl`` — the same artifact set as the ``telemetry``
subcommand.

The module is imported lazily by ``repro.experiments.cli`` and pulls
the core/simulator stack in only inside :func:`run`.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
from collections.abc import Sequence

#: control-plane loss rate of the acceptance scenario
DROP_RATE = 0.10
#: which instance the scripted crash takes down
CRASH_INSTANCE = 2
#: number of bins in the Figure-10-style timeline
TIMELINE_BINS = 24


def _timeline(completions, bins: int) -> list[float]:
    """Mean completion time per stream-order bin."""
    import numpy as np

    completions = np.asarray(completions, dtype=np.float64)
    edges = np.linspace(0, completions.size, bins + 1, dtype=np.int64)
    return [
        float(completions[lo:hi].mean()) if hi > lo else 0.0
        for lo, hi in zip(edges[:-1], edges[1:])
    ]


def run(
    scale: float | None = None,
    output: str | None = None,
    chunk_size: int = 2048,
    seed: int = 0,
) -> int:
    """Execute the chaos scenario; returns a process exit code."""
    import numpy as np

    from repro.core.config import POSGConfig, RecoveryConfig
    from repro.core.grouping import POSGGrouping
    from repro.core.scheduler import SchedulerState
    from repro.faults import CrashFault, FaultPlan, MessageFaults
    from repro.simulator.run import simulate_stream
    from repro.telemetry.audit import AuditConfig
    from repro.telemetry.quality import (
        compute_quality,
        execution_time_matrix,
        record_quality,
    )
    from repro.telemetry.recorder import TelemetryRecorder
    from repro.telemetry.report import RunReport
    from repro.telemetry.tracer import Tracer
    from repro.workloads.nonstationary import LoadShiftScenario
    from repro.workloads.synthetic import default_stream

    if scale is None:
        scale = float(os.environ.get("REPRO_SCALE", "1.0"))
    # the floor leaves a restarted instance enough stream to re-stabilize
    m = max(8_192, int(32_768 * scale))
    k = 5

    directory: pathlib.Path | None = None
    trace_path: pathlib.Path | None = None
    if output is not None:
        directory = pathlib.Path(output)
        directory.mkdir(parents=True, exist_ok=True)
        trace_path = directory / "trace.jsonl"

    # The chaos scenario stresses the control plane, not sketch accuracy,
    # so it uses a small Count-Min (2 x 16) over a compact item universe:
    # the matrices stabilize within the first third of the stream at every
    # scale, leaving room for the crash and the recovery after it.  The
    # window and the defense thresholds scale with the stream so the short
    # CI smoke run still completes sync rounds.
    window = min(256, max(64, m // 128))
    stream = default_stream(seed=seed, m=m, n=128)
    recovery = RecoveryConfig(
        sync_timeout=max(256, m // 32),
        staleness_limit=max(4096, m // 4),
    )
    config = POSGConfig(
        window_size=window, rows=2, cols=16, recovery=recovery
    )

    span = float(stream.arrivals[-1] - stream.arrivals[0])
    crash_index = 2 * m // 3
    crash = CrashFault(
        instance=CRASH_INSTANCE,
        at_ms=float(stream.arrivals[crash_index]),
        outage_ms=0.05 * span,
    )
    loss = MessageFaults(drop=DROP_RATE)
    plan = FaultPlan(
        matrices=loss,
        sync_requests=loss,
        sync_replies=loss,
        crashes=(crash,),
        seed=seed,
    )

    def simulate(policy, faults=None, telemetry=None, audit=None):
        return simulate_stream(
            stream,
            policy,
            k=k,
            rng=np.random.default_rng(seed + 1),
            chunk_size=chunk_size,
            telemetry=telemetry,
            faults=faults,
            audit=audit,
        )

    # Audit every routed tuple at chaos scale (the run is short) but
    # back off at paper scale; the segment boundary at the crash splits
    # the estimator-error quantiles into before/after-restart blocks.
    audit_config = AuditConfig(
        sample_every=max(8, m // 2048),
        segment_boundaries=(crash_index,),
    )

    tracer = Tracer(sink=str(trace_path)) if trace_path is not None else Tracer()
    with TelemetryRecorder(tracer=tracer) as recorder:
        # Fault-free reference: same config, same defenses, no injector —
        # un-instrumented so the registry holds only the chaos run.
        clean_policy = POSGGrouping(config)
        clean = simulate(clean_policy)

        chaos_policy = POSGGrouping(config, telemetry=recorder)
        chaos = simulate(
            chaos_policy, faults=plan, telemetry=recorder, audit=audit_config
        )
        # Decision quality vs the oracle: true times are scenario-free
        # here (constant multipliers; the crash stalls an instance but
        # does not slow tuples), so the matrix rebuild is exact.
        times = execution_time_matrix(
            stream, LoadShiftScenario.constant(k), k
        )
        quality = compute_quality(
            np.asarray(chaos.stats.assignments), times, k
        )
        record_quality(recorder, quality)
        report = RunReport.from_simulation(
            chaos, k, baseline=clean, telemetry=recorder, quality=quality
        )

    scheduler = chaos_policy.scheduler
    state = scheduler.state
    recovered = state is SchedulerState.RUN
    degradation = (
        chaos.stats.average_completion_time / clean.stats.average_completion_time
    )

    print(f"== chaos: POSG under faults (m={m}, k={k}) ==")
    print(
        f"plan: {DROP_RATE:.0%} drop on matrices/sync-requests/sync-replies; "
        f"crash instance {crash.instance} at {crash.at_ms:.0f} ms "
        f"(tuple {2 * m // 3}) for {crash.outage_ms:.0f} ms"
    )
    print()
    print("Figure-10-style timeline (mean completion ms per bin):")
    clean_bins = _timeline(clean.stats.completions, TIMELINE_BINS)
    chaos_bins = _timeline(chaos.stats.completions, TIMELINE_BINS)
    print(f"{'bin':>4}  {'fault-free':>12}  {'chaos':>12}")
    for index, (a, b) in enumerate(zip(clean_bins, chaos_bins)):
        print(f"{index:>4}  {a:>12.3f}  {b:>12.3f}")
    print()
    print(
        f"L fault-free = {clean.stats.average_completion_time:.3f} ms   "
        f"L chaos = {chaos.stats.average_completion_time:.3f} ms   "
        f"degradation = {degradation:.3f}x"
    )
    print(
        f"defenses: {scheduler.sync_retransmits} retransmits, "
        f"{scheduler.sync_rounds_abandoned} sync rounds abandoned, "
        f"{scheduler.watchdog_fallbacks} watchdog fallbacks, "
        f"{scheduler.restarts_detected} restarts detected"
    )
    print(f"final scheduler state: {state.name} (recovered={recovered})")
    audit_report = chaos.audit.report()
    segments = audit_report["segments"]
    print("estimator audit (mean |estimate - true|, ms):")
    for segment, label in zip(
        segments, ("before crash", "after crash")
    ):
        end = segment["end"] if segment["end"] is not None else m
        print(
            f"  {label:>12} [{segment['start']:>6}, {end:>6}): "
            f"{segment['samples']} samples, "
            f"mean |err| = {segment['mean_abs_error_ms']:.3f} ms"
        )
    makespan = quality["makespan"]
    print(
        f"quality: achieved/oracle makespan = "
        f"{makespan['achieved_vs_oracle']:.4f}, misrouted = "
        f"{quality['regret']['misroute_fraction']:.4f}"
    )

    if directory is not None:
        report_path = report.save(directory / "report.json")
        prom_path = directory / "metrics.prom"
        prom_path.write_text(recorder.registry.to_prometheus())
        print(f"wrote {report_path}")
        print(f"wrote {prom_path}")
        print(f"wrote {trace_path}")

    if not recovered:
        print("ERROR: scheduler did not recover to RUN", file=sys.stderr)
        return 1
    return 0


def run_parallel(
    workers: int = 2,
    scale: float | None = None,
    output: str | None = None,
    chunk_size: int = 2048,
    seed: int = 0,
) -> int:
    """Process-level chaos against the self-healing parallel engine.

    Crashes one shard worker and hangs another mid-run (scripted
    ``WorkerFault`` events) while 10% of every control-message class is
    dropped, lets the ``WorkerSupervisor`` respawn-and-replay, and
    gates on:

    1. **bit-identity** — the disturbed parallel run must match the
       sequential engine exactly (completions, assignments, FSM
       transitions, control traffic);
    2. **full recovery** — every injected failure detected and healed
       by respawn, no degraded workers.

    Returns non-zero if either gate fails.  The measured recovery
    overhead (faulted vs fault-free parallel wall-clock) is printed and
    written to ``recovery_report.json`` under ``--output``.
    """
    import json
    import time as time_module

    import numpy as np

    from repro.core.config import POSGConfig
    from repro.core.multisource import MultiSourcePOSGGrouping
    from repro.faults import FaultPlan, MessageFaults, WorkerFault
    from repro.simulator.parallel import simulate_stream_parallel
    from repro.simulator.run import simulate_stream
    from repro.simulator.supervisor import SupervisionConfig
    from repro.telemetry.recorder import TelemetryRecorder
    from repro.telemetry.report import RunReport
    from repro.telemetry.tracer import Tracer
    from repro.workloads.synthetic import default_stream

    if workers < 2:
        raise ValueError(
            f"parallel chaos needs >= 2 workers to disturb, got {workers}"
        )
    if scale is None:
        scale = float(os.environ.get("REPRO_SCALE", "1.0"))
    m = max(8_192, int(32_768 * scale))
    k = 5
    sources = 4
    window = min(256, max(64, m // 128))
    config = POSGConfig(window_size=window, rows=2, cols=16)
    stream = default_stream(seed=seed, m=m, n=128)

    directory: pathlib.Path | None = None
    if output is not None:
        directory = pathlib.Path(output)
        directory.mkdir(parents=True, exist_ok=True)

    loss = MessageFaults(drop=DROP_RATE)
    worker_faults = (
        WorkerFault(worker=1, segment=1, kind="crash"),
        WorkerFault(worker=0, segment=2, kind="hang", hang_ms=600.0),
    )
    plan = FaultPlan(
        matrices=loss,
        sync_requests=loss,
        sync_replies=loss,
        worker_faults=worker_faults,
        seed=seed,
    )
    supervision = SupervisionConfig(
        ack_deadline_s=0.25, max_respawns=2, degraded_policy="inline"
    )

    print(
        f"== chaos --parallel: worker supervision under process faults "
        f"(m={m}, k={k}, s={sources}, workers={workers}) =="
    )
    print(
        f"plan: {DROP_RATE:.0%} drop on every control channel; "
        "crash worker 1 at segment 1; hang worker 0 for 600 ms at "
        f"segment 2 (ack deadline {supervision.ack_deadline_s * 1000:.0f} ms, "
        f"max {supervision.max_respawns} respawns)"
    )

    def policy():
        return MultiSourcePOSGGrouping(sources, config)

    rng = lambda: np.random.default_rng(seed + 1)  # noqa: E731

    t0 = time_module.perf_counter()
    reference = simulate_stream(
        stream, policy(), k=k, rng=rng(), chunk_size=chunk_size, faults=plan
    )
    t_reference = time_module.perf_counter() - t0

    # fault-free parallel baseline for the recovery-overhead measurement
    # (message faults only, no process faults)
    clean_plan = FaultPlan(
        matrices=loss, sync_requests=loss, sync_replies=loss, seed=seed
    )
    t0 = time_module.perf_counter()
    simulate_stream_parallel(
        stream, policy(), workers=workers, k=k, rng=rng(),
        chunk_size=chunk_size, faults=clean_plan, supervision=supervision,
    )
    t_clean = time_module.perf_counter() - t0

    tracer = (
        Tracer(sink=str(directory / "trace.jsonl"))
        if directory is not None
        else Tracer()
    )
    with TelemetryRecorder(tracer=tracer) as recorder:
        t0 = time_module.perf_counter()
        disturbed = simulate_stream_parallel(
            stream,
            MultiSourcePOSGGrouping(sources, config, telemetry=recorder),
            workers=workers, k=k, rng=rng(), chunk_size=chunk_size,
            telemetry=recorder, faults=plan, supervision=supervision,
        )
        t_disturbed = time_module.perf_counter() - t0
        report = RunReport.from_simulation(
            disturbed, k, baseline=reference, telemetry=recorder
        )

    sup = disturbed.parallel["supervision"]
    failures = (
        sup["crashes_detected"] + sup["hangs_detected"] + sup["worker_errors"]
    )
    identical = (
        bool(
            np.array_equal(
                reference.stats.completions, disturbed.stats.completions
            )
        )
        and bool(
            np.array_equal(
                reference.stats.assignments, disturbed.stats.assignments
            )
        )
        and reference.state_transitions == disturbed.state_transitions
        and reference.control_messages == disturbed.control_messages
        and reference.control_bits == disturbed.control_bits
    )
    recovered = (
        bool(sup["recovered"])
        and failures >= len(worker_faults)
        and sup["respawns_total"] >= len(worker_faults)
    )
    overhead = t_disturbed / t_clean - 1.0 if t_clean > 0 else 0.0

    print()
    print("worker lifecycle:")
    for event in sup["lifecycle"]:
        detail = ", ".join(
            f"{key}={value}"
            for key, value in event.items()
            if key not in ("event", "worker", "segment")
        )
        print(
            f"  segment {event['segment']:>3}  worker {event['worker']}  "
            f"{event['event']}" + (f"  ({detail})" if detail else "")
        )
    print()
    print(
        f"supervision: {failures} failures detected "
        f"({sup['crashes_detected']} crashes, {sup['hangs_detected']} hangs), "
        f"{sup['respawns_total']} respawns, "
        f"{sup['replayed_segments']} segments replayed, "
        f"degraded workers = {sup['degraded_workers']}"
    )
    print(
        f"timing: sequential {t_reference:.2f} s, parallel fault-free "
        f"{t_clean:.2f} s, parallel disturbed {t_disturbed:.2f} s "
        f"(recovery overhead {overhead:+.1%})"
    )
    print(f"gate: bit-identical to sequential engine = {identical}")
    print(f"gate: fully recovered via respawn-replay = {recovered}")

    if directory is not None:
        recovery = {
            "schema": "posg-recovery-report/v1",
            "m": m,
            "k": k,
            "sources": sources,
            "workers": workers,
            "chunk_size": chunk_size,
            "seed": seed,
            "plan": plan.summary(),
            "supervision_config": supervision.summary(),
            "supervision": sup,
            "gates": {"bit_identical": identical, "recovered": recovered},
            "timing_seconds": {
                "sequential": t_reference,
                "parallel_fault_free": t_clean,
                "parallel_disturbed": t_disturbed,
                "recovery_overhead": overhead,
            },
        }
        recovery_path = directory / "recovery_report.json"
        recovery_path.write_text(json.dumps(recovery, indent=2) + "\n")
        report_path = report.save(directory / "report.json")
        print(f"wrote {recovery_path}")
        print(f"wrote {report_path}")
        print(f"wrote {directory / 'trace.jsonl'}")

    if not identical:
        print(
            "ERROR: disturbed parallel run diverged from the sequential "
            "engine",
            file=sys.stderr,
        )
        return 1
    if not recovered:
        print(
            "ERROR: supervisor did not fully recover "
            f"(failures={failures}, respawns={sup['respawns_total']}, "
            f"degraded={sup['degraded_workers']})",
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.chaos",
        description="Run POSG under injected faults and report recovery.",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="stream-length scale factor (1.0 = paper sizes)",
    )
    parser.add_argument(
        "--output", type=str, default=None,
        help="directory for report.json, metrics.prom and trace.jsonl",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=2048,
        help="simulator chunk size (0 = per-tuple reference engine)",
    )
    parser.add_argument("--seed", type=int, default=0, help="stream/fault seed")
    parser.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="run process-level chaos against the parallel engine with N "
        "workers (crash/hang injected mid-run; gated on bit-identity "
        "and full supervisor recovery)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.parallel is not None:
        return run_parallel(
            workers=args.parallel,
            scale=args.scale,
            output=args.output,
            chunk_size=args.chunk_size,
            seed=args.seed,
        )
    return run(
        scale=args.scale,
        output=args.output,
        chunk_size=args.chunk_size,
        seed=args.seed,
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
