"""The ``multisource`` CLI subcommand: POSG sharded across ``s`` sources.

Usage::

    python -m repro.experiments multisource
    python -m repro.experiments multisource --scale 0.25 --output out/

The paper deploys one scheduling operator; real topologies run ``s``
parallel upstream executors, each scheduling its own share of the
stream over the same ``k`` instances (see "Multi-source scheduling" in
DESIGN.md).  This experiment measures what that sharding costs: it runs
the same stream through
:class:`~repro.core.multisource.MultiSourcePOSGGrouping` for
``s in {1, 2, 4, 8}`` and reports the average completion time ``L(s)``
and the degradation curve ``L(s)/L(1)``, alongside each run's sync
activity, control-plane volume and decision quality against the
full-knowledge oracle.

Every sweep point runs twice: plain, and with the cross-shard
coordination layer on (:class:`~repro.core.config.CoordinationConfig`
defaults — local delta gossip plus sync-reply snooping), so the report
shows the degradation curve before and after coordination.

Built-in gates make the run self-checking:

- the ``s = 1`` run must be bit-identical to the single-scheduler
  :class:`~repro.core.grouping.POSGGrouping` path (same assignments,
  same control traffic) — the collapsed deployment *is* the paper's;
- every shard of every run must complete at least one sync round
  (otherwise the configuration starves the sharded control plane and
  the curve would compare unsynchronized schedulers);
- at full scale (``scale >= 1.0``) the *coordinated* curve must stay
  flat: ``L(8)/L(1) < 3.0`` — the uncoordinated baseline measured
  ~15.8x, so this is the tentpole claim of the coordination layer,
  enforced in the exit code.

With ``--output DIR`` it writes ``multisource.json`` holding both
degradation curves for downstream tooling (the CI smoke job uploads it).

The module is imported lazily by ``repro.experiments.cli`` and pulls
the core/simulator stack in only inside :func:`run`.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
from collections.abc import Sequence

#: shard counts the degradation curve sweeps
SOURCE_COUNTS = (1, 2, 4, 8)

#: the coordinated degradation ceiling enforced at full scale:
#: L(max s)/L(1) with gossip + snooping on (baseline measured ~15.8x)
COORDINATED_DEGRADATION_CEILING = 3.0


def run(
    scale: float | None = None,
    output: str | None = None,
    chunk_size: int = 2048,
    seed: int = 0,
    source_counts: Sequence[int] = SOURCE_COUNTS,
    parallel_workers: int | None = None,
) -> int:
    """Execute the multi-source sweep; returns a process exit code.

    With ``parallel_workers`` set, every sweep point additionally runs
    through the multi-process parallel engine with that many workers;
    the parallel result must be bit-identical to the sequential run
    (a third gate) and each row gains the measured throughput of both
    engines.
    """
    import time

    import numpy as np

    from repro.core.config import CoordinationConfig, POSGConfig
    from repro.core.grouping import POSGGrouping
    from repro.core.multisource import MultiSourcePOSGGrouping
    from repro.simulator.parallel import simulate_stream_parallel
    from repro.simulator.run import simulate_stream
    from repro.telemetry.quality import compute_quality, execution_time_matrix
    from repro.workloads.nonstationary import LoadShiftScenario
    from repro.workloads.synthetic import default_stream

    if scale is None:
        scale = float(os.environ.get("REPRO_SCALE", "1.0"))
    # the floor keeps every shard of the largest s past its first sync
    # round (each shard only sees m/s tuples)
    m = max(8_192, int(32_768 * scale))
    k = 5
    # same control-plane sizing as the chaos scenario: a small sketch
    # over a compact universe, window scaled so short smoke runs still
    # complete sync rounds on every shard
    window = min(256, max(64, m // 128))
    config = POSGConfig(window_size=window, rows=2, cols=16)
    stream = default_stream(seed=seed, m=m, n=128)
    times = execution_time_matrix(stream, LoadShiftScenario.constant(k), k)

    def simulate(policy):
        return simulate_stream(
            stream,
            policy,
            k=k,
            rng=np.random.default_rng(seed + 1),
            chunk_size=chunk_size,
        )

    print(f"== multisource: sharded POSG (m={m}, k={k}, window={window}) ==")

    # -- gate 1: s=1 collapses to the paper's single-scheduler path ----
    single = simulate(POSGGrouping(config))
    collapsed = simulate(MultiSourcePOSGGrouping(1, config))
    identical = bool(
        np.array_equal(single.stats.assignments, collapsed.stats.assignments)
        and single.control_bits == collapsed.control_bits
    )
    print(
        "s=1 vs single-scheduler POSG: "
        + ("bit-identical" if identical else "MISMATCH")
    )

    coordinated_config = POSGConfig(
        window_size=window, rows=2, cols=16,
        coordination=CoordinationConfig(),
    )
    curves: dict[str, list] = {"plain": [], "coordinated": []}
    starved = []
    parallel_mismatches = []
    for sources in source_counts:
        for label, shard_config in (
            ("plain", config),
            ("coordinated", coordinated_config),
        ):
            policy = MultiSourcePOSGGrouping(sources, shard_config)
            t0 = time.perf_counter()
            result = simulate(policy)
            sequential_elapsed = time.perf_counter() - t0
            parallel_row = None
            if parallel_workers is not None:
                t0 = time.perf_counter()
                parallel_result = simulate_stream_parallel(
                    stream,
                    MultiSourcePOSGGrouping(sources, shard_config),
                    workers=parallel_workers,
                    k=k,
                    rng=np.random.default_rng(seed + 1),
                    chunk_size=max(1, chunk_size),
                )
                parallel_elapsed = time.perf_counter() - t0
                matches = bool(
                    np.array_equal(
                        result.stats.assignments,
                        parallel_result.stats.assignments,
                    )
                    and np.array_equal(
                        result.stats.completions,
                        parallel_result.stats.completions,
                    )
                    and result.control_bits == parallel_result.control_bits
                )
                if not matches:
                    parallel_mismatches.append((label, sources))
                parallel_row = {
                    "workers": parallel_result.parallel["workers"],
                    "tuples_per_sec": m / parallel_elapsed,
                    "sequential_tuples_per_sec": m / sequential_elapsed,
                    "speedup": sequential_elapsed / parallel_elapsed,
                    "identical": matches,
                }
            rounds = [s.sync_rounds_completed for s in policy.schedulers]
            if min(rounds) < 1:
                starved.append((label, sources))
            quality = compute_quality(
                np.asarray(result.stats.assignments), times, k
            )
            stats = policy.stats()
            curves[label].append(
                {
                    "sources": sources,
                    "avg_completion_ms": float(
                        result.stats.average_completion_time
                    ),
                    "sync_rounds_min": int(min(rounds)),
                    "sync_rounds_total": int(sum(rounds)),
                    "control_bits": int(result.control_bits),
                    "misroute_fraction": float(
                        quality["regret"]["misroute_fraction"]
                    ),
                    "gossip_updates": int(stats["gossip_updates"]),
                    "gossip_billed": int(stats["gossip_billed"]),
                    "snoop_published": int(stats["snoop_published"]),
                    **({"parallel": parallel_row} if parallel_row else {}),
                }
            )

    rows = curves["plain"]
    rows_coordinated = curves["coordinated"]
    for bucket in (rows, rows_coordinated):
        base = bucket[0]["avg_completion_ms"]
        for row in bucket:
            row["degradation"] = row["avg_completion_ms"] / base

    print()
    print(
        f"{'s':>3}  {'L(s) ms':>10}  {'L(s)/L(1)':>9}  "
        f"{'coord L(s)':>10}  {'coord L/L1':>10}  {'gossip':>7}  "
        f"{'snoops':>6}  {'misrouted':>9}"
    )
    for row, coord_row in zip(rows, rows_coordinated):
        print(
            f"{row['sources']:>3}  {row['avg_completion_ms']:>10.3f}  "
            f"{row['degradation']:>9.3f}  "
            f"{coord_row['avg_completion_ms']:>10.3f}  "
            f"{coord_row['degradation']:>10.3f}  "
            f"{coord_row['gossip_updates']:>7}  "
            f"{coord_row['snoop_published']:>6}  "
            f"{coord_row['misroute_fraction']:>9.4f}"
        )
    if parallel_workers is not None:
        print()
        print(f"parallel engine (workers={parallel_workers}):")
        for label, bucket in curves.items():
            for row in bucket:
                par = row["parallel"]
                print(
                    f"  {label} s={row['sources']}: "
                    f"{par['tuples_per_sec']:,.0f} t/s "
                    f"({par['speedup']:.2f}x sequential, "
                    + ("bit-identical" if par["identical"] else "MISMATCH")
                    + ")"
                )

    # -- gate: the coordinated curve must stay flat at full scale ------
    top_coordinated = max(rows_coordinated, key=lambda row: row["sources"])
    gate_applies = scale >= 1.0 and top_coordinated["sources"] > 1
    gate_ok = (
        top_coordinated["degradation"] < COORDINATED_DEGRADATION_CEILING
    )
    print()
    print(
        f"coordinated L({top_coordinated['sources']})/L(1) = "
        f"{top_coordinated['degradation']:.3f} "
        f"(ceiling {COORDINATED_DEGRADATION_CEILING}, "
        + (
            "gate enforced"
            if gate_applies
            else "informational below full scale"
        )
        + ")"
    )

    if output is not None:
        directory = pathlib.Path(output)
        directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "m": m,
            "k": k,
            "window_size": window,
            "seed": seed,
            "chunk_size": chunk_size,
            "single_scheduler_identical": identical,
            "curve": rows,
            "curve_coordinated": rows_coordinated,
            "coordinated_degradation": top_coordinated["degradation"],
            "coordinated_degradation_ceiling": (
                COORDINATED_DEGRADATION_CEILING
            ),
            "coordination_gate_enforced": gate_applies,
        }
        path = directory / "multisource.json"
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {path}")

    if not identical:
        print(
            "ERROR: s=1 diverged from the single-scheduler path",
            file=sys.stderr,
        )
        return 1
    if starved:
        print(
            f"ERROR: shards never synchronized for s in {starved} "
            "(window too small for this stream)",
            file=sys.stderr,
        )
        return 1
    if parallel_mismatches:
        print(
            "ERROR: parallel engine diverged from the sequential run "
            f"for s in {parallel_mismatches}",
            file=sys.stderr,
        )
        return 1
    if gate_applies and not gate_ok:
        print(
            f"ERROR: coordinated L({top_coordinated['sources']})/L(1) = "
            f"{top_coordinated['degradation']:.3f} >= "
            f"{COORDINATED_DEGRADATION_CEILING} (coordination failed to "
            "flatten the degradation curve)",
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.multisource",
        description="Measure POSG's degradation under multi-source sharding.",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="stream-length scale factor (1.0 = paper sizes)",
    )
    parser.add_argument(
        "--output", type=str, default=None,
        help="directory for multisource.json (the degradation curve)",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=2048,
        help="simulator chunk size (0 = per-tuple reference engine)",
    )
    parser.add_argument(
        "--sources", type=int, nargs="+", default=list(SOURCE_COUNTS),
        help="shard counts to sweep (default: 1 2 4 8)",
    )
    parser.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="also run each sweep point through the multi-process "
        "parallel engine with N workers (gated bit-identical)",
    )
    parser.add_argument("--seed", type=int, default=0, help="stream seed")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return run(
        scale=args.scale,
        output=args.output,
        chunk_size=args.chunk_size,
        seed=args.seed,
        source_counts=tuple(args.sources),
        parallel_workers=args.parallel,
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
