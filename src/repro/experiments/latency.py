"""The ``latency`` CLI subcommand: where each tuple's time goes.

Usage::

    python -m repro.experiments latency
    python -m repro.experiments latency --scale 0.25 --output latency-out/

The paper's headline claim is that POSG cuts per-tuple completion time
versus plain shuffle grouping, but the aggregate metrics (L, makespan)
cannot say *where* the saved time comes from.  This experiment runs the
lineage tracer over a strategy x shard-count sweep and prints each
point's exact latency decomposition::

    completion = scheduling_delay + queue_wait + service_time

The expectation (and what the table makes legible) is that the POSG
vs round-robin delta lives almost entirely in **queue wait** — both
strategies pay the same service times for the same tuples, POSG just
stops slow tuples from queueing behind each other — which is the
paper-faithful explanation of Figure 4.

Every POSG sweep point runs through *all three* engines — per-tuple
reference (``chunk_size=0``), chunked, and multi-process parallel —
with the same :class:`~repro.telemetry.lineage.LineageConfig`, and the
run self-gates on the sampled timelines being bit-identical across
them (the lineage determinism contract); round-robin points gate the
two sequential engines.  Any mismatch, a zero-sample tracer, or a
sampled span whose components do not sum exactly to its completion
time exits non-zero.

With ``--output DIR`` it writes ``latency_report.json`` (the decomposed
sweep), ``latency_report.html`` (the largest POSG point's full run
report with the latency-lineage section) and ``metrics.prom`` (the
``posg_lineage_*``/``posg_slo_*`` series), all uploaded by the CI
``latency-smoke`` job.

The module is imported lazily by ``repro.experiments.cli`` and pulls
the core/simulator stack in only inside :func:`run`.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
from collections.abc import Sequence

#: shard counts the POSG leg of the sweep decomposes
SOURCE_COUNTS = (1, 2, 4)


def run(
    scale: float | None = None,
    output: str | None = None,
    chunk_size: int = 2048,
    seed: int = 0,
    source_counts: Sequence[int] = SOURCE_COUNTS,
    workers: int = 2,
    sample_every: int = 31,
) -> int:
    """Execute the latency-decomposition sweep; returns an exit code."""
    import numpy as np

    from repro.core.config import POSGConfig
    from repro.core.grouping import RoundRobinGrouping
    from repro.core.multisource import MultiSourcePOSGGrouping
    from repro.simulator.parallel import simulate_stream_parallel
    from repro.simulator.run import simulate_stream
    from repro.telemetry.dashboard import write_html_report
    from repro.telemetry.lineage import LineageConfig, SLOConfig, decompose
    from repro.telemetry.recorder import TelemetryRecorder
    from repro.telemetry.report import RunReport
    from repro.workloads.synthetic import default_stream

    if scale is None:
        scale = float(os.environ.get("REPRO_SCALE", "1.0"))
    # same sizing as the multisource/attribution sweeps for comparability
    m = max(8_192, int(32_768 * scale))
    k = 5
    window = min(256, max(64, m // 128))
    config = POSGConfig(window_size=window, rows=2, cols=16)
    stream = default_stream(seed=seed, m=m, n=128)

    def lineage_config():
        # SLO targets are illustrative fixed thresholds; the point of the
        # experiment is the decomposition, the SLOs exercise the burn-rate
        # path end to end (fresh tracer per run: tracers bind once)
        return LineageConfig(
            sample_every=sample_every,
            slos=(
                SLOConfig("p50-under-2s", latency_ms=2_000.0, percentile=50.0),
                SLOConfig("p99-under-8s", latency_ms=8_000.0, percentile=99.0),
            ),
        )

    def simulate(strategy: str, sources: int, engine: str, telemetry=None):
        if strategy == "round_robin":
            policy = RoundRobinGrouping()
        else:
            # the sharded wrapper covers s=1 too, so every engine (the
            # parallel one only speaks the sharded worker protocol) runs
            # the exact same policy object shape
            policy = MultiSourcePOSGGrouping(sources, config)
        rng = np.random.default_rng(seed + 1)
        if engine == "parallel":
            return simulate_stream_parallel(
                stream, policy, workers=workers, k=k, rng=rng,
                chunk_size=max(1, chunk_size), lineage=lineage_config(),
            )
        return simulate_stream(
            stream, policy, k=k, rng=rng,
            chunk_size=0 if engine == "reference" else chunk_size,
            lineage=lineage_config(), telemetry=telemetry,
        )

    print(
        f"== latency: per-tuple decomposition "
        f"(m={m}, k={k}, window={window}, sample_every={sample_every}) =="
    )

    points = [("round_robin", 1)] + [("posg", s) for s in source_counts]
    rows = []
    mismatches = []
    empty = []
    broken_partitions = []
    for strategy, sources in points:
        reference = simulate(strategy, sources, "reference")
        chunked = simulate(strategy, sources, "chunked")
        timelines = reference.lineage.timelines()
        identical = timelines == chunked.lineage.timelines()
        # the parallel engine schedules through the POSG worker protocol
        if strategy == "posg":
            parallel = simulate(strategy, sources, "parallel")
            identical = (
                identical and timelines == parallel.lineage.timelines()
            )
        if not identical:
            mismatches.append((strategy, sources))
        report = reference.lineage.report()
        if report["samples_total"] == 0:
            empty.append((strategy, sources))
        for record in reference.lineage.records():
            span = decompose(record)
            parts = (
                span["scheduling_delay"]
                + span["queue_wait"]
                + span["service_time"]
            )
            if parts != span["completion_ms"]:
                broken_partitions.append((strategy, sources, record[0]))
        rows.append(
            {
                "strategy": strategy,
                "sources": sources,
                "avg_completion_ms": float(
                    reference.stats.average_completion_time
                ),
                "timelines_identical": identical,
                "lineage": report,
            }
        )

    print()
    print(
        f"{'strategy':<12} {'s':>3}  {'L ms':>10}  {'sched ms':>9}  "
        f"{'queue ms':>10}  {'svc ms':>8}  {'queue%':>7}  {'p99 ms':>10}"
    )
    for row in rows:
        components = row["lineage"]["components"]
        p99 = components["completion"]["p99"]
        print(
            f"{row['strategy']:<12} {row['sources']:>3}  "
            f"{row['avg_completion_ms']:>10.3f}  "
            f"{components['scheduling_delay']['mean_ms']:>9.3f}  "
            f"{components['queue_wait']['mean_ms']:>10.3f}  "
            f"{components['service_time']['mean_ms']:>8.3f}  "
            f"{100 * components['queue_wait']['share']:>6.1f}%  "
            f"{p99 if p99 is not None else 0.0:>10.3f}"
        )

    # the headline delta: how much of POSG's win over round-robin is
    # queueing vs service time (the paper-faithful explanation)
    baseline = rows[0]["lineage"]["components"]
    best = rows[1]["lineage"]["components"]
    queue_delta = (
        baseline["queue_wait"]["mean_ms"] - best["queue_wait"]["mean_ms"]
    )
    service_delta = (
        baseline["service_time"]["mean_ms"] - best["service_time"]["mean_ms"]
    )
    total_delta = (
        baseline["completion"]["mean_ms"] - best["completion"]["mean_ms"]
    )
    print()
    if total_delta > 0:
        print(
            f"posg(s={rows[1]['sources']}) saves {total_delta:.3f} ms per "
            f"sampled tuple vs round-robin: {queue_delta:.3f} ms from queue "
            f"wait, {service_delta:.3f} ms from service time "
            f"({100 * queue_delta / total_delta:.1f}% queueing)"
        )
    print()
    for row in rows:
        status = "bit-identical" if row["timelines_identical"] else "MISMATCH"
        engines = (
            "reference/chunked/parallel"
            if row["strategy"] == "posg"
            else "reference/chunked"
        )
        slos = " ".join(
            f"{slo['name']}={'MET' if slo['met'] else 'MISSED'}"
            for slo in row["lineage"]["slos"]
        )
        print(
            f"{row['strategy']}(s={row['sources']}): timelines {status} "
            f"across {engines} ({row['lineage']['samples_total']} spans, "
            f"{row['lineage']['dropped_samples']} dropped)  {slos}"
        )

    if output is not None:
        directory = pathlib.Path(output)
        directory.mkdir(parents=True, exist_ok=True)
        # one more instrumented reference run of the largest POSG point so
        # metrics.prom carries its posg_lineage_*/posg_slo_* series
        with TelemetryRecorder() as recorder:
            last_posg = simulate(
                "posg", max(source_counts), "reference", telemetry=recorder
            )
            prom_text = recorder.registry.to_prometheus()
            report = RunReport.from_simulation(
                last_posg, k=k, telemetry=recorder
            )
        payload = {
            "m": m,
            "k": k,
            "window_size": window,
            "seed": seed,
            "chunk_size": chunk_size,
            "workers": workers,
            "sample_every": sample_every,
            "sweep": rows,
        }
        path = directory / "latency_report.json"
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {path}")
        html_path = write_html_report(
            directory / "latency_report.html", report.to_dict()
        )
        print(f"wrote {html_path}")
        prom_path = directory / "metrics.prom"
        prom_path.write_text(prom_text)
        print(f"wrote {prom_path}")

    if mismatches:
        print(
            "ERROR: lineage timelines diverged across engines "
            f"for {mismatches}",
            file=sys.stderr,
        )
        return 1
    if empty:
        print(
            f"ERROR: the tracer sampled nothing for {empty}",
            file=sys.stderr,
        )
        return 1
    if broken_partitions:
        print(
            "ERROR: latency partition not exact for sampled tuples "
            f"{broken_partitions[:5]}",
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.latency",
        description="Decompose sampled per-tuple latency into scheduling "
        "delay, queue wait and service time across strategies.",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="stream-length scale factor (1.0 = paper sizes)",
    )
    parser.add_argument(
        "--output", type=str, default=None,
        help="directory for latency_report.{json,html} and metrics.prom",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=2048,
        help="chunk size for the chunked/parallel engines",
    )
    parser.add_argument(
        "--sources", type=int, nargs="+", default=list(SOURCE_COUNTS),
        help="POSG shard counts to sweep (default: 1 2 4)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="worker processes for the parallel-engine leg",
    )
    parser.add_argument(
        "--sample-every", type=int, default=31,
        help="lineage sampling stride",
    )
    parser.add_argument("--seed", type=int, default=0, help="stream seed")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return run(
        scale=args.scale,
        output=args.output,
        chunk_size=args.chunk_size,
        seed=args.seed,
        source_counts=tuple(args.sources),
        workers=args.workers,
        sample_every=args.sample_every,
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
