"""ASCII rendering of figure results for the benchmark harness."""

from __future__ import annotations

from repro.experiments.figures import FigureResult


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(rows: list[dict], columns: list[str]) -> str:
    """Render rows as a fixed-width ASCII table."""
    if not rows:
        return "(no rows)"
    header = [str(column) for column in columns]
    body = [[_format_cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body))
        for i in range(len(columns))
    ]
    def render_line(cells):
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))
    separator = "  ".join("-" * width for width in widths)
    return "\n".join([render_line(header), separator] + [render_line(line) for line in body])


def render_figure(result: FigureResult) -> str:
    """Full report block for one figure."""
    parts = [
        f"== {result.name}: {result.description} ==",
        format_table(result.rows, result.columns),
    ]
    for note in result.notes:
        parts.append(f"note: {note}")
    return "\n".join(parts)
