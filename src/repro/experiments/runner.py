"""Shared machinery for the figure experiments.

The paper's protocol (Section V-A): per configuration, generate 100
streams differing in the (randomized) item-to-execution-time association,
run every algorithm on each stream, and report min/mean/max.  This module
provides the seeded stream-replication loop and the three-way
POSG / Round-Robin / Full-Knowledge comparison on the fast simulator.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import POSGConfig
from repro.core.grouping import (
    FullKnowledgeGrouping,
    POSGGrouping,
    RoundRobinGrouping,
)
from repro.simulator.metrics import aggregate_runs
from repro.simulator.run import simulate_stream
from repro.workloads.nonstationary import LoadShiftScenario
from repro.workloads.synthetic import Stream


def env_reps(default: int = 5) -> int:
    """Repetitions per configuration; ``REPRO_REPS=100`` = paper scale."""
    value = int(os.environ.get("REPRO_REPS", default))
    if value < 1:
        raise ValueError(f"REPRO_REPS must be >= 1, got {value}")
    return value


def env_scale(default: float = 1.0) -> float:
    """Stream-length scale factor (``REPRO_SCALE=1.0`` = paper sizes)."""
    value = float(os.environ.get("REPRO_SCALE", default))
    if value <= 0:
        raise ValueError(f"REPRO_SCALE must be > 0, got {value}")
    return value


#: POSG configuration for the m = 32,768 parameter sweeps (Figures 4-9).
#:
#: Three deliberate deviations from Section V-A's N = 1024 per-instance
#: replace-mode setup, all documented and quantified in EXPERIMENTS.md
#: and benchmarks/bench_ablations.py:
#:
#: - ``window_size=128`` — the ROUND_ROBIN bootstrap then covers ~4 % of
#:   the 32,768-tuple stream, comparable to the proportion the paper's
#:   own Figure 10 shows (RUN entry at 10,690 of 150,000 ≈ 7 %); with
#:   N = 1024 the bootstrap covers >60 % of a 32k stream and every sweep
#:   figure would mostly measure Round-Robin against itself.
#: - ``merge_matrices=True`` — the linear-sketch reading of Figure 3.F
#:   ("update local F and W"): estimates sharpen as the stream unfolds.
#: - ``pooled_estimates=True`` — with *uniform* instances (the setting of
#:   every sweep figure) all per-instance matrices estimate the same
#:   function; averaging them removes the cross-instance sampling noise
#:   that otherwise makes the greedy scheduler systematically favour
#:   under-estimating instances.  Figures 10-12 keep the paper's
#:   per-instance estimates (their instances are heterogeneous).
SWEEP_POSG_CONFIG = POSGConfig(
    window_size=128, rows=4, cols=54, mu=0.05,
    merge_matrices=True, pooled_estimates=True,
)

#: Faithful Section V-A configuration (used by the Figure 10/11 runs,
#: whose m = 150,000 stream matches the paper's bootstrap proportions).
PAPER_POSG_CONFIG = POSGConfig.paper_defaults()


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by every figure run."""

    k: int = 5
    reps: int = field(default_factory=env_reps)
    base_seed: int = 1000
    posg_config: POSGConfig = SWEEP_POSG_CONFIG
    control_latency: float = 1.0
    data_latency: float = 0.0


@dataclass
class PolicyOutcome:
    """Per-policy per-stream results of one comparison."""

    #: average completion time L for each repetition
    completion_times: list[float] = field(default_factory=list)
    #: speedup over Round-Robin for each repetition
    speedups: list[float] = field(default_factory=list)

    def summary(self) -> dict[str, float]:
        """min/mean/max of L over the repetitions."""
        return aggregate_runs(self.completion_times)

    def speedup_summary(self) -> dict[str, float]:
        """min/mean/max of the speedup over the repetitions."""
        return aggregate_runs(self.speedups)


def default_policies(
    settings: ExperimentSettings,
) -> dict[str, Callable[[], object]]:
    """The paper's three algorithms as policy factories.

    ``full_knowledge`` is a factory taking the simulation oracle; the
    others ignore it.
    """
    return {
        "round_robin": lambda oracle: RoundRobinGrouping(),
        "posg": lambda oracle: POSGGrouping(settings.posg_config),
        "full_knowledge": lambda oracle: FullKnowledgeGrouping(oracle),
    }


def compare_policies(
    stream_factory: Callable[[np.random.Generator], Stream],
    settings: ExperimentSettings | None = None,
    scenario: LoadShiftScenario | None = None,
    policies: dict[str, Callable] | None = None,
) -> dict[str, PolicyOutcome]:
    """Run every policy on ``settings.reps`` freshly generated streams.

    All policies see the *same* stream within a repetition (paired
    comparison, as in the paper); streams differ across repetitions via
    the seeded generator chain.
    """
    settings = settings if settings is not None else ExperimentSettings()
    policies = policies if policies is not None else default_policies(settings)
    outcomes = {name: PolicyOutcome() for name in policies}
    for rep in range(settings.reps):
        stream_rng = np.random.default_rng(settings.base_seed + rep)
        stream = stream_factory(stream_rng)
        baseline_total: float | None = None
        for name, factory in policies.items():
            result = simulate_stream(
                stream,
                factory,
                k=settings.k,
                scenario=scenario,
                data_latency=settings.data_latency,
                control_latency=settings.control_latency,
                rng=np.random.default_rng(settings.base_seed + 7919 * (rep + 1)),
            )
            outcomes[name].completion_times.append(
                result.stats.average_completion_time
            )
            total = result.stats.total_completion_time
            if name == "round_robin":
                baseline_total = total
            if baseline_total is not None:
                outcomes[name].speedups.append(baseline_total / total)
            else:  # round_robin must come first for paired speedups
                outcomes[name].speedups.append(float("nan"))
    return outcomes
