"""One function per figure of the paper's evaluation (Section V).

Every function returns a :class:`FigureResult` whose rows carry the same
series the paper plots; the ``benchmarks/`` targets print them.  Absolute
milliseconds differ from the paper (different hardware model), but the
*shapes* — orderings, trends and crossovers — are asserted by the
benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import POSGConfig
from repro.core.grouping import POSGGrouping, RoundRobinGrouping
from repro.core.scheduler import SchedulerState
from repro.experiments.runner import (
    PAPER_POSG_CONFIG,
    ExperimentSettings,
    compare_policies,
    env_scale,
)
from repro.simulator.run import simulate_stream
from repro.storm.cluster import ClusterConfig, LocalCluster
from repro.storm.components import STREAM_SPOUT_FIELDS, StreamSpout, WorkBolt
from repro.storm.posg_grouping import POSGShuffleGrouping
from repro.storm.topology import TopologyBuilder
from repro.workloads.distributions import ZipfItems, paper_distributions
from repro.workloads.nonstationary import LoadShiftScenario
from repro.workloads.synthetic import Stream, StreamSpec, generate_stream
from repro.workloads.twitter import TwitterDatasetSpec, generate_twitter_stream


@dataclass
class FigureResult:
    """Structured reproduction of one paper figure."""

    name: str
    description: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-serializable form (for archiving measured results)."""
        return {
            "name": self.name,
            "description": self.description,
            "columns": list(self.columns),
            "rows": [dict(row) for row in self.rows],
            "notes": list(self.notes),
        }

    def save(self, path) -> None:
        """Write the result as JSON."""
        import json

        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)

    @classmethod
    def load(cls, path) -> "FigureResult":
        """Read a result saved with :meth:`save`."""
        import json

        with open(path) as handle:
            payload = json.load(handle)
        return cls(
            name=payload["name"],
            description=payload["description"],
            columns=payload["columns"],
            rows=payload["rows"],
            notes=payload["notes"],
        )


def _spec(scale: float | None = None, **overrides) -> StreamSpec:
    """Section V-A defaults, optionally length-scaled."""
    scale = scale if scale is not None else env_scale()
    m = overrides.pop("m", 32_768)
    return StreamSpec(m=max(1024, int(m * scale)), **overrides)


# ----------------------------------------------------------------------
# Figure 4 — L vs frequency probability distribution
# ----------------------------------------------------------------------
def figure4_distributions(
    settings: ExperimentSettings | None = None,
) -> FigureResult:
    """POSG / Round-Robin / Full Knowledge across uniform and Zipf-alpha."""
    settings = settings if settings is not None else ExperimentSettings()
    result = FigureResult(
        name="figure4",
        description="Average per-tuple completion time L vs frequency "
        "distribution (paper Fig. 4)",
        columns=["distribution", "policy", "min", "mean", "max"],
    )
    for distribution in paper_distributions():
        spec = _spec(n=distribution.n, k=settings.k)
        outcomes = compare_policies(
            lambda rng, d=distribution, s=spec: generate_stream(d, s, rng),
            settings,
        )
        for policy, outcome in outcomes.items():
            summary = outcome.summary()
            result.rows.append({"distribution": distribution.label,
                                "policy": policy, **summary})
    return result


# ----------------------------------------------------------------------
# Figure 5 — speedup vs over-provisioning percentage
# ----------------------------------------------------------------------
def figure5_overprovisioning(
    settings: ExperimentSettings | None = None,
    percentages: tuple[float, ...] = (0.95, 0.98, 1.0, 1.02, 1.05, 1.09, 1.15),
) -> FigureResult:
    """Speedup S_L of POSG over Round-Robin vs provisioning (paper Fig. 5)."""
    settings = settings if settings is not None else ExperimentSettings()
    result = FigureResult(
        name="figure5",
        description="Completion time speedup vs percentage of "
        "over-provisioning (paper Fig. 5)",
        columns=["over_provisioning", "min", "mean", "max"],
    )
    for percentage in percentages:
        spec = _spec(k=settings.k, over_provisioning=percentage)
        outcomes = compare_policies(
            lambda rng, s=spec: generate_stream(ZipfItems(s.n, 1.0), s, rng),
            settings,
        )
        summary = outcomes["posg"].speedup_summary()
        result.rows.append({"over_provisioning": percentage, **summary})
    return result


# ----------------------------------------------------------------------
# Figure 6 — L vs maximum execution time value
# ----------------------------------------------------------------------
def figure6_wmax(
    settings: ExperimentSettings | None = None,
    w_max_values: tuple[float, ...] = (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
) -> FigureResult:
    """L for POSG and Round-Robin as w_max grows (paper Fig. 6)."""
    settings = settings if settings is not None else ExperimentSettings()
    result = FigureResult(
        name="figure6",
        description="Average completion time vs maximum execution time "
        "value w_max (paper Fig. 6)",
        columns=["w_max", "policy", "min", "mean", "max", "speedup_mean"],
    )
    for w_max in w_max_values:
        w_n = min(64, int(w_max))  # cannot have more values than the range
        spec = _spec(k=settings.k, w_max=float(w_max), w_n=w_n)
        outcomes = compare_policies(
            lambda rng, s=spec: generate_stream(ZipfItems(s.n, 1.0), s, rng),
            settings,
        )
        speedup = outcomes["posg"].speedup_summary()["mean"]
        for policy in ("round_robin", "posg"):
            summary = outcomes[policy].summary()
            result.rows.append({
                "w_max": w_max, "policy": policy, **summary,
                "speedup_mean": speedup if policy == "posg" else 1.0,
            })
    return result


# ----------------------------------------------------------------------
# Figure 7 — L vs number of execution time values
# ----------------------------------------------------------------------
def figure7_wn(
    settings: ExperimentSettings | None = None,
    w_n_values: tuple[int, ...] = (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
) -> FigureResult:
    """L for POSG and Round-Robin as w_n grows (paper Fig. 7)."""
    settings = settings if settings is not None else ExperimentSettings()
    result = FigureResult(
        name="figure7",
        description="Average completion time vs number of execution time "
        "values w_n (paper Fig. 7)",
        columns=["w_n", "policy", "min", "mean", "max", "speedup_mean"],
    )
    for w_n in w_n_values:
        spec = _spec(k=settings.k, w_n=w_n)
        outcomes = compare_policies(
            lambda rng, s=spec: generate_stream(ZipfItems(s.n, 1.0), s, rng),
            settings,
        )
        speedup = outcomes["posg"].speedup_summary()["mean"]
        for policy in ("round_robin", "posg"):
            summary = outcomes[policy].summary()
            result.rows.append({
                "w_n": w_n, "policy": policy, **summary,
                "speedup_mean": speedup if policy == "posg" else 1.0,
            })
    return result


# ----------------------------------------------------------------------
# Figure 8 — speedup vs number of operator instances
# ----------------------------------------------------------------------
def figure8_instances(
    settings: ExperimentSettings | None = None,
    instance_counts: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
) -> FigureResult:
    """Speedup vs k (paper Fig. 8)."""
    base = settings if settings is not None else ExperimentSettings()
    result = FigureResult(
        name="figure8",
        description="Completion time speedup vs number of operator "
        "instances k (paper Fig. 8)",
        columns=["k", "min", "mean", "max"],
    )
    for k in instance_counts:
        settings_k = ExperimentSettings(
            k=k, reps=base.reps, base_seed=base.base_seed,
            posg_config=base.posg_config,
            control_latency=base.control_latency,
            data_latency=base.data_latency,
        )
        spec = _spec(k=k)
        outcomes = compare_policies(
            lambda rng, s=spec: generate_stream(ZipfItems(s.n, 1.0), s, rng),
            settings_k,
        )
        summary = outcomes["posg"].speedup_summary()
        result.rows.append({"k": k, **summary})
    return result


# ----------------------------------------------------------------------
# Figure 9 — speedup vs sketch precision epsilon
# ----------------------------------------------------------------------
def figure9_epsilon(
    settings: ExperimentSettings | None = None,
    epsilons: tuple[float, ...] = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0),
    m: int | None = None,
) -> FigureResult:
    """Speedup vs epsilon; smaller epsilon = wider matrices (paper Fig. 9).

    Runs on a 4x longer stream than the other sweeps, with the faithful
    N = 1024 window: the epsilon sweep only measures sketch quality once
    the bootstrap and sync cadence are amortized, and wide matrices need
    enough samples per cell to differentiate (see EXPERIMENTS.md).
    """
    base = settings if settings is not None else ExperimentSettings()
    m = m if m is not None else max(4_096, int(131_072 * env_scale()))
    result = FigureResult(
        name="figure9",
        description="Completion time speedup vs precision parameter "
        "epsilon (paper Fig. 9)",
        columns=["epsilon", "cols", "min", "mean", "max"],
    )
    for epsilon in epsilons:
        config = POSGConfig(
            epsilon=epsilon,
            delta=base.posg_config.delta,
            window_size=1024,
            mu=base.posg_config.mu,
            rows=4,
            merge_matrices=base.posg_config.merge_matrices,
            pooled_estimates=base.posg_config.pooled_estimates,
        )
        settings_eps = ExperimentSettings(
            k=base.k, reps=base.reps, base_seed=base.base_seed,
            posg_config=config,
            control_latency=base.control_latency,
            data_latency=base.data_latency,
        )
        spec = _spec(scale=1.0, m=m, k=base.k)
        outcomes = compare_policies(
            lambda rng, s=spec: generate_stream(ZipfItems(s.n, 1.0), s, rng),
            settings_eps,
        )
        summary = outcomes["posg"].speedup_summary()
        result.rows.append(
            {"epsilon": epsilon, "cols": config.sketch_shape[1], **summary}
        )
    return result


# ----------------------------------------------------------------------
# Figure 10 — simulator time series with a load shift
# ----------------------------------------------------------------------
def figure10_timeseries(
    m: int | None = None,
    k: int = 5,
    seed: int = 0,
    posg_config: POSGConfig | None = None,
    bin_size: int = 2000,
) -> FigureResult:
    """Completion-time series around an abrupt load change (paper Fig. 10).

    Runs the faithful Section V-A configuration (N = 1024, replace) on
    the paper's m = 150,000 two-phase scenario.
    """
    m = m if m is not None else max(10_000, int(150_000 * env_scale()))
    posg_config = posg_config if posg_config is not None else PAPER_POSG_CONFIG
    scenario = LoadShiftScenario.paper_figure10(m)
    spec = StreamSpec(m=m, k=k)
    stream = generate_stream(
        ZipfItems(spec.n, 1.0), spec, np.random.default_rng(seed)
    )
    posg_policy = POSGGrouping(posg_config)
    posg = simulate_stream(
        stream, posg_policy, k=k, scenario=scenario,
        rng=np.random.default_rng(seed + 1),
    )
    rr = simulate_stream(stream, RoundRobinGrouping(), k=k, scenario=scenario)

    result = FigureResult(
        name="figure10",
        description="Simulator per-tuple completion time series with a "
        "load shift at m/2 (paper Fig. 10)",
        columns=["index", "posg_min", "posg_mean", "posg_max",
                 "rr_min", "rr_mean", "rr_max"],
    )
    posg_series = posg.stats.time_series(bin_size)
    rr_series = rr.stats.time_series(bin_size)
    for i in range(len(posg_series)):
        result.rows.append({
            "index": int(posg_series.index[i]),
            "posg_min": posg_series.minimum[i],
            "posg_mean": posg_series.mean[i],
            "posg_max": posg_series.maximum[i],
            "rr_min": rr_series.minimum[i],
            "rr_mean": rr_series.mean[i],
            "rr_max": rr_series.maximum[i],
        })
    run_entry = posg.run_entry_index()
    result.notes.append(f"POSG entered RUN at tuple {run_entry}")
    recoveries = [
        index for index, state in posg.state_transitions
        if state is SchedulerState.RUN and index > m // 2
    ]
    if recoveries:
        result.notes.append(
            f"first post-shift resynchronization completed at tuple {recoveries[0]}"
        )
    result.notes.append(
        f"sync rounds completed: {posg_policy.scheduler.sync_rounds_completed}"
    )
    return result


# ----------------------------------------------------------------------
# Figures 11/12 — the Storm prototype
# ----------------------------------------------------------------------
def _run_prototype(
    stream: Stream,
    k: int,
    grouping: str,
    posg_config: POSGConfig,
    scenario: LoadShiftScenario | None = None,
    cluster_config: ClusterConfig | None = None,
    seed: int = 1,
):
    """One topology run on the mini-Storm engine; returns the cluster."""
    builder = TopologyBuilder()
    builder.set_spout(
        "source", lambda: StreamSpout(stream), output_fields=STREAM_SPOUT_FIELDS
    )
    bolt = builder.set_bolt(
        "worker",
        lambda: WorkBolt(stream.time_table, scenario),
        parallelism=k,
    )
    if grouping == "posg":
        bolt.custom_grouping(
            "source",
            POSGShuffleGrouping("value", posg_config, np.random.default_rng(seed)),
        )
    elif grouping == "assg":
        bolt.shuffle_grouping("source")
    else:
        raise ValueError(f"unknown grouping {grouping!r}")
    cluster = LocalCluster(cluster_config)
    cluster.submit(builder.build())
    cluster.run()
    return cluster


def figure11_prototype_timeseries(
    m: int | None = None,
    k: int = 5,
    seed: int = 0,
    posg_config: POSGConfig | None = None,
    bin_size: int = 2000,
    message_timeout: float = 30_000.0,
) -> FigureResult:
    """Figure 10's scenario on the Storm-like engine: POSG vs ASSG.

    Reports the same binned series plus the tuple-timeout counts the
    paper highlights (1,600 ASSG timeouts in their run).
    """
    m = m if m is not None else max(10_000, int(150_000 * env_scale()))
    posg_config = posg_config if posg_config is not None else PAPER_POSG_CONFIG
    scenario = LoadShiftScenario.paper_figure10(m)
    spec = StreamSpec(m=m, k=k)
    stream = generate_stream(
        ZipfItems(spec.n, 1.0), spec, np.random.default_rng(seed)
    )
    cluster_config = ClusterConfig(message_timeout=message_timeout)
    posg = _run_prototype(stream, k, "posg", posg_config, scenario,
                          cluster_config, seed + 1)
    assg = _run_prototype(stream, k, "assg", posg_config, scenario,
                          cluster_config, seed + 1)

    result = FigureResult(
        name="figure11",
        description="Prototype per-tuple completion time series with a "
        "load shift at m/2 (paper Fig. 11)",
        columns=["bin_start", "posg_mean", "assg_mean"],
    )
    posg_lat = posg.metrics.completion_latencies()
    assg_lat = assg.metrics.completion_latencies()
    posg_ids = np.array(posg.metrics.completed_ids())
    assg_ids = np.array(assg.metrics.completed_ids())
    for start in range(0, m, bin_size):
        posg_bin = posg_lat[(posg_ids >= start) & (posg_ids < start + bin_size)]
        assg_bin = assg_lat[(assg_ids >= start) & (assg_ids < start + bin_size)]
        result.rows.append({
            "bin_start": start,
            "posg_mean": float(posg_bin.mean()) if posg_bin.size else float("nan"),
            "assg_mean": float(assg_bin.mean()) if assg_bin.size else float("nan"),
        })
    result.notes.append(f"POSG timeouts: {posg.metrics.timed_out}")
    result.notes.append(f"ASSG timeouts: {assg.metrics.timed_out}")
    result.notes.append(f"POSG control messages: {posg.metrics.control_messages}")
    return result


def figure12_twitter(
    instance_counts: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
    m: int | None = None,
    seed: int = 0,
    posg_config: POSGConfig | None = None,
) -> FigureResult:
    """Prototype L vs k on the (synthetic) Twitter dataset (paper Fig. 12)."""
    m = m if m is not None else max(20_000, int(500_000 * env_scale() * 0.2))
    # Figure 12's instances are uniform (the heterogeneity in Figs. 10/11
    # is absent), so the sweep configuration applies: short windows for a
    # fast bootstrap on the scaled-down stream, pooled + merged estimates.
    posg_config = (
        posg_config
        if posg_config is not None
        else POSGConfig(window_size=128, rows=4, cols=54,
                        merge_matrices=True, pooled_estimates=True)
    )
    result = FigureResult(
        name="figure12",
        description="Prototype average completion time vs k on the "
        "Twitter workload (paper Fig. 12)",
        columns=["k", "posg_L", "assg_L", "posg_timeouts", "assg_timeouts",
                 "posg_control_messages"],
    )
    for k in instance_counts:
        twitter_spec = TwitterDatasetSpec(m=m, k=k)
        stream = generate_twitter_stream(twitter_spec, np.random.default_rng(seed))
        posg = _run_prototype(stream, k, "posg", posg_config, seed=seed + 1)
        assg = _run_prototype(stream, k, "assg", posg_config, seed=seed + 1)
        result.rows.append({
            "k": k,
            "posg_L": posg.metrics.average_completion_time(),
            "assg_L": assg.metrics.average_completion_time(),
            "posg_timeouts": posg.metrics.timed_out,
            "assg_timeouts": assg.metrics.timed_out,
            "posg_control_messages": posg.metrics.control_messages,
        })
    return result
