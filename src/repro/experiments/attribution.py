"""The ``attribution`` CLI subcommand: *why* sharding degrades L(s).

Usage::

    python -m repro.experiments attribution
    python -m repro.experiments attribution --scale 0.25 --output out/

The ``multisource`` experiment measures the degradation curve
``L(s)/L(1)`` but cannot explain it.  This experiment reruns the same
sweep under the cross-shard flight recorder and decomposes each sweep
point's excess completion time into the three mechanisms the recorder
can distinguish (see "Flight recorder" in DESIGN.md):

- **staleness regret** — decisions made on a ``C_hat`` snapshot older
  than one sync round (the shard was flying blind);
- **collision loss** — windows where >= 2 shards concurrently
  argmin-picked the same instance (the thundering-herd effect sharding
  introduces);
- **residual** — estimator error, ties, and everything else (this
  bucket is what a single-scheduler run would also pay).

Each sweep point runs through *all three* engines — per-tuple reference
(``chunk_size=0``), chunked, and multi-process parallel — with the same
:class:`~repro.telemetry.flightrecorder.FlightRecorderConfig`, and the
run self-gates on the recorded timelines being bit-identical across
them (the flight recorder's determinism contract).  A mismatch, a
shard that never folded, or diverging assignments exits non-zero.

Every sweep point then reruns once more with the cross-shard
coordination layer on (:class:`~repro.core.config.CoordinationConfig`
defaults) and decomposes that run too.  Coordination attacks exactly
the first bucket — gossip and snooping keep every shard's ``C_hat``
near the global truth between folds — so the run self-gates on the
staleness regret *shrinking* at every ``s > 1``.  The coordinated
timelines also carry the ``snoop`` events the recorder samples, which
the comparison table surfaces per sweep point.

With ``--output DIR`` it writes ``attribution.json`` (the decomposed
curve) and ``attribution.html`` (the largest sweep point's full run
report with the shard-lane timelines), both uploaded by the CI
``attribution-smoke`` job.

The module is imported lazily by ``repro.experiments.cli`` and pulls
the core/simulator stack in only inside :func:`run`.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
from collections.abc import Sequence

#: shard counts the attribution sweep decomposes
SOURCE_COUNTS = (1, 2, 4, 8)


def _regret_shares(attribution: dict) -> dict:
    """Fractional split of the replay regret into the three buckets."""
    regret = attribution["regret"]
    total = regret["total_ms"]
    if total <= 0.0:
        return {"stale": 0.0, "collision": 0.0, "residual": 0.0}
    return {
        "stale": regret["stale_ms"] / total,
        "collision": regret["collision_ms"] / total,
        "residual": regret["residual_ms"] / total,
    }


def run(
    scale: float | None = None,
    output: str | None = None,
    chunk_size: int = 2048,
    seed: int = 0,
    source_counts: Sequence[int] = SOURCE_COUNTS,
    workers: int = 2,
    sample_every: int = 64,
) -> int:
    """Execute the attribution sweep; returns a process exit code.

    Every sweep point runs three times — reference (``chunk_size=0``),
    chunked and parallel — under the same flight-recorder config; the
    recorded timelines must be bit-identical across all three (and the
    assignments too), otherwise the run exits non-zero.
    """
    import numpy as np

    from repro.core.config import CoordinationConfig, POSGConfig
    from repro.core.multisource import MultiSourcePOSGGrouping
    from repro.simulator.parallel import simulate_stream_parallel
    from repro.simulator.run import simulate_stream
    from repro.telemetry.dashboard import render_shard_lanes, write_html_report
    from repro.telemetry.flightrecorder import (
        FlightRecorderConfig,
        derive_attribution,
    )
    from repro.telemetry.quality import execution_time_matrix
    from repro.telemetry.report import RunReport
    from repro.workloads.nonstationary import LoadShiftScenario
    from repro.workloads.synthetic import default_stream

    if scale is None:
        scale = float(os.environ.get("REPRO_SCALE", "1.0"))
    # same sizing as the multisource sweep so the curves are comparable
    m = max(8_192, int(32_768 * scale))
    k = 5
    window = min(256, max(64, m // 128))
    config = POSGConfig(window_size=window, rows=2, cols=16)
    # collision windows aligned with the scheduling window make the
    # "concurrent pick" metric mean "within one estimation window"
    flight_config = FlightRecorderConfig(
        sample_every=sample_every, window=window
    )
    stream = default_stream(seed=seed, m=m, n=128)
    times = execution_time_matrix(stream, LoadShiftScenario.constant(k), k)

    coordinated_config = POSGConfig(
        window_size=window, rows=2, cols=16,
        coordination=CoordinationConfig(),
    )

    def simulate(sources: int, engine: str, shard_config=config):
        policy = MultiSourcePOSGGrouping(sources, shard_config)
        rng = np.random.default_rng(seed + 1)
        if engine == "reference":
            return simulate_stream(
                stream, policy, k=k, rng=rng, chunk_size=0,
                flight=flight_config,
            )
        if engine == "chunked":
            return simulate_stream(
                stream, policy, k=k, rng=rng, chunk_size=chunk_size,
                flight=flight_config,
            )
        return simulate_stream_parallel(
            stream, policy, workers=workers, k=k, rng=rng,
            chunk_size=max(1, chunk_size), flight=flight_config,
        )

    print(
        f"== attribution: why L(s) degrades "
        f"(m={m}, k={k}, window={window}, sample_every={sample_every}) =="
    )

    rows = []
    mismatches = []
    starved = []
    last_result = None
    for sources in source_counts:
        reference = simulate(sources, "reference")
        chunked = simulate(sources, "chunked")
        parallel = simulate(sources, "parallel")
        identical = bool(
            reference.flight.timelines() == chunked.flight.timelines()
            and reference.flight.timelines() == parallel.flight.timelines()
            and np.array_equal(
                reference.stats.assignments, chunked.stats.assignments
            )
            and np.array_equal(
                reference.stats.assignments, parallel.stats.assignments
            )
        )
        if not identical:
            mismatches.append(sources)
        report = reference.flight.report()
        if any(s["folds"] < 1 for s in report["per_shard"]):
            starved.append(sources)
        attribution = derive_attribution(
            reference.flight, reference.stats.assignments, times
        )
        coordinated = simulate(sources, "reference", coordinated_config)
        attribution_coordinated = derive_attribution(
            coordinated.flight, coordinated.stats.assignments, times
        )
        coordinated_report = coordinated.flight.report()
        rows.append(
            {
                "sources": sources,
                "avg_completion_ms": float(
                    reference.stats.average_completion_time
                ),
                "coordinated_avg_completion_ms": float(
                    coordinated.stats.average_completion_time
                ),
                "timelines_identical": identical,
                "attribution": attribution,
                "attribution_coordinated": attribution_coordinated,
                "coordinated_snoops": int(
                    sum(
                        shard["snoops"]
                        for shard in coordinated_report["per_shard"]
                    )
                ),
                "flight": report,
            }
        )
        last_result = reference

    base = rows[0]["avg_completion_ms"]
    for row in rows:
        degradation = row["avg_completion_ms"] / base
        excess = row["avg_completion_ms"] - base
        shares = _regret_shares(row["attribution"])
        row["degradation"] = degradation
        # the excess over L(1) split in proportion to the replay regret
        # attribution (the regret replay classifies *mechanisms*; the
        # excess is what those mechanisms cost in the L metric)
        row["excess_ms"] = excess
        row["excess_split_ms"] = {
            name: excess * share for name, share in shares.items()
        }
        row["regret_shares"] = shares

    print()
    print(
        f"{'s':>3}  {'L(s) ms':>10}  {'L/L(1)':>7}  {'excess ms':>10}  "
        f"{'stale%':>7}  {'collide%':>8}  {'resid%':>7}  "
        f"{'blind%':>7}  {'coll.rate':>9}"
    )
    for row in rows:
        att = row["attribution"]
        shares = row["regret_shares"]
        print(
            f"{row['sources']:>3}  {row['avg_completion_ms']:>10.3f}  "
            f"{row['degradation']:>7.3f}  {row['excess_ms']:>10.3f}  "
            f"{100 * shares['stale']:>6.1f}%  "
            f"{100 * shares['collision']:>7.1f}%  "
            f"{100 * shares['residual']:>6.1f}%  "
            f"{100 * att['staleness']['blind_fraction']:>6.1f}%  "
            f"{att['collision']['rate']:>9.3f}"
        )
    # -- gate: coordination must shrink the staleness bucket -----------
    stale_regressions = []
    print()
    print(
        f"{'s':>3}  {'stale ms plain':>14}  {'stale ms coord':>14}  "
        f"{'coord L(s) ms':>13}  {'snoops':>6}"
    )
    for row in rows:
        plain_stale = row["attribution"]["regret"]["stale_ms"]
        coordinated_stale = (
            row["attribution_coordinated"]["regret"]["stale_ms"]
        )
        row["stale_ms_plain"] = plain_stale
        row["stale_ms_coordinated"] = coordinated_stale
        shrank = coordinated_stale < plain_stale
        if row["sources"] > 1 and not shrank:
            stale_regressions.append(row["sources"])
        print(
            f"{row['sources']:>3}  {plain_stale:>14.3f}  "
            f"{coordinated_stale:>14.3f}  "
            f"{row['coordinated_avg_completion_ms']:>13.3f}  "
            f"{row['coordinated_snoops']:>6}"
            + ("" if row["sources"] == 1 or shrank else "  REGRESSION")
        )

    print()
    for row in rows:
        status = "bit-identical" if row["timelines_identical"] else "MISMATCH"
        print(
            f"s={row['sources']}: timelines {status} across "
            f"reference/chunked/parallel "
            f"({row['flight']['events_total']} events, "
            f"{row['flight']['dropped_events']} dropped)"
        )

    print()
    print(render_shard_lanes(rows[-1]["flight"], width=72))

    if output is not None:
        directory = pathlib.Path(output)
        directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "m": m,
            "k": k,
            "window_size": window,
            "seed": seed,
            "chunk_size": chunk_size,
            "workers": workers,
            "sample_every": sample_every,
            "curve": rows,
        }
        path = directory / "attribution.json"
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {path}")
        report = RunReport.from_simulation(last_result, k=k)
        html_path = write_html_report(
            directory / "attribution.html", report.to_dict()
        )
        print(f"wrote {html_path}")

    if mismatches:
        print(
            "ERROR: flight timelines diverged across engines "
            f"for s in {mismatches}",
            file=sys.stderr,
        )
        return 1
    if starved:
        print(
            f"ERROR: some shard never folded for s in {starved} "
            "(window too small for this stream)",
            file=sys.stderr,
        )
        return 1
    if stale_regressions:
        print(
            "ERROR: coordination failed to shrink the staleness bucket "
            f"for s in {stale_regressions}",
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.attribution",
        description="Decompose the sharded-POSG degradation curve into "
        "staleness regret, collision loss and residual.",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="stream-length scale factor (1.0 = paper sizes)",
    )
    parser.add_argument(
        "--output", type=str, default=None,
        help="directory for attribution.json and attribution.html",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=2048,
        help="chunk size for the chunked/parallel engines",
    )
    parser.add_argument(
        "--sources", type=int, nargs="+", default=list(SOURCE_COUNTS),
        help="shard counts to sweep (default: 1 2 4 8)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="worker processes for the parallel-engine leg",
    )
    parser.add_argument(
        "--sample-every", type=int, default=64,
        help="flight-recorder route-sampling stride",
    )
    parser.add_argument("--seed", type=int, default=0, help="stream seed")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return run(
        scale=args.scale,
        output=args.output,
        chunk_size=args.chunk_size,
        seed=args.seed,
        source_counts=tuple(args.sources),
        workers=args.workers,
        sample_every=args.sample_every,
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
