"""Terminal plots for figure results (no plotting library required).

The paper's figures are line/series plots; this module renders their
reproduction as ASCII so ``python -m repro.experiments figureN --plot``
gives an immediate visual check without matplotlib.
"""

from __future__ import annotations

import math
from collections.abc import Sequence


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:.3g}"
    if abs(value) >= 1:
        return f"{value:.4g}"
    return f"{value:.2g}"


def ascii_plot(
    series: dict[str, Sequence[float]],
    x: Sequence[float] | None = None,
    width: int = 72,
    height: int = 16,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render one or more named series as an ASCII line plot.

    Each series gets a marker character; points falling on the same cell
    show the marker of the last series drawn.  NaN values are skipped.
    """
    if not series:
        raise ValueError("need at least one series")
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {lengths}")
    (length,) = lengths
    if length == 0:
        raise ValueError("series are empty")
    if width < 8 or height < 4:
        raise ValueError("plot area too small")

    xs = list(x) if x is not None else list(range(length))
    if len(xs) != length:
        raise ValueError("x must align with the series")

    finite = [
        value
        for values in series.values()
        for value in values
        if not math.isnan(value)
    ]
    if not finite:
        raise ValueError("series contain no finite values")
    y_lo, y_hi = min(finite), max(finite)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = min(xs), max(xs)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    markers = "*+ox#@%&"
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        legend.append(f"{marker} {name}")
        for x_value, y_value in zip(xs, values):
            if math.isnan(y_value):
                continue
            col = round((x_value - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((y_value - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_tick = _format_tick(y_hi)
    bottom_tick = _format_tick(y_lo)
    label_width = max(len(top_tick), len(bottom_tick), len(y_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_tick
        elif row_index == height - 1:
            label = bottom_tick
        elif row_index == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |" + "".join(row))
    axis = f"{'':>{label_width}} +" + "-" * width
    lines.append(axis)
    lines.append(
        f"{'':>{label_width}}  {_format_tick(x_lo)}"
        + " " * max(1, width - len(_format_tick(x_lo)) - len(_format_tick(x_hi)))
        + _format_tick(x_hi)
    )
    lines.append(f"{'':>{label_width}}  legend: " + "   ".join(legend))
    return "\n".join(lines)


def plot_figure(result) -> str:
    """Best-effort plot of a FigureResult's main series.

    Chooses sensible x/y columns per figure family; falls back to the
    first two numeric columns.
    """
    rows = result.rows
    if not rows:
        return "(no rows to plot)"
    columns = result.columns
    # time-series figures: index/bin_start on x, *mean columns as series
    for x_column in ("index", "bin_start"):
        if x_column in columns:
            xs = [row[x_column] for row in rows]
            series = {
                column: [float(row[column]) for row in rows]
                for column in columns
                if column.endswith("mean") or column.endswith("_L")
            }
            if series:
                return ascii_plot(series, x=xs, title=result.description,
                                  y_label="ms")
    # sweep figures: first column on x; if a 'policy' column exists, one
    # series per policy, else plot min/mean/max
    x_column = columns[0]
    if "policy" in columns:
        policies = sorted({row["policy"] for row in rows})
        xs = sorted({row[x_column] for row in rows})
        series = {}
        for policy in policies:
            by_x = {row[x_column]: row["mean"] for row in rows
                    if row["policy"] == policy}
            series[policy] = [float(by_x.get(x, float("nan"))) for x in xs]
        return ascii_plot(series, x=list(range(len(xs))),
                          title=result.description, y_label="ms")
    xs = [float(row[x_column]) for row in rows]
    series = {
        column: [float(row[column]) for row in rows]
        for column in ("min", "mean", "max")
        if column in columns
    }
    if not series:
        return "(no numeric series to plot)"
    return ascii_plot(series, x=list(range(len(xs))),
                      title=result.description)
