"""Experiment harness regenerating every table and figure of the paper.

Each ``figure*`` function in :mod:`~repro.experiments.figures` rebuilds
one plot of Section V as structured rows; the ``benchmarks/`` tree wraps
them in pytest-benchmark targets that print the same series the paper
reports.

Cost scaling: the paper aggregates over 100 randomized streams per
configuration; that is hours of CPU.  ``REPRO_REPS`` (default 5) sets
the repetition count and ``REPRO_SCALE`` (default 1.0) scales stream
lengths; shapes are stable from roughly 5-10 repetitions.
"""

from repro.experiments.runner import (
    ExperimentSettings,
    PolicyOutcome,
    SWEEP_POSG_CONFIG,
    compare_policies,
    env_reps,
    env_scale,
)
from repro.experiments.figures import (
    FigureResult,
    figure4_distributions,
    figure5_overprovisioning,
    figure6_wmax,
    figure7_wn,
    figure8_instances,
    figure9_epsilon,
    figure10_timeseries,
    figure11_prototype_timeseries,
    figure12_twitter,
)
from repro.experiments.report import format_table, render_figure

__all__ = [
    "ExperimentSettings",
    "PolicyOutcome",
    "SWEEP_POSG_CONFIG",
    "compare_policies",
    "env_reps",
    "env_scale",
    "FigureResult",
    "figure4_distributions",
    "figure5_overprovisioning",
    "figure6_wmax",
    "figure7_wn",
    "figure8_instances",
    "figure9_epsilon",
    "figure10_timeseries",
    "figure11_prototype_timeseries",
    "figure12_twitter",
    "format_table",
    "render_figure",
]
