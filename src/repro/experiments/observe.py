"""The ``observe`` CLI subcommand: the scheduling-quality observatory.

Usage::

    python -m repro.experiments observe
    python -m repro.experiments observe --scale 0.1 --output out/
    python -m repro.experiments observe --live

Runs a Figure 4-sized stream (m = 32,768 scaled, k = 5) with POSG under
the full quality-observability stack:

- the **estimator audit** samples every N-th routed tuple, comparing the
  scheduler's W/F estimate against the true execution time (streaming
  error quantiles, per-row collision diagnostics, Theorem 4.3 tail
  checks);
- the **decision-quality** metrics replay the run's assignments against
  the true execution-time matrix: achieved makespan vs the oracle GOS
  fed true times, the Theorem 4.2 Graham bound ``2 - 1/k``, windowed
  load imbalance and misroute regret;
- the **phase profiler** wraps the engine's hash / estimate / route /
  fold / window-close phases in nanosecond spans;
- the **live dashboard** repaints an ANSI terminal view of the registry
  while the run executes (``--live``; defaults to on when stdout is a
  TTY) — otherwise one static frame is printed after the run.

With ``--output DIR`` it writes ``quality_report.json`` (a v3
:class:`~repro.telemetry.report.RunReport` with the audit and quality
blocks), ``quality_report.html`` (the dependency-free static report),
``metrics.prom``, ``profile.json`` and ``flamegraph.txt`` (collapsed
stacks for ``flamegraph.pl``-style tools).

The exit code asserts the observatory's own guarantees: 1 when the
oracle-GOS makespan violates the Theorem 4.2 bound on the identical-
machine scenario, when any Theorem 4.3 Markov check fails (impossible
on the empirical measure — a failure means the audit itself is broken),
or when the estimator-error quantiles are not finite.

The module is imported lazily by ``repro.experiments.cli``.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
from collections.abc import Sequence


def run(
    scale: float | None = None,
    output: str | None = None,
    chunk_size: int = 2048,
    seed: int = 0,
    live: bool | None = None,
) -> int:
    """Execute the observatory run; returns a process exit code."""
    import numpy as np

    from repro.core.config import POSGConfig
    from repro.core.grouping import POSGGrouping
    from repro.simulator.run import simulate_stream
    from repro.telemetry.audit import AuditConfig
    from repro.telemetry.dashboard import (
        LiveDashboard,
        render_frame,
        write_html_report,
    )
    from repro.telemetry.profiler import PhaseProfiler
    from repro.telemetry.quality import (
        compute_quality,
        execution_time_matrix,
        record_quality,
    )
    from repro.telemetry.recorder import TelemetryRecorder
    from repro.telemetry.report import RunReport
    from repro.workloads.nonstationary import LoadShiftScenario
    from repro.workloads.synthetic import default_stream

    if scale is None:
        scale = float(os.environ.get("REPRO_SCALE", "1.0"))
    m = max(8_192, int(32_768 * scale))
    k = 5
    if live is None:
        live = sys.stdout.isatty()

    directory: pathlib.Path | None = None
    if output is not None:
        directory = pathlib.Path(output)
        directory.mkdir(parents=True, exist_ok=True)

    # Same compact configuration as the chaos scenario: the matrices
    # stabilize early at every scale, so the audit mostly samples the
    # estimator in its steady (RUN) regime rather than during warm-up.
    window = min(256, max(64, m // 128))
    stream = default_stream(seed=seed, m=m, n=128)
    config = POSGConfig(window_size=window, rows=2, cols=16)
    scenario = LoadShiftScenario.constant(k)
    audit_config = AuditConfig(sample_every=max(8, m // 2048))
    profiler = PhaseProfiler()

    with TelemetryRecorder() as recorder:
        policy = POSGGrouping(config, telemetry=recorder)

        def simulate():
            return simulate_stream(
                stream,
                policy,
                k=k,
                scenario=scenario,
                rng=np.random.default_rng(seed + 1),
                chunk_size=chunk_size,
                telemetry=recorder,
                audit=audit_config,
                profiler=profiler,
            )

        if live:
            dashboard = LiveDashboard(recorder, title="posg observe")
            result = dashboard.run(simulate)
        else:
            result = simulate()

        times = execution_time_matrix(stream, scenario, k)
        quality = compute_quality(
            np.asarray(result.stats.assignments), times, k
        )
        record_quality(recorder, quality)
        report = RunReport.from_simulation(
            result, k, telemetry=recorder, quality=quality
        )

        if not live:
            print(render_frame(recorder.registry.snapshot(), title="posg observe"))
            print()
        print(report.summary())

        if directory is not None:
            report_path = report.save(directory / "quality_report.json")
            html_path = directory / "quality_report.html"
            write_html_report(html_path, report.to_dict())
            prom_path = directory / "metrics.prom"
            prom_path.write_text(recorder.registry.to_prometheus())
            profile_path = profiler.save_json(directory / "profile.json")
            flame_path = directory / "flamegraph.txt"
            flame_path.write_text(profiler.to_flamegraph())
            for path in (
                report_path, html_path, prom_path, profile_path, flame_path
            ):
                print(f"wrote {path}")

    # ------------------------------------------------------------------
    # gates: the observatory must stand behind its own numbers
    # ------------------------------------------------------------------
    failures = []
    makespan = quality["makespan"]
    if makespan["theorem42_holds"] is False:
        failures.append(
            f"oracle GOS makespan ratio {makespan['oracle_gos_ratio']:.4f} "
            f"exceeds the Theorem 4.2 bound {makespan['graham_bound']:.4f}"
        )
    audit_report = report.audit
    if not audit_report or audit_report["samples"] == 0:
        failures.append("estimator audit collected no samples")
    else:
        if not audit_report["theorem43"]["all_markov_hold"]:
            failures.append("a Theorem 4.3 empirical Markov check failed")
        for key, value in audit_report["abs_error_quantiles_ms"].items():
            if value is None or not np.isfinite(value):
                failures.append(f"abs error quantile {key} is not finite")
    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.observe",
        description="Run POSG under the quality observatory.",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="stream-length scale factor (1.0 = paper sizes)",
    )
    parser.add_argument(
        "--output", type=str, default=None,
        help="directory for quality_report.{json,html}, metrics.prom, "
        "profile.json and flamegraph.txt",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=2048,
        help="simulator chunk size (0 = per-tuple reference engine)",
    )
    parser.add_argument("--seed", type=int, default=0, help="stream seed")
    live = parser.add_mutually_exclusive_group()
    live.add_argument(
        "--live", dest="live", action="store_true", default=None,
        help="repaint the ANSI dashboard while the run executes",
    )
    live.add_argument(
        "--no-live", dest="live", action="store_false",
        help="print one static frame after the run (default off-TTY)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return run(
        scale=args.scale,
        output=args.output,
        chunk_size=args.chunk_size,
        seed=args.seed,
        live=args.live,
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
