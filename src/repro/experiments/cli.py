"""Command-line interface for the experiment harness.

Usage::

    python -m repro.experiments list
    python -m repro.experiments figure4 --reps 5
    python -m repro.experiments figure10 --scale 0.5
    python -m repro.experiments all --reps 3 --scale 0.25
    python -m repro.experiments telemetry --scale 0.1 --output out/
    python -m repro.experiments chaos --scale 0.1 --output out/
    python -m repro.experiments observe --scale 0.1 --output out/
    python -m repro.experiments multisource --scale 0.25 --output out/
    python -m repro.experiments attribution --scale 0.25 --output out/
    python -m repro.experiments latency --scale 0.25 --output out/

Each figure command prints the same series the paper plots (see
EXPERIMENTS.md for the interpretation).  The ``telemetry`` subcommand
runs the Figure 4 configuration once under a live recorder and emits
the run report, Prometheus metrics and JSONL event trace (see
"Telemetry & run reports" in EXPERIMENTS.md).  The ``chaos``
subcommand runs the same configuration under the fault-injection layer
(control-plane loss plus a seeded crash) and reports the recovery
timeline (see "Chaos runs" in EXPERIMENTS.md).  The ``observe``
subcommand runs the scheduling-quality observatory: estimator audit,
decision-quality metrics, phase profiler and the live dashboard (see
"The quality observatory" in EXPERIMENTS.md).  The ``multisource``
subcommand sweeps the sharded deployment over s ∈ {1, 2, 4, 8} and
reports the L(s)/L(1) degradation curve (see "Multi-source scheduling"
in EXPERIMENTS.md).  The ``attribution`` subcommand reruns that sweep
under the cross-shard flight recorder and decomposes each point's
excess into staleness regret, collision loss and residual (see
"Attribution" in EXPERIMENTS.md).  The ``latency`` subcommand runs the
lineage tracer over a strategy x shard sweep and prints each point's
exact scheduling-delay / queue-wait / service-time decomposition (see
"Latency lineage" in EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
from collections.abc import Callable, Sequence

from repro.experiments import figures
from repro.experiments.report import render_figure

#: command name -> zero-argument callable producing a FigureResult
FIGURES: dict[str, Callable] = {
    "figure4": figures.figure4_distributions,
    "figure5": figures.figure5_overprovisioning,
    "figure6": figures.figure6_wmax,
    "figure7": figures.figure7_wn,
    "figure8": figures.figure8_instances,
    "figure9": figures.figure9_epsilon,
    "figure10": figures.figure10_timeseries,
    "figure11": figures.figure11_prototype_timeseries,
    "figure12": figures.figure12_twitter,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "figure",
        choices=sorted(FIGURES)
        + ["all", "list", "telemetry", "chaos", "observe", "multisource",
           "attribution", "latency"],
        help="which figure to regenerate ('all' runs everything, "
        "'list' shows what is available, 'telemetry' runs one "
        "instrumented demo run, 'chaos' one fault-injected run, "
        "'observe' one run under the quality observatory, "
        "'multisource' the sharded-scheduling degradation sweep, "
        "'attribution' the flight-recorder regret decomposition, "
        "'latency' the per-tuple lineage latency decomposition)",
    )
    parser.add_argument(
        "--reps", type=int, default=None,
        help="randomized streams per configuration (paper: 100; default 5)",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="stream-length scale factor (1.0 = paper sizes)",
    )
    parser.add_argument(
        "--plot", action="store_true",
        help="also render an ASCII plot of each figure",
    )
    parser.add_argument(
        "--output", type=str, default=None,
        help="directory to write <figure>.json result files into",
    )
    parser.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="multisource: also run each sweep point through the "
        "multi-process parallel engine with N workers (gated "
        "bit-identical against the sequential run); chaos: run "
        "process-level chaos against the parallel engine with N workers "
        "(worker crash/hang injected mid-run, gated on bit-identity and "
        "full supervisor recovery)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.figure == "list":
        for name, function in sorted(FIGURES.items()):
            summary = (function.__doc__ or "").strip().splitlines()[0]
            print(f"{name:10s} {summary}")
        print("telemetry  One instrumented run: report, metrics, trace.")
        print("chaos      One fault-injected run: recovery timeline, report.")
        print("observe    One run under the quality observatory: audit, "
              "quality, profile, dashboard.")
        print("multisource  Sharded-scheduling sweep: L(s)/L(1) for "
              "s in {1, 2, 4, 8}.")
        print("attribution  Flight-recorder sweep: L(s)/L(1) decomposed "
              "into staleness / collision / residual.")
        print("latency    Lineage sweep: per-tuple scheduling delay / "
              "queue wait / service time by strategy and s.")
        return 0
    if args.figure == "telemetry":
        # lazy import keeps the figure path free of telemetry CLI costs
        from repro.telemetry.cli import run as run_telemetry

        return run_telemetry(scale=args.scale, output=args.output)
    if args.figure == "chaos":
        from repro.experiments.chaos import run as run_chaos
        from repro.experiments.chaos import run_parallel as run_chaos_parallel

        if args.parallel is not None:
            return run_chaos_parallel(
                workers=args.parallel, scale=args.scale, output=args.output
            )
        return run_chaos(scale=args.scale, output=args.output)
    if args.figure == "observe":
        from repro.experiments.observe import run as run_observe

        return run_observe(scale=args.scale, output=args.output)
    if args.figure == "multisource":
        from repro.experiments.multisource import run as run_multisource

        return run_multisource(
            scale=args.scale,
            output=args.output,
            parallel_workers=args.parallel,
        )
    if args.figure == "attribution":
        from repro.experiments.attribution import run as run_attribution

        return run_attribution(scale=args.scale, output=args.output)
    if args.figure == "latency":
        from repro.experiments.latency import run as run_latency

        return run_latency(scale=args.scale, output=args.output)
    if args.reps is not None:
        os.environ["REPRO_REPS"] = str(args.reps)
    if args.scale is not None:
        os.environ["REPRO_SCALE"] = str(args.scale)
    names = sorted(FIGURES) if args.figure == "all" else [args.figure]
    for name in names:
        result = FIGURES[name]()
        print(render_figure(result))
        if args.plot:
            from repro.experiments.plotting import plot_figure

            print()
            print(plot_figure(result))
        if args.output is not None:
            directory = pathlib.Path(args.output)
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / f"{name}.json"
            result.save(path)
            print(f"(saved to {path})")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
