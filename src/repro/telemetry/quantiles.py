"""Streaming quantiles: the P² (piecewise-parabolic) estimator.

Jain & Chlamtac's P² algorithm (CACM 1985) tracks one quantile of a
stream in O(1) memory: five markers whose heights straddle the target
quantile are nudged after every observation, moving along a parabola
fitted through their neighbours.  The estimate is the height of the
middle marker.

Two places use it:

- :class:`~repro.telemetry.audit.EstimatorAudit` keeps error quantiles
  over the sampled tuples without retaining the samples;
- :meth:`repro.simulator.metrics.CompletionStats.percentile` defaults to
  it, bounding report memory at production stream sizes (an
  ``exact=True`` flag keeps the old ``np.percentile`` available).

The estimator is deterministic: the same observation sequence always
produces the same value, which the audit's reproducibility guarantee
relies on.  For fewer than five observations the exact sample quantile
(linear interpolation, ``np.percentile``'s default rule) is returned.
"""

from __future__ import annotations

import bisect

__all__ = ["P2Quantile"]


class P2Quantile:
    """One streaming quantile via the P² algorithm.

    Parameters
    ----------
    q:
        Target quantile in ``(0, 1)``, e.g. ``0.99`` for the p99.
    """

    __slots__ = ("q", "_count", "_heights", "_positions", "_desired", "_rates")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._count = 0
        #: first five observations, kept sorted; becomes marker heights
        self._heights: list[float] = []
        self._positions: list[float] = []
        self._desired: list[float] = []
        self._rates = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        """Fold one observation into the estimate."""
        value = float(value)
        if value != value:
            raise ValueError("cannot observe NaN")
        count = self._count + 1
        self._count = count
        heights = self._heights
        if count <= 5:
            bisect.insort(heights, value)
            if count == 5:
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [
                    1.0 + 4.0 * rate for rate in self._rates
                ]
            return

        positions = self._positions
        # Locate the cell containing the observation, clamping the
        # extreme markers to the running min/max.  The position and
        # desired-position updates are unrolled: the estimator audit
        # calls this once per quantile per sampled tuple, and the loop
        # bookkeeping dominated the steady-state cost.
        if value < heights[0]:
            heights[0] = value
            positions[1] += 1.0
            positions[2] += 1.0
            positions[3] += 1.0
        elif value >= heights[4]:
            if value > heights[4]:
                heights[4] = value
        elif value < heights[1]:
            positions[1] += 1.0
            positions[2] += 1.0
            positions[3] += 1.0
        elif value < heights[2]:
            positions[2] += 1.0
            positions[3] += 1.0
        elif value < heights[3]:
            positions[3] += 1.0
        positions[4] += 1.0
        desired = self._desired
        rates = self._rates
        desired[1] += rates[1]
        desired[2] += rates[2]
        desired[3] += rates[3]
        desired[4] += 1.0

        # Nudge the three interior markers toward their desired positions.
        for index in (1, 2, 3):
            delta = desired[index] - positions[index]
            pos = positions[index]
            right = positions[index + 1]
            left = positions[index - 1]
            if (delta >= 1.0 and right - pos > 1.0) or (
                delta <= -1.0 and left - pos < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(index, step)
                if heights[index - 1] < candidate < heights[index + 1]:
                    heights[index] = candidate
                else:
                    heights[index] = self._linear(index, step)
                positions[index] = pos + step

    def observe_many(self, values) -> None:
        """Fold a sequence of observations, in order."""
        for value in values:
            self.observe(value)

    def _parabolic(self, index: int, step: float) -> float:
        heights = self._heights
        positions = self._positions
        pos = positions[index]
        left, right = positions[index - 1], positions[index + 1]
        return heights[index] + step / (right - left) * (
            (pos - left + step)
            * (heights[index + 1] - heights[index])
            / (right - pos)
            + (right - pos - step)
            * (heights[index] - heights[index - 1])
            / (pos - left)
        )

    def _linear(self, index: int, step: float) -> float:
        heights = self._heights
        positions = self._positions
        other = index + int(step)
        return heights[index] + step * (heights[other] - heights[index]) / (
            positions[other] - positions[index]
        )

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Observations folded in so far."""
        return self._count

    @property
    def value(self) -> float:
        """Current quantile estimate (NaN before any observation).

        Exact (linear-interpolated sample quantile) through the fifth
        observation, the P² middle-marker height afterwards.
        """
        count = self._count
        if count == 0:
            return float("nan")
        heights = self._heights
        if count <= 5:
            # np.percentile's default linear interpolation
            rank = self.q * (count - 1)
            lo = int(rank)
            frac = rank - lo
            if frac == 0.0 or lo + 1 >= count:
                return heights[lo]
            return heights[lo] + frac * (heights[lo + 1] - heights[lo])
        return heights[2]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"P2Quantile(q={self.q}, count={self._count}, value={self.value})"
