"""Live ANSI dashboard and static HTML quality report.

Two consumers of the same registry snapshots:

- :func:`render_frame` — a **pure** function from one
  :meth:`~repro.telemetry.registry.MetricsRegistry.snapshot` dict to a
  fixed-width text frame (scheduler FSM, per-instance ``C_hat`` bars,
  estimator-audit gauges, quality gauges).  Pure so tests can assert on
  frames without a terminal.
- :class:`LiveDashboard` — runs a simulation callable in a worker thread
  and repaints frames from the live registry until it finishes.  The
  scheduler/audit metrics are export-time collectors reading plain
  Python state, so sampling them mid-run is safe (worst case a frame
  shows a value mid-update — the final frame is rendered after the
  join) and costs the run nothing.
- :func:`write_html_report` — a dependency-free static HTML rendering of
  a v3 :class:`~repro.telemetry.report.RunReport` dict (quality +
  audit + theorem checks), with the full JSON embedded for machines.
"""

from __future__ import annotations

import html
import json
import sys
import threading
from pathlib import Path

__all__ = [
    "render_frame",
    "render_shard_lanes",
    "LiveDashboard",
    "write_html_report",
]

#: characters used for the horizontal gauge bars
_BAR_FULL = "#"
_BAR_EMPTY = "."

_CLEAR = "\x1b[H\x1b[2J"
_HOME = "\x1b[H"
_BOLD = "\x1b[1m"
_DIM = "\x1b[2m"
_RESET = "\x1b[0m"


def _labeled(snapshot: dict, name: str, label: str) -> dict[str, float]:
    """Extract ``{label_value: value}`` for a labelled metric family."""
    prefix = name + "{"
    out: dict[str, float] = {}
    needle = label + '="'
    for key, value in snapshot.items():
        if key.startswith(prefix):
            body = key[len(prefix):-1]
            at = body.find(needle)
            if at >= 0:
                start = at + len(needle)
                out[body[start:body.index('"', start)]] = value
    return out


def _bar(value: float, peak: float, width: int) -> str:
    if peak <= 0:
        filled = 0
    else:
        filled = int(round(width * min(1.0, value / peak)))
    return _BAR_FULL * filled + _BAR_EMPTY * (width - filled)


def render_frame(
    snapshot: dict,
    title: str = "POSG scheduling-quality observatory",
    width: int = 72,
    ansi: bool = False,
) -> str:
    """One dashboard frame from a registry snapshot (pure)."""
    bold = _BOLD if ansi else ""
    dim = _DIM if ansi else ""
    reset = _RESET if ansi else ""
    rule = "-" * width
    lines = [f"{bold}== {title} =={reset}", rule]

    state = next(
        iter(_labeled(snapshot, "posg_scheduler_state_info", "state")), "?"
    )
    scheduled = snapshot.get("posg_scheduler_tuples_scheduled_total", 0)
    epoch = snapshot.get("posg_scheduler_epoch", 0)
    rounds = snapshot.get("posg_scheduler_sync_rounds_total", 0)
    lines.append(
        f"scheduler  state={state:<12} tuples={int(scheduled):>8,} "
        f"epoch={int(epoch):>3}  sync_rounds={int(rounds):>3}"
    )

    c_hat = _labeled(snapshot, "posg_scheduler_c_hat_ms", "instance")
    if c_hat:
        peak = max(c_hat.values())
        lines.append(f"{dim}C_hat (estimated cumulated work, ms){reset}")
        for instance in sorted(c_hat, key=int):
            value = c_hat[instance]
            lines.append(
                f"  i{instance}  {_bar(value, peak, width - 24)} {value:>12,.1f}"
            )

    samples = snapshot.get("posg_estimator_samples_total")
    if samples is not None:
        lines.append(rule)
        mean_true = snapshot.get("posg_estimator_mean_true_ms", 0.0)
        mean_est = snapshot.get("posg_estimator_mean_estimate_ms", 0.0)
        mean_err = snapshot.get("posg_estimator_mean_abs_error_ms", 0.0)
        lines.append(
            f"estimator  samples={int(samples):>7,}  true={mean_true:8.3f} ms  "
            f"est={mean_est:8.3f} ms  |err|={mean_err:8.3f} ms"
        )
        quantile_bits = []
        for key, value in sorted(snapshot.items()):
            if key.startswith("posg_estimator_rel_error_p"):
                quantile_bits.append(
                    f"{key.rsplit('_', 1)[-1]}={value:.3f}"
                )
        if quantile_bits:
            lines.append("  rel err    " + "  ".join(quantile_bits))
        tails = _labeled(snapshot, "posg_estimator_tail_fraction", "threshold_ms")
        if tails:
            lines.append(
                "  tail       "
                + "  ".join(
                    f"P[est>={threshold}]={tails[threshold]:.4f}"
                    for threshold in sorted(tails, key=float)
                )
            )

    if "posg_quality_achieved_makespan_ms" in snapshot:
        lines.append(rule)
        lines.append(
            "quality    achieved/oracle="
            f"{snapshot.get('posg_quality_achieved_vs_oracle', 0.0):.4f}  "
            "oracle/LB="
            f"{snapshot.get('posg_quality_oracle_gos_ratio', 0.0):.4f}  "
            f"imbalance={snapshot.get('posg_quality_imbalance', 0.0):.4f}"
        )
        lines.append(
            "  regret     misroute="
            f"{snapshot.get('posg_quality_misroute_fraction', 0.0):.4f}  "
            f"cost={snapshot.get('posg_quality_regret_ms', 0.0):,.1f} ms"
        )

    flight_events = _labeled(snapshot, "posg_flight_events_total", "shard")
    if flight_events:
        routes = _labeled(snapshot, "posg_flight_routes_sampled_total", "shard")
        folds = _labeled(snapshot, "posg_flight_folds_total", "shard")
        stale = _labeled(snapshot, "posg_flight_staleness_tuples_mean", "shard")
        dropped = _labeled(snapshot, "posg_flight_dropped_events_total", "shard")
        lines.append(rule)
        lines.append(f"{dim}flight recorder (per shard){reset}")
        for shard in sorted(flight_events, key=int):
            lines.append(
                f"  shard {shard}  events={int(flight_events[shard]):>6,}  "
                f"routes={int(routes.get(shard, 0)):>5,}  "
                f"folds={int(folds.get(shard, 0)):>4}  "
                f"staleness={stale.get(shard, 0.0):>9,.1f}  "
                f"dropped={int(dropped.get(shard, 0))}"
            )

    lineage_samples = _labeled(snapshot, "posg_lineage_samples_total", "shard")
    if lineage_samples:
        means = _labeled(
            snapshot, "posg_lineage_component_mean_ms", "component"
        )
        p99s = _labeled(snapshot, "posg_lineage_component_p99_ms", "component")
        dropped = _labeled(
            snapshot, "posg_lineage_dropped_samples_total", "shard"
        )
        lines.append(rule)
        lines.append(
            f"{dim}lineage latency waterfall "
            f"(sampled spans: {int(sum(lineage_samples.values())):,}, "
            f"dropped: {int(sum(dropped.values())):,}){reset}"
        )
        total = means.get("completion", 0.0)
        for component in (
            "scheduling_delay", "queue_wait", "service_time", "completion"
        ):
            if component not in means:
                continue
            mean = means[component]
            p99 = p99s.get(component)
            lines.append(
                f"  {component:<17}{_bar(mean, total, width - 46)} "
                f"mean={mean:>9,.3f} ms"
                + (f"  p99={p99:>9,.3f} ms" if p99 is not None else "")
            )
        burn = _labeled(snapshot, "posg_slo_burn_rate", "slo")
        met = _labeled(snapshot, "posg_slo_met", "slo")
        violations = _labeled(snapshot, "posg_slo_violations_total", "slo")
        for name in sorted(burn):
            lines.append(
                f"  slo {name:<14}"
                f"{'MET   ' if met.get(name, 0.0) else 'MISSED'} "
                f"burn_rate={burn[name]:>7.3f}  "
                f"violations={int(violations.get(name, 0)):,}"
            )

    completed = snapshot.get("sim_tuples_total")
    if completed is not None:
        lines.append(rule)
        lines.append(
            f"run        simulated={int(completed):>8,}  "
            f"L={snapshot.get('sim_avg_completion_ms', 0.0):.3f} ms  "
            f"control={int(snapshot.get('sim_control_messages_total', 0)):,} msgs"
        )
    return "\n".join(lines)


#: shard-lane glyphs, highest priority last (later wins a shared column)
_LANE_GLYPHS = {
    "route": ".",
    "matrices": "m",
    "sync_request": "s",
    "sync_reply": "r",
    "fold": "F",
}
_LANE_PRIORITY = {
    "route": 0,
    "matrices": 1,
    "sync_reply": 2,
    "sync_request": 3,
    "fold": 4,
}


def render_shard_lanes(
    flight_report: dict,
    width: int = 72,
    ansi: bool = False,
) -> str:
    """Render a flight-recorder report's per-shard timelines as lanes.

    One fixed-width lane per shard over the global stream axis; each
    event of the (already downsampled) report lane lands in the column
    proportional to its global stream index.  Glyphs: ``F`` fold
    (``C_hat`` re-baseline), ``s``/``r`` sync request/reply, ``m``
    matrices broadcast, ``.`` sampled routing decision; when several
    events share a column the control-plane event wins over route
    samples.  Pure text in, text out — usable from the CLI, tests and
    the HTML report alike.
    """
    bold = _BOLD if ansi else ""
    dim = _DIM if ansi else ""
    reset = _RESET if ansi else ""
    per_shard = flight_report.get("per_shard", [])
    lane_width = max(8, width - 12)
    span = 1
    for shard in per_shard:
        for _, g in shard.get("lane", []):
            if g is not None and g > span:
                span = g
    lines = [
        f"{bold}shard lanes{reset} "
        f"{dim}(F fold, s sync_request, r sync_reply, m matrices, "
        f". route sample){reset}"
    ]
    for shard in per_shard:
        cells = [" "] * lane_width
        ranks = [-1] * lane_width
        for kind, g in shard.get("lane", []):
            if g is None or g < 0:
                continue
            col = min(lane_width - 1, g * lane_width // (span + 1))
            rank = _LANE_PRIORITY.get(kind, 0)
            if rank >= ranks[col]:
                ranks[col] = rank
                cells[col] = _LANE_GLYPHS.get(kind, "?")
        lines.append(f"  s{shard.get('shard', '?')} |{''.join(cells)}|")
        lines.append(
            f"     {dim}folds={shard.get('folds', 0)}  "
            f"routes={shard.get('route_samples', 0)}  "
            f"stale_replies={shard.get('stale_replies', 0)}  "
            f"staleness mean/max={shard.get('staleness_mean', 0.0):,.0f}/"
            f"{shard.get('staleness_max', 0):,} tuples  "
            f"dropped={shard.get('dropped_events', 0)}{reset}"
        )
    return "\n".join(lines)


class LiveDashboard:
    """Repaint :func:`render_frame` while a run executes in a thread.

    Parameters
    ----------
    recorder:
        Live :class:`~repro.telemetry.recorder.TelemetryRecorder` whose
        registry is being painted.
    interval:
        Seconds between repaints.
    out:
        Output text stream (defaults to stdout).
    ansi:
        Emit cursor-control sequences; turn off for dumb sinks.
    """

    def __init__(
        self,
        recorder,
        interval: float = 0.2,
        out=None,
        ansi: bool = True,
        title: str = "POSG scheduling-quality observatory",
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self._recorder = recorder
        self._interval = interval
        self._out = out if out is not None else sys.stdout
        self._ansi = ansi
        self._title = title
        self.frames_rendered = 0

    def _paint(self, first: bool) -> None:
        frame = render_frame(
            self._recorder.registry.snapshot(),
            title=self._title,
            ansi=self._ansi,
        )
        if self._ansi:
            prefix = _CLEAR if first else _HOME
            self._out.write(prefix + frame + "\x1b[J\n")
        else:
            self._out.write(frame + "\n")
        self._out.flush()
        self.frames_rendered += 1

    def run(self, fn):
        """Execute ``fn()`` in a worker thread, painting until it returns.

        Re-raises ``fn``'s exception, returns its result, and always
        paints one final frame after the join so the last state shown is
        the completed run's.
        """
        box: dict = {}

        def worker() -> None:
            try:
                box["result"] = fn()
            except BaseException as error:  # noqa: BLE001 - re-raised below
                box["error"] = error

        thread = threading.Thread(target=worker, daemon=True)
        self._paint(first=True)
        thread.start()
        while thread.is_alive():
            thread.join(self._interval)
            if thread.is_alive():
                self._paint(first=False)
        self._paint(first=False)
        if "error" in box:
            raise box["error"]
        return box.get("result")


# ----------------------------------------------------------------------
# static HTML report
# ----------------------------------------------------------------------
def _html_table(rows: list[tuple], headers: tuple) -> str:
    head = "".join(f"<th>{html.escape(str(h))}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{html.escape(str(c))}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def _fmt(value, digits: int = 4) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def write_html_report(path: "str | Path", report: dict) -> Path:
    """Render a v3 run-report dict as a static, dependency-free HTML page."""
    sections = [
        f"<h1>POSG quality report</h1>"
        f"<p class='meta'>policy={html.escape(str(report.get('policy')))} "
        f"m={report.get('m')} k={report.get('k')} "
        f"schema={html.escape(str(report.get('schema')))}</p>",
        "<h2>Run</h2>"
        + _html_table(
            [
                ("L (avg completion)", f"{_fmt(report.get('average_completion_ms'))} ms"),
                ("p99 completion", f"{_fmt(report.get('p99_completion_ms'))} ms"),
                ("max completion", f"{_fmt(report.get('max_completion_ms'))} ms"),
                ("imbalance (tuple counts)", _fmt(report.get("imbalance"))),
                ("control messages", report.get("control_messages")),
                ("control bits", report.get("control_bits")),
            ],
            ("metric", "value"),
        ),
    ]

    quality = report.get("quality")
    if quality:
        makespan = quality["makespan"]
        sections.append(
            "<h2>Decision quality</h2>"
            + _html_table(
                [
                    ("achieved makespan", f"{_fmt(makespan['achieved_ms'])} ms"),
                    ("oracle GOS makespan", f"{_fmt(makespan['oracle_gos_ms'])} ms"),
                    ("OPT lower bound", f"{_fmt(makespan['opt_lower_bound_ms'])} ms"),
                    ("achieved / oracle", _fmt(makespan["achieved_vs_oracle"])),
                    (
                        "oracle / LB vs Graham bound "
                        f"(2 - 1/k = {_fmt(makespan['graham_bound'])})",
                        _fmt(makespan["oracle_gos_ratio"]),
                    ),
                    ("Theorem 4.2 holds", _fmt(makespan["theorem42_holds"])),
                    ("final imbalance", _fmt(quality["imbalance"]["final"])),
                    ("misroute fraction", _fmt(quality["regret"]["misroute_fraction"])),
                    ("total regret", f"{_fmt(quality['regret']['total_ms'], 1)} ms"),
                ],
                ("metric", "value"),
            )
        )

    audit = report.get("audit")
    if audit:
        abs_q = audit.get("abs_error_quantiles_ms", {})
        rel_q = audit.get("rel_error_quantiles", {})
        quantile_rows = [
            (key, f"{_fmt(abs_q.get(key))} ms", _fmt(rel_q.get(key)))
            for key in abs_q
        ]
        sections.append(
            "<h2>Estimator audit</h2>"
            + _html_table(
                [
                    ("audited samples", audit.get("samples")),
                    ("sample stride", audit.get("sample_every")),
                    ("mean true time", f"{_fmt(audit.get('mean_true_ms'))} ms"),
                    ("mean estimate", f"{_fmt(audit.get('mean_estimate_ms'))} ms"),
                    ("mean |error|", f"{_fmt(audit.get('mean_abs_error_ms'))} ms"),
                    ("overestimate fraction", _fmt(audit.get("overestimate_fraction"))),
                ],
                ("metric", "value"),
            )
            + "<h3>Error quantiles (streaming P&sup2;)</h3>"
            + _html_table(quantile_rows, ("quantile", "absolute", "relative"))
        )
        theorem = audit.get("theorem43") or {}
        checks = theorem.get("checks") or []
        if checks:
            sections.append(
                f"<h3>Theorem 4.3 tail checks (r = {theorem.get('rows')})</h3>"
                + _html_table(
                    [
                        (
                            f"{check['threshold_ms']:g} ms",
                            _fmt(check["empirical_tail"]),
                            _fmt(check["markov_bound"]),
                            _fmt(check["row_bound"]),
                            _fmt(check["holds"]),
                        )
                        for check in checks
                    ],
                    ("threshold a", "empirical Pr{est >= a}", "Markov E/a",
                     "(E/a)^r", "holds"),
                )
            )

    flight = report.get("flightrecorder")
    if flight:
        shard_rows = [
            (
                shard.get("shard"),
                shard.get("events"),
                shard.get("sync_requests"),
                shard.get("sync_replies"),
                shard.get("stale_replies"),
                shard.get("folds"),
                shard.get("route_samples"),
                _fmt(shard.get("staleness_mean"), 1),
                shard.get("staleness_max"),
                shard.get("dropped_events"),
            )
            for shard in flight.get("per_shard", [])
        ]
        sections.append(
            "<h2>Flight recorder</h2>"
            + _html_table(
                [
                    ("scheduler shards", flight.get("sources")),
                    ("events captured", flight.get("events_total")),
                    ("events dropped (capacity)", flight.get("dropped_events")),
                    ("route sample stride", flight.get("sample_every")),
                    ("collision window (tuples)", flight.get("window")),
                ],
                ("metric", "value"),
            )
            + _html_table(
                shard_rows,
                ("shard", "events", "sync req", "sync rep", "stale",
                 "folds", "routes", "staleness mean", "staleness max",
                 "dropped"),
            )
            + "<h3>Shard lanes</h3><pre>"
            + html.escape(render_shard_lanes(flight, width=100))
            + "</pre>"
        )

    lineage = report.get("lineage")
    if lineage:
        component_rows = [
            (
                component,
                _fmt(block.get("mean_ms"), 3),
                f"{block.get('share', 0.0) * 100.0:.1f}%",
                _fmt(block.get("p50"), 3),
                _fmt(block.get("p99"), 3),
                _fmt(block.get("p999"), 3),
            )
            for component, block in lineage.get("components", {}).items()
        ]
        sections.append(
            "<h2>Latency lineage</h2>"
            + _html_table(
                [
                    ("scheduler shards", lineage.get("sources")),
                    ("sample stride", lineage.get("sample_every")),
                    ("spans captured", lineage.get("samples_total")),
                    (
                        "spans dropped (capacity)",
                        lineage.get("dropped_samples"),
                    ),
                ],
                ("metric", "value"),
            )
            + _html_table(
                component_rows,
                ("component", "mean ms", "share", "p50 ms", "p99 ms",
                 "p999 ms"),
            )
        )
        slos = lineage.get("slos", [])
        if slos:
            sections.append(
                "<h3>SLOs</h3>"
                + _html_table(
                    [
                        (
                            slo.get("name"),
                            f"p{slo.get('percentile'):g} "
                            f"< {slo.get('latency_ms'):g} ms",
                            slo.get("violations"),
                            slo.get("samples"),
                            _fmt(slo.get("violation_rate")),
                            _fmt(slo.get("burn_rate"), 3),
                            "MET" if slo.get("met") else "MISSED",
                        )
                        for slo in slos
                    ],
                    ("slo", "target", "violations", "samples",
                     "violation rate", "burn rate", "status"),
                )
            )

    tracer = report.get("tracer")
    if tracer and tracer.get("dropped", 0):
        sections.append(
            "<p class='meta'>tracer ring buffer dropped "
            f"{tracer['dropped']} of {tracer['emitted']} events — "
            "the FSM timeline below is truncated.</p>"
        )

    payload = json.dumps(report, indent=2, default=str)
    document = (
        "<!doctype html><html><head><meta charset='utf-8'>"
        "<title>POSG quality report</title><style>"
        "body{font-family:ui-monospace,monospace;margin:2rem;color:#222}"
        "table{border-collapse:collapse;margin:0.5rem 0}"
        "td,th{border:1px solid #bbb;padding:0.25rem 0.6rem;text-align:left}"
        "th{background:#eee}.meta{color:#666}"
        "</style></head><body>"
        + "".join(sections)
        + "<h2>Raw report</h2><details><summary>report.json</summary>"
        + f"<pre id='report-json'>{html.escape(payload)}</pre></details>"
        + "</body></html>\n"
    )
    path = Path(path)
    path.write_text(document)
    return path
