"""Cross-shard flight recorder: causal per-shard timelines + attribution.

The multi-source experiment measures a steep degradation curve
``L(s)/L(1)`` but, before this module, could not say *why* sharded
scheduling misroutes: shards re-baseline ``C_hat`` only when a sync
round folds, and between folds each shard routes against a belief that
drifts from the instances' true global load.  The flight recorder
captures exactly the evidence needed to attribute that gap:

- **causal per-shard timelines** — every sync request, sync reply
  (fresh or stale), delta fold (the ``C_hat`` re-baseline) and matrices
  broadcast, in the order the shard's scheduler saw them, stamped with
  the scheduler's ``tuples_scheduled`` clock;
- **sampled routing decisions** — every ``sample_every``-th tuple of
  the stream records which instance the owning shard argmin-picked and
  the shard's *believed* per-instance loads (its ``C_hat`` right after
  the pick);
- **attribution** (:func:`derive_attribution`) — replays the recorded
  assignments against the true execution-time matrix (the same replay
  as :mod:`repro.telemetry.quality`) and splits the misroute regret
  into *collision loss* (windows where >= 2 shards concurrently picked
  the same instance), *staleness regret* (decisions made on a ``C_hat``
  snapshot older than one sync round — the "blind window") and
  *residual* (estimator error and genuine ties).

Determinism contract
--------------------
All record points are keyed on engine-invariant quantities: the
scheduler's ``tuples_scheduled`` counter for control events, and the
global stream index for route samples.  Both simulator engines and the
parallel engine emit the *same* events in the *same* per-shard order,
so :meth:`FlightRecorder.timelines` is bit-identical across
``chunk_size=0``, chunked and parallel runs for fixed seeds (asserted
by ``tests/simulator/test_flightrecorder_equivalence.py``).

A shard-local clock value ``at`` (the ``t``-th tuple the shard
scheduled) maps to the global stream index ``g = shard + (t - 1) * s``
because tuple ``i`` is always routed by shard ``i mod s``.

Capacity semantics
------------------
Each shard's timeline is bounded by ``capacity``.  On overflow the
recorder keeps the *prefix* (new events are counted in
``dropped_events`` and discarded) so a truncated timeline is still a
deterministic, comparable prefix rather than a sliding window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.telemetry.recorder import NULL_RECORDER
from repro.telemetry.registry import Sample

#: timeline lanes embedded in reports are downsampled to this length
_LANE_CAP = 512


@dataclass(frozen=True)
class FlightRecorderConfig:
    """Tuning knobs for the flight recorder.

    Parameters
    ----------
    sample_every:
        Record every N-th tuple's routing decision (stream-global
        stride).  Because tuple ``i`` belongs to shard ``i mod s``, a
        stride sharing a factor with ``s`` would sample only a subset
        of the shards — :meth:`FlightRecorder.bind` therefore bumps the
        effective stride to the next integer coprime with ``s``, so the
        samples rotate over every shard.  256 (257 effective under
        even shard counts) keeps the sampled-mode overhead inside the
        ``bench_flightrecorder_overhead`` gate.
    capacity:
        Per-shard timeline bound; the prefix is kept on overflow and
        ``dropped_events`` counts the rest.  ``None`` is unbounded.
    window:
        Tuple-window used for the cross-shard collision metric (two
        shards "concurrently" pick an instance when their sampled
        decisions land in the same window).
    """

    sample_every: int = 256
    capacity: int | None = 65_536
    window: int = 2_048

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {self.sample_every}")
        if self.capacity is not None and self.capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {self.capacity}")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")


class FlightRecorder:
    """Deterministic per-shard event capture for sharded POSG runs.

    One recorder instruments one run: pass it (or a
    :class:`FlightRecorderConfig`) to ``simulate_stream`` /
    ``simulate_stream_parallel`` via ``flight=`` and read
    :meth:`report` — or :attr:`SimulationResult.flight` — afterwards.

    Event tuples (per shard, insertion-ordered)::

        ("sync_request", at, instance, epoch)
        ("sync_reply",   at, instance, epoch, stale)
        ("fold",         at, epoch, deltas_folded)
        ("snoop",        at, published)               # cross-shard publish
        ("matrices",     at, instance)
        ("route",        index, instance, believed)   # believed: tuple[float]

    ``at`` is the shard scheduler's ``tuples_scheduled`` clock at
    emission; ``index`` is the global stream index of the sampled tuple.
    """

    def __init__(self, config: FlightRecorderConfig | None = None, telemetry=NULL_RECORDER) -> None:
        self._config = config if config is not None else FlightRecorderConfig()
        self._telemetry = telemetry if telemetry is not None else NULL_RECORDER
        self._sources = 0
        self._timelines: list[list[tuple]] = []
        self._dropped: list[int] = []
        self._counts: list[dict[str, int]] = []
        #: global index of each shard's last fold (-1 before the first)
        self._last_fold_g: list[int] = []
        self._stale_sum: list[int] = []
        self._stale_max: list[int] = []
        #: worker-lifecycle side channel (parallel engine supervision);
        #: wall-clock-driven, so deliberately OUTSIDE timelines() and
        #: the bit-identity contract
        self._worker_events: list[tuple] = []
        self._telemetry.registry.register_collector(self._collect_samples)

    # ------------------------------------------------------------------
    # binding
    # ------------------------------------------------------------------
    def bind(self, sources: int) -> None:
        """(Re)initialize for a run with ``sources`` scheduler shards."""
        if sources < 1:
            raise ValueError(f"sources must be >= 1, got {sources}")
        self._sources = int(sources)
        every = self._config.sample_every
        while math.gcd(every, self._sources) != 1:
            every += 1
        self._effective_every = every
        self._timelines = [[] for _ in range(sources)]
        self._dropped = [0] * sources
        self._counts = [
            {
                "sync_request": 0,
                "sync_reply": 0,
                "stale_reply": 0,
                "fold": 0,
                "snoop": 0,
                "matrices": 0,
                "route": 0,
            }
            for _ in range(sources)
        ]
        self._last_fold_g = [-1] * sources
        self._stale_sum = [0] * sources
        self._stale_max = [0] * sources
        self._worker_events = []

    @property
    def config(self) -> FlightRecorderConfig:
        return self._config

    @property
    def sources(self) -> int:
        """Shard count bound by the policy (0 before :meth:`bind`)."""
        return self._sources

    @property
    def sample_every(self) -> int:
        """Effective route-sampling stride (coprime with the shard count).

        Before :meth:`bind` this is the configured value; afterwards it
        is the next integer coprime with ``sources``, so the stream-
        global stride ``j % sample_every == 0`` rotates over every
        shard instead of aliasing onto shard 0.
        """
        if self._sources == 0:
            return self._config.sample_every
        return self._effective_every

    @property
    def dropped_events(self) -> int:
        """Events discarded by the per-shard capacity bound (all shards)."""
        return sum(self._dropped)

    # ------------------------------------------------------------------
    # emission (cold paths except record_route, which is sampled)
    # ------------------------------------------------------------------
    def _append(self, shard: int, event: tuple) -> bool:
        timeline = self._timelines[shard]
        cap = self._config.capacity
        if cap is not None and len(timeline) >= cap:
            self._dropped[shard] += 1
            return False
        timeline.append(event)
        return True

    def record_sync_request(self, shard: int, at: int, instance: int, epoch: int) -> None:
        """A shard asked ``instance`` to report its cumulated time."""
        if self._append(shard, ("sync_request", at, instance, epoch)):
            self._counts[shard]["sync_request"] += 1

    def record_sync_reply(
        self, shard: int, at: int, instance: int, epoch: int, stale: bool
    ) -> None:
        """A reply reached the shard (``stale`` when epoch-mismatched)."""
        if self._append(shard, ("sync_reply", at, instance, epoch, stale)):
            self._counts[shard]["sync_reply"] += 1
            if stale:
                self._counts[shard]["stale_reply"] += 1

    def record_fold(self, shard: int, at: int, epoch: int, folded: int) -> None:
        """The shard folded ``folded`` deltas — its ``C_hat`` re-baseline."""
        if self._append(shard, ("fold", at, epoch, folded)):
            self._counts[shard]["fold"] += 1
        # The re-baseline applies to decisions after the shard's at-th
        # tuple, i.e. global positions beyond shard + (at - 1) * s.
        self._last_fold_g[shard] = self._global(shard, at)

    def record_snoop(self, shard: int, at: int, published: int) -> None:
        """The shard's fold published ``published`` values to siblings.

        Emitted on the *publisher's* timeline right after its ``fold``
        event (sync-reply snooping; see
        :class:`~repro.core.config.CoordinationConfig`).
        """
        if self._append(shard, ("snoop", at, published)):
            self._counts[shard]["snoop"] += 1

    def record_matrices(self, shard: int, at: int, instance: int) -> None:
        """The shard received (a copy of) an instance's (F, W) matrices."""
        if self._append(shard, ("matrices", at, instance)):
            self._counts[shard]["matrices"] += 1

    def record_route(self, shard: int, index: int, instance: int, believed) -> None:
        """Sampled routing decision at global stream ``index``.

        ``believed`` is the shard's per-instance load estimate right
        after the pick (its ``C_hat`` including this tuple's estimate).
        """
        if self._append(shard, ("route", index, instance, tuple(believed))):
            self._counts[shard]["route"] += 1
            age = index - self._last_fold_g[shard]
            self._stale_sum[shard] += age
            if age > self._stale_max[shard]:
                self._stale_max[shard] = age

    def record_worker_event(self, worker: int, kind: str, segment: int) -> None:
        """Worker-process lifecycle event from the parallel supervisor.

        These events (crash/hang detections, respawns, degradations)
        are driven by wall-clock deadlines, so they land in a side
        channel that :meth:`timelines` never exposes — the per-shard
        timelines stay bit-identical across engines while the report
        still carries the full supervision story.
        """
        self._worker_events.append((kind, int(worker), int(segment)))

    @property
    def worker_events(self) -> tuple[tuple, ...]:
        """Lifecycle side channel (insertion-ordered, non-deterministic)."""
        return tuple(self._worker_events)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def timelines(self) -> tuple[tuple, ...]:
        """Per-shard event tuples, insertion-ordered (for bit-identity)."""
        return tuple(tuple(timeline) for timeline in self._timelines)

    def _global(self, shard: int, at: int) -> int:
        """Global stream index of a shard's ``at``-th scheduled tuple."""
        if at <= 0:
            return -1
        return shard + (at - 1) * self._sources

    def fold_positions(self, shard: int) -> list[int]:
        """Global indices at which the shard re-baselined ``C_hat``."""
        return [
            self._global(shard, event[1])
            for event in self._timelines[shard]
            if event[0] == "fold"
        ]

    def sync_interval(self, shard: int, default: int) -> int:
        """Median gap (in tuples) between the shard's folds.

        ``default`` (typically the stream length) is returned when the
        shard folded fewer than twice — everything after the first fold
        then counts as inside one (unbounded) round.
        """
        folds = self.fold_positions(shard)
        if len(folds) < 2:
            return default
        gaps = sorted(b - a for a, b in zip(folds, folds[1:]))
        return gaps[len(gaps) // 2]

    def _lane(self, shard: int) -> list[list]:
        """Downsampled ``[kind, global_index]`` lane for dashboards."""
        lane: list[list] = []
        for event in self._timelines[shard]:
            kind = event[0]
            if kind == "route":
                lane.append([kind, event[1]])
            else:
                lane.append([kind, self._global(shard, event[1])])
        if len(lane) > _LANE_CAP:
            stride = -(-len(lane) // _LANE_CAP)
            sampled = lane[::stride]
            if sampled[-1] is not lane[-1]:
                sampled.append(lane[-1])
            lane = sampled
        return lane

    def report(self) -> dict:
        """JSON-serializable summary (the RunReport ``flightrecorder`` block)."""
        per_shard = []
        for shard in range(self._sources):
            counts = self._counts[shard]
            routes = counts["route"]
            per_shard.append(
                {
                    "shard": shard,
                    "events": len(self._timelines[shard]),
                    "dropped_events": self._dropped[shard],
                    "sync_requests": counts["sync_request"],
                    "sync_replies": counts["sync_reply"],
                    "stale_replies": counts["stale_reply"],
                    "folds": counts["fold"],
                    "snoops": counts["snoop"],
                    "matrices": counts["matrices"],
                    "route_samples": routes,
                    "staleness_mean": (self._stale_sum[shard] / routes) if routes else 0.0,
                    "staleness_max": self._stale_max[shard],
                    "last_fold_at": self._last_fold_g[shard],
                    "lane": self._lane(shard),
                }
            )
        return {
            "schema": "posg-flight/v1",
            "sources": self._sources,
            "sample_every": self._config.sample_every,
            "window": self._config.window,
            "capacity": self._config.capacity,
            "events_total": sum(len(t) for t in self._timelines),
            "dropped_events": sum(self._dropped),
            "per_shard": per_shard,
            "worker_events": [list(event) for event in self._worker_events],
        }

    # ------------------------------------------------------------------
    # metrics (export-time collector; zero hot-path cost)
    # ------------------------------------------------------------------
    def _collect_samples(self) -> list[Sample]:
        samples: list[Sample] = []
        for shard in range(self._sources):
            labels = (("shard", str(shard)),)
            counts = self._counts[shard]
            routes = counts["route"]
            samples.extend(
                [
                    Sample(
                        "posg_flight_events_total",
                        len(self._timelines[shard]),
                        kind="counter",
                        labels=labels,
                        help="Flight-recorder events captured per shard.",
                    ),
                    Sample(
                        "posg_flight_routes_sampled_total",
                        routes,
                        kind="counter",
                        labels=labels,
                        help="Routing decisions sampled per shard.",
                    ),
                    Sample(
                        "posg_flight_folds_total",
                        counts["fold"],
                        kind="counter",
                        labels=labels,
                        help="C_hat re-baselines (delta folds) per shard.",
                    ),
                    Sample(
                        "posg_flight_dropped_events_total",
                        self._dropped[shard],
                        kind="counter",
                        labels=labels,
                        help="Flight events discarded by the capacity bound.",
                    ),
                    Sample(
                        "posg_flight_staleness_tuples_mean",
                        (self._stale_sum[shard] / routes) if routes else 0.0,
                        kind="gauge",
                        labels=labels,
                        help="Mean C_hat snapshot age over sampled decisions.",
                    ),
                    Sample(
                        "posg_flight_staleness_tuples_max",
                        self._stale_max[shard],
                        kind="gauge",
                        labels=labels,
                        help="Max C_hat snapshot age over sampled decisions.",
                    ),
                ]
            )
        return samples


def derive_attribution(
    flight: FlightRecorder,
    assignments,
    times,
    window: int | None = None,
) -> dict:
    """Attribute misroute regret to staleness, collisions or residual.

    Replays ``assignments`` against the true execution-time matrix
    ``times`` (shape ``(m, k)``) exactly like
    :func:`repro.telemetry.quality.compute_quality`: a tuple is
    *misrouted* when its chosen instance's running true load exceeds the
    minimum, and its *regret* is that gap.  Each misrouted tuple's
    regret is then attributed, in priority order:

    1. **collision** — a sampled decision window in which >= 2 distinct
       shards picked this tuple's instance (concurrent argmin clash);
    2. **staleness** — the owning shard's ``C_hat`` snapshot was older
       than one sync round (the blind window) at this index;
    3. **residual** — estimator error, ties, and everything else.

    Returns a JSON-serializable dict; all times in milliseconds.
    """
    sources = flight.sources
    if sources < 1:
        raise ValueError("flight recorder is unbound; run a simulation first")
    m = len(assignments)
    k = times.shape[1]
    if window is None:
        window = flight.config.window

    # --- per-shard fold schedule and blind threshold -------------------
    # A shard's "one sync round" is its median inter-fold gap; shards
    # that folded fewer than twice inherit the pooled median across all
    # shards (a shard that never re-baselined is blind relative to the
    # cadence its peers achieved).  When the pool itself is empty — no
    # shard anywhere folded twice, which tiny streams and s=1 short runs
    # hit — "one sync round" is undefined, so the fallback is pinned
    # explicitly: every shard's threshold becomes the stream length
    # ``m``, no decision can exceed it, and ``blind_tuples`` is exactly
    # 0 (nothing is attributed to staleness on evidence that thin).
    # The chosen fallback is reported as ``staleness.interval_fallback``
    # so downstream tables can tell a measured threshold from the
    # degenerate one.
    folds = [flight.fold_positions(shard) for shard in range(sources)]
    pooled = sorted(
        b - a
        for shard_folds in folds
        for a, b in zip(shard_folds, shard_folds[1:])
    )
    if pooled:
        global_interval = pooled[len(pooled) // 2]
        interval_fallback = "pooled_median"
    else:
        global_interval = m
        interval_fallback = "stream_length"
    intervals = [
        flight.sync_interval(shard, global_interval) for shard in range(sources)
    ]
    fold_ptr = [0] * sources
    last_fold = [-1] * sources

    # --- collision windows from sampled decisions ----------------------
    # window -> instance -> set of shards that picked it there
    picks: dict[int, dict[int, set[int]]] = {}
    sampled_windows: set[int] = set()
    for shard in range(sources):
        for event in flight.timelines()[shard]:
            if event[0] != "route":
                continue
            w = event[1] // window
            sampled_windows.add(w)
            picks.setdefault(w, {}).setdefault(event[2], set()).add(shard)
    collided: set[tuple[int, int]] = set()  # (window, instance)
    collided_windows: set[int] = set()
    for w, by_instance in picks.items():
        for instance, shards in by_instance.items():
            if len(shards) >= 2:
                collided.add((w, instance))
                collided_windows.add(w)

    # --- believed-vs-true divergence at sampled decisions ---------------
    route_samples: list[list[tuple]] = [[] for _ in range(sources)]
    for shard in range(sources):
        route_samples[shard] = [
            event for event in flight.timelines()[shard] if event[0] == "route"
        ]
    sample_ptr = [0] * sources
    gap_sum = 0.0
    gap_max = 0.0
    gap_count = 0

    # --- sequential replay against the truth ---------------------------
    loads = [0.0] * k
    misrouted = 0
    regret_total = 0.0
    regret_collision = 0.0
    regret_stale = 0.0
    regret_residual = 0.0
    blind_tuples = 0
    for j in range(m):
        shard = j % sources
        shard_folds = folds[shard]
        ptr = fold_ptr[shard]
        while ptr < len(shard_folds) and shard_folds[ptr] < j:
            last_fold[shard] = shard_folds[ptr]
            ptr += 1
        fold_ptr[shard] = ptr
        age = j - last_fold[shard]
        blind = age > intervals[shard]
        if blind:
            blind_tuples += 1

        instance = assignments[j]
        row = times[j]
        best = min(loads)
        gap = loads[instance] - best
        if gap > 0.0:
            misrouted += 1
            regret_total += gap
            if (j // window, instance) in collided:
                regret_collision += gap
            elif blind:
                regret_stale += gap
            else:
                regret_residual += gap

        sp = sample_ptr[shard]
        shard_routes = route_samples[shard]
        if sp < len(shard_routes) and shard_routes[sp][1] == j:
            believed = shard_routes[sp][3]
            for op in range(k):
                diff = abs(believed[op] - loads[op])
                gap_sum += diff
                if diff > gap_max:
                    gap_max = diff
            gap_count += k
            sample_ptr[shard] = sp + 1

        loads[instance] += float(row[instance])

    makespan = max(loads) if loads else 0.0
    return {
        "sources": sources,
        "tuples": m,
        "window": window,
        "makespan_ms": makespan,
        "regret": {
            "total_ms": regret_total,
            "collision_ms": regret_collision,
            "stale_ms": regret_stale,
            "residual_ms": regret_residual,
            "misrouted": misrouted,
            "misroute_fraction": misrouted / m if m else 0.0,
        },
        "collision": {
            "windows_sampled": len(sampled_windows),
            "collided_windows": len(collided_windows),
            "rate": len(collided_windows) / len(sampled_windows) if sampled_windows else 0.0,
        },
        "staleness": {
            "blind_tuples": blind_tuples,
            "blind_fraction": blind_tuples / m if m else 0.0,
            "sync_interval_tuples": intervals,
            "interval_fallback": interval_fallback,
        },
        "believed_gap": {
            "samples": gap_count,
            "mean_abs_ms": gap_sum / gap_count if gap_count else 0.0,
            "max_abs_ms": gap_max,
        },
    }
