"""Decision-quality metrics: how close did the routing get to optimal?

Computed **after** a run, from the assignment vector and the true
per-tuple execution times — never from scheduler internals — so the
numbers are identical for the per-tuple and chunked engines by
construction (the engines already agree on the assignments bit for bit).

Three families of metrics, mirroring the paper's evaluation section:

- **makespan** — the achieved per-instance load (true milliseconds of
  work actually routed to each instance) against (a) an *oracle GOS*:
  the Greedy Online Scheduler fed true execution times (the paper's Full
  Knowledge baseline, Theorem 4.1's setting) and (b) the classic
  makespan lower bound ``max(sum(w)/k, max(w))``.  On identical
  instances Graham's bound guarantees ``oracle / lower <= 2 - 1/k``
  (Theorem 4.2) — the check the ``observe`` CLI gates on.
- **imbalance** — ``L(t) = max/mean - 1`` of the true work per instance,
  final and over sliding windows of the stream.
- **regret** — a sequential replay against ``argmin`` of the *true*
  cumulated loads: a tuple is misrouted when the scheduler picked an
  instance whose true load exceeded the best one's, and the miss cost is
  the load gap at decision time (per-window fraction + cost).

With heterogeneous instances (a load-shift scenario) the Graham bound
does not apply — ``identical_machines`` is reported and the Theorem 4.2
check only asserts when it is true.

The module only needs numpy and the result arrays, keeping
``repro.telemetry`` import-cycle-free.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.recorder import NULL_RECORDER

__all__ = ["compute_quality", "execution_time_matrix", "record_quality"]


def execution_time_matrix(stream, scenario, k: int) -> np.ndarray:
    """True execution time of every tuple on every instance: ``(m, k)``.

    Uses the scenario's bulk ``multiplier_matrix`` when available (the
    same elementwise product the chunked engine hoists), falling back to
    per-tuple ``multiplier`` calls.
    """
    base = np.asarray(stream.base_times, dtype=np.float64)
    m = base.shape[0]
    if hasattr(scenario, "multiplier_matrix"):
        multipliers = np.asarray(
            scenario.multiplier_matrix(m), dtype=np.float64
        )[:, :k]
        return base[:, None] * multipliers
    out = np.empty((m, k), dtype=np.float64)
    for instance in range(k):
        out[:, instance] = [
            base[j] * scenario.multiplier(instance, j) for j in range(m)
        ]
    return out


def _oracle_gos(times: np.ndarray, k: int) -> tuple[np.ndarray, float]:
    """Greedy Online Scheduler on the true times; returns (loads, makespan).

    Same first-minimum tie-breaking as ``np.argmin`` (and the repo's
    :func:`repro.core.gos.greedy_online_schedule`): ties go to the lowest
    instance index.
    """
    loads = [0.0] * k
    k_range = range(1, k)
    columns = [times[:, instance].tolist() for instance in range(k)]
    m = times.shape[0]
    for j in range(m):
        best = loads[0]
        instance = 0
        for i in k_range:
            value = loads[i]
            if value < best:
                best = value
                instance = i
        loads[instance] = best + columns[instance][j]
    loads_array = np.asarray(loads, dtype=np.float64)
    return loads_array, float(loads_array.max())


def _imbalance(loads: np.ndarray) -> float:
    mean = float(loads.mean())
    return float(loads.max() / mean - 1.0) if mean > 0 else 0.0


def compute_quality(
    assignments,
    times: np.ndarray,
    k: int,
    window: int = 2048,
) -> dict:
    """Quality metrics for one run; see the module docstring.

    Parameters
    ----------
    assignments:
        Per-tuple destination instance, stream order (``stats.assignments``).
    times:
        ``(m, k)`` true execution times from :func:`execution_time_matrix`.
        Column ``i`` is what the tuple would have cost on instance ``i``.
    k:
        Number of instances.
    window:
        Sliding-window length (tuples) for the windowed series.
    """
    assignments = np.asarray(assignments, dtype=np.int64)
    m = assignments.shape[0]
    if times.shape != (m, k):
        raise ValueError(
            f"times must have shape ({m}, {k}), got {times.shape}"
        )
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")

    chosen_times = times[np.arange(m), assignments]
    achieved_loads = np.bincount(assignments, weights=chosen_times, minlength=k)
    achieved_makespan = float(achieved_loads.max())

    identical = bool(np.all(times == times[:, :1]))
    oracle_loads, oracle_makespan = _oracle_gos(times, k)
    best_times = times.min(axis=1)
    lower_bound = float(max(best_times.sum() / k, best_times.max()))
    graham_bound = 2.0 - 1.0 / k
    oracle_ratio = oracle_makespan / lower_bound if lower_bound > 0 else 1.0
    theorem42_holds = (
        oracle_ratio <= graham_bound + 1e-9 if identical else None
    )

    # Sequential regret replay against argmin of the *true* loads.
    loads = [0.0] * k
    k_range = range(1, k)
    assignment_list = assignments.tolist()
    chosen_list = chosen_times.tolist()
    misrouted = 0
    regret_total = 0.0
    window_edges = list(range(0, m, window))
    window_stats: list[dict] = []
    win_miss = 0
    win_regret = 0.0
    win_start = 0
    for j in range(m):
        best = loads[0]
        for i in k_range:
            value = loads[i]
            if value < best:
                best = value
        instance = assignment_list[j]
        gap = loads[instance] - best
        if gap > 0.0:
            misrouted += 1
            win_miss += 1
            regret_total += gap
            win_regret += gap
        loads[instance] += chosen_list[j]
        if (j + 1) % window == 0 or j + 1 == m:
            count = j + 1 - win_start
            window_stats.append(
                {
                    "start": win_start,
                    "end": j + 1,
                    "misroute_fraction": win_miss / count,
                    "regret_ms": win_regret,
                }
            )
            win_start = j + 1
            win_miss = 0
            win_regret = 0.0

    # Windowed imbalance of the true work actually routed.
    imbalance_windows = []
    for start in window_edges:
        stop = min(start + window, m)
        loads_w = np.bincount(
            assignments[start:stop],
            weights=chosen_times[start:stop],
            minlength=k,
        )
        imbalance_windows.append(
            {"start": start, "end": stop, "imbalance": _imbalance(loads_w)}
        )
    window_imbalances = [entry["imbalance"] for entry in imbalance_windows]

    return {
        "m": int(m),
        "k": int(k),
        "window": int(window),
        "identical_machines": identical,
        "makespan": {
            "achieved_ms": achieved_makespan,
            "oracle_gos_ms": oracle_makespan,
            "opt_lower_bound_ms": lower_bound,
            "achieved_vs_oracle": (
                achieved_makespan / oracle_makespan if oracle_makespan > 0 else 1.0
            ),
            "oracle_gos_ratio": oracle_ratio,
            "graham_bound": graham_bound,
            "theorem42_holds": theorem42_holds,
            "achieved_loads_ms": achieved_loads.tolist(),
            "oracle_loads_ms": oracle_loads.tolist(),
        },
        "imbalance": {
            "final": _imbalance(achieved_loads),
            "max_window": max(window_imbalances),
            "mean_window": float(np.mean(window_imbalances)),
            "windows": imbalance_windows,
        },
        "regret": {
            "misrouted": int(misrouted),
            "misroute_fraction": misrouted / m if m else 0.0,
            "total_ms": regret_total,
            "mean_miss_ms": regret_total / misrouted if misrouted else 0.0,
            "windows": window_stats,
        },
    }


def record_quality(telemetry, quality: dict) -> None:
    """Publish ``posg_quality_*`` gauges from a quality dict."""
    telemetry = telemetry if telemetry is not None else NULL_RECORDER
    registry = telemetry.registry
    makespan = quality["makespan"]
    registry.gauge(
        "posg_quality_achieved_makespan_ms",
        help="Max true per-instance work under the actual assignments",
    ).set(makespan["achieved_ms"])
    registry.gauge(
        "posg_quality_oracle_makespan_ms",
        help="Makespan of the Greedy Online Scheduler fed true times",
    ).set(makespan["oracle_gos_ms"])
    registry.gauge(
        "posg_quality_achieved_vs_oracle",
        help="Achieved / oracle-GOS makespan ratio (1.0 = optimal greedy)",
    ).set(makespan["achieved_vs_oracle"])
    registry.gauge(
        "posg_quality_oracle_gos_ratio",
        help="Oracle-GOS makespan over the OPT lower bound (Theorem 4.2)",
    ).set(makespan["oracle_gos_ratio"])
    registry.gauge(
        "posg_quality_imbalance",
        help="Final true-work imbalance max/mean - 1",
    ).set(quality["imbalance"]["final"])
    registry.gauge(
        "posg_quality_misroute_fraction",
        help="Tuples routed off the true argmin instance",
    ).set(quality["regret"]["misroute_fraction"])
    registry.gauge(
        "posg_quality_regret_ms",
        help="Cumulated load gap of misrouted tuples",
    ).set(quality["regret"]["total_ms"])
