"""JSON run reports: one document summarizing a simulated run.

A :class:`RunReport` condenses what the paper's evaluation reads off a
run — the completion-time metric ``L``, speedup over a baseline,
per-instance load imbalance, control-plane overhead (messages *and*
bits, Figure 12), and the FSM timelines of the scheduler and instances —
into a single JSON-serializable object.

The builder is duck-typed over
:class:`~repro.simulator.run.SimulationResult` (it only reads public
attributes) so this module stays dependency-free and import-cycle-free:
``repro.telemetry`` never imports ``repro.core`` or ``repro.simulator``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

#: tracer event kinds that make up the FSM timeline section
FSM_EVENT_KINDS = ("scheduler_state", "instance_window")

SCHEMA = "posg-run-report/v6"


@dataclass
class RunReport:
    """Everything worth keeping from one run, JSON-ready."""

    schema: str
    policy: str
    m: int
    k: int
    #: the paper's ``L`` metric, milliseconds
    average_completion_ms: float
    max_completion_ms: float
    p99_completion_ms: float
    #: ``S_L`` against the supplied baseline run, or None
    speedup_vs_baseline: float | None
    #: tuples routed to each instance
    instance_tuple_counts: list[int]
    #: ``max/mean - 1`` over the per-instance tuple counts (0 = perfectly even)
    imbalance: float
    control_messages: int
    control_bits: int
    #: stream index where the scheduler first reached RUN, or None
    run_entry_index: int | None
    #: ``[index, state]`` pairs for every scheduler FSM change
    state_transitions: list = field(default_factory=list)
    #: ``POSGScheduler.stats()`` when the policy exposes a scheduler
    scheduler: dict | None = None
    #: per-instance tracker stats when the policy exposes trackers
    instances: list | None = None
    #: tracer events of the FSM kinds (bounded by the ring capacity)
    fsm_timeline: list = field(default_factory=list)
    #: flat metrics snapshot from the recorder's registry
    metrics: dict = field(default_factory=dict)
    #: ``FaultInjector.report()`` when the run was fault-injected (v2)
    faults: dict | None = None
    #: ``EstimatorAudit.report()`` when the run was audited (v3)
    audit: dict | None = None
    #: ``compute_quality(...)`` decision-quality metrics (v3)
    quality: dict | None = None
    #: ``FlightRecorder.report()`` when a flight recorder flew (v4)
    flightrecorder: dict | None = None
    #: tracer ring-buffer accounting (emitted vs dropped, v4) — nonzero
    #: ``dropped`` means the embedded ``fsm_timeline`` is truncated
    tracer: dict | None = None
    #: ``WorkerSupervisor.report()`` for parallel-engine runs (v5) —
    #: detected worker failures, respawns, and degraded workers
    supervision: dict | None = None
    #: ``LineageTracer.report()`` when per-tuple lineage was traced (v6)
    #: — latency decomposition quantiles and evaluated SLOs
    lineage: dict | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_simulation(
        cls,
        result,
        k: int,
        baseline=None,
        telemetry=None,
        policy_name: str | None = None,
        quality: dict | None = None,
    ) -> "RunReport":
        """Build a report from a ``SimulationResult``-shaped object.

        Parameters
        ----------
        result:
            The run to report on (``stats``, ``control_messages``,
            ``control_bits``, ``state_transitions`` are read).
        k:
            Number of downstream instances.
        baseline:
            Optional second result; when given, ``speedup_vs_baseline``
            is ``sum(L_baseline) / sum(L_result)`` (Section V-A).
        telemetry:
            Optional recorder whose registry snapshot and FSM trace
            events are embedded.
        policy_name:
            Overrides ``result.policy.name``.
        quality:
            Optional decision-quality dict from
            :func:`repro.telemetry.quality.compute_quality` (it needs
            the stream/scenario, which ``result`` does not carry, so the
            caller computes it).  The run's estimator-audit block is
            picked up automatically from ``result.audit``.
        """
        stats = result.stats
        policy = getattr(result, "policy", None)
        name = policy_name or getattr(policy, "name", "unknown")
        counts = stats.instance_tuple_counts(k)
        mean_count = float(counts.mean())
        imbalance = float(counts.max() / mean_count - 1.0) if mean_count > 0 else 0.0

        speedup = None
        if baseline is not None:
            speedup = float(stats.speedup_over(baseline.stats))

        transitions = [
            [int(index), getattr(state, "value", str(state))]
            for index, state in getattr(result, "state_transitions", [])
        ]
        run_entry = None
        entry_fn = getattr(result, "run_entry_index", None)
        if callable(entry_fn):
            run_entry = entry_fn()

        scheduler_stats = None
        instance_stats = None
        scheduler = getattr(policy, "scheduler", None)
        if scheduler is not None and hasattr(scheduler, "stats"):
            scheduler_stats = scheduler.stats()
            tracker_fn = getattr(policy, "tracker", None)
            if callable(tracker_fn):
                collected = []
                for instance in range(k):
                    try:
                        tracker = tracker_fn(instance)
                    except KeyError:
                        continue
                    collected.append(tracker.stats())
                instance_stats = collected or None

        timeline: list = []
        metrics: dict = {}
        tracer_stats = None
        if telemetry is not None and telemetry.enabled:
            events = telemetry.tracer.events()
            timeline = [e for e in events if e["kind"] in FSM_EVENT_KINDS]
            metrics = telemetry.registry.snapshot()
            tracer_stats = {
                "emitted": int(telemetry.tracer.emitted),
                "dropped": int(telemetry.tracer.dropped),
            }

        faults = None
        injector = getattr(result, "faults", None)
        if injector is not None and hasattr(injector, "report"):
            faults = injector.report()

        audit = None
        auditor = getattr(result, "audit", None)
        if auditor is not None and hasattr(auditor, "report"):
            audit = auditor.report()

        flightrecorder = None
        flight = getattr(result, "flight", None)
        if flight is not None and hasattr(flight, "report"):
            flightrecorder = flight.report()

        lineage = None
        tracer = getattr(result, "lineage", None)
        if tracer is not None and hasattr(tracer, "report"):
            lineage = tracer.report()

        supervision = None
        parallel_info = getattr(result, "parallel", None)
        if parallel_info:
            supervision = parallel_info.get("supervision")

        return cls(
            schema=SCHEMA,
            policy=name,
            m=stats.m,
            k=k,
            average_completion_ms=stats.average_completion_time,
            max_completion_ms=stats.max_completion_time,
            p99_completion_ms=stats.percentile(99.0),
            speedup_vs_baseline=speedup,
            instance_tuple_counts=[int(c) for c in counts],
            imbalance=imbalance,
            control_messages=int(getattr(result, "control_messages", 0)),
            control_bits=int(getattr(result, "control_bits", 0)),
            run_entry_index=run_entry,
            state_transitions=transitions,
            scheduler=scheduler_stats,
            instances=instance_stats,
            fsm_timeline=timeline,
            metrics=metrics,
            faults=faults,
            audit=audit,
            quality=quality,
            flightrecorder=flightrecorder,
            tracer=tracer_stats,
            supervision=supervision,
            lineage=lineage,
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=_json_default)

    def save(self, path: "str | Path") -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    # ------------------------------------------------------------------
    # human summary
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """A few human-readable lines for CLI output."""
        lines = [
            f"policy={self.policy}  m={self.m}  k={self.k}",
            f"L (avg completion) = {self.average_completion_ms:.3f} ms   "
            f"p99 = {self.p99_completion_ms:.3f} ms   "
            f"max = {self.max_completion_ms:.3f} ms",
            f"imbalance = {self.imbalance:.4f}   "
            f"tuples/instance = {self.instance_tuple_counts}",
            f"control plane: {self.control_messages} messages, "
            f"{self.control_bits} bits",
        ]
        if self.speedup_vs_baseline is not None:
            lines.insert(2, f"speedup vs baseline = {self.speedup_vs_baseline:.3f}")
        if self.run_entry_index is not None:
            lines.append(f"scheduler entered RUN at tuple {self.run_entry_index}")
        if self.faults is not None:
            injected = self.faults.get("injected", {})
            dropped = sum(injected.get("dropped", {}).values())
            lines.append(
                f"faults: {dropped} control messages dropped, "
                f"{injected.get('crashes', 0)} crashes, "
                f"{injected.get('slowed_tuples', 0)} slowed tuples"
            )
        if self.audit is not None:
            rel = self.audit.get("rel_error_quantiles", {})
            quantiles = "  ".join(
                f"{key}={value:.3f}"
                for key, value in rel.items()
                if value is not None
            )
            lines.append(
                f"estimator audit: {self.audit.get('samples', 0)} samples, "
                f"mean |err| = {self.audit.get('mean_abs_error_ms', 0.0):.3f} ms"
                + (f", rel err {quantiles}" if quantiles else "")
            )
        if self.quality is not None:
            makespan = self.quality["makespan"]
            lines.append(
                "quality: achieved/oracle makespan = "
                f"{makespan['achieved_vs_oracle']:.4f}, oracle/LB = "
                f"{makespan['oracle_gos_ratio']:.4f} "
                f"(bound {makespan['graham_bound']:.2f}), misrouted = "
                f"{self.quality['regret']['misroute_fraction']:.4f}"
            )
        if self.flightrecorder is not None:
            per_shard = self.flightrecorder.get("per_shard", [])
            folds = sum(s.get("folds", 0) for s in per_shard)
            routes = sum(s.get("route_samples", 0) for s in per_shard)
            lines.append(
                f"flight recorder: {self.flightrecorder.get('sources', 0)} "
                f"shards, {self.flightrecorder.get('events_total', 0)} events "
                f"({folds} folds, {routes} route samples, "
                f"{self.flightrecorder.get('dropped_events', 0)} dropped)"
            )
        if self.lineage is not None:
            components = self.lineage.get("components", {})
            shares = "  ".join(
                f"{name}={components[name]['share']:.2%}"
                for name in ("scheduling_delay", "queue_wait", "service_time")
                if name in components
            )
            lines.append(
                f"lineage: {self.lineage.get('samples_total', 0)} sampled "
                f"spans (every {self.lineage.get('sample_every', 0)}th tuple"
                f", {self.lineage.get('dropped_samples', 0)} dropped)"
                + (f", completion share {shares}" if shares else "")
            )
            for slo in self.lineage.get("slos", []):
                lines.append(
                    f"slo {slo['name']}: p{slo['percentile']:g} < "
                    f"{slo['latency_ms']:g} ms -> "
                    f"{'MET' if slo['met'] else 'MISSED'} "
                    f"(burn rate {slo['burn_rate']:.2f}, "
                    f"{slo['violations']}/{slo['samples']} over)"
                )
        if self.supervision is not None:
            failures = (
                self.supervision.get("crashes_detected", 0)
                + self.supervision.get("hangs_detected", 0)
                + self.supervision.get("worker_errors", 0)
            )
            degraded = self.supervision.get("degraded_workers", [])
            if failures or degraded:
                lines.append(
                    f"supervision: {failures} worker failures detected, "
                    f"{self.supervision.get('respawns_total', 0)} respawns, "
                    f"{self.supervision.get('replayed_segments', 0)} segments "
                    "replayed"
                    + (
                        f" — DEGRADED workers {degraded} routed in-parent"
                        if degraded
                        else " — fully recovered"
                    )
                )
        if self.tracer is not None and self.tracer.get("dropped", 0):
            lines.append(
                f"tracer: {self.tracer['dropped']} of "
                f"{self.tracer['emitted']} events dropped by the ring "
                "buffer — fsm_timeline is truncated"
            )
        return "\n".join(lines)


def _json_default(value):
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON serializable: {type(value)!r}")
