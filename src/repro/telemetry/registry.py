"""Metrics registry: counters, gauges, fixed-bucket histograms, collectors.

The registry is the numeric half of the telemetry layer (the structured
half is :mod:`repro.telemetry.tracer`).  Two usage modes coexist:

- **direct instruments** — a component asks the registry for a
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` once and updates
  it at observation points.  Instruments are keyed by ``(name, labels)``
  so repeated lookups return the same object;
- **collectors** — a component registers a zero-argument callable that
  yields :class:`Sample` objects on demand.  Collection happens only at
  export time (:meth:`MetricsRegistry.snapshot` /
  :meth:`MetricsRegistry.to_prometheus`), so mirroring counters that the
  component already tracks as plain ints costs *nothing* on the hot
  path — this is how the POSG scheduler and instance trackers export
  their statistics without touching the vectorized data plane.

Everything here is dependency-free (stdlib + numpy, which the repo
already requires); there is no global default registry — recorders own
their registry explicitly so concurrent runs never share state.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

import numpy as np

#: label set normalized to a sorted tuple of (key, value) pairs
Labels = tuple[tuple[str, str], ...]


def _normalize_labels(labels: dict[str, object] | None) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(labels: Labels) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + inner + "}"


@dataclass(frozen=True)
class Sample:
    """One exported metric value (what collectors yield)."""

    name: str
    value: float
    kind: str = "gauge"  # "counter" | "gauge"
    labels: Labels = ()
    help: str = ""

    @property
    def key(self) -> str:
        """Flat ``name{label="v",...}`` key used by snapshots."""
        return self.name + _render_labels(self.labels)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "help", "labels", "_value")

    def __init__(self, name: str, help: str = "", labels: Labels = ()) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self._value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def samples(self) -> list[Sample]:
        return [Sample(self.name, self._value, "counter", self.labels, self.help)]


class Gauge:
    """Value that can go up and down."""

    __slots__ = ("name", "help", "labels", "_value")

    def __init__(self, name: str, help: str = "", labels: Labels = ()) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = value

    def inc(self, amount: float = 1) -> None:
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def samples(self) -> list[Sample]:
        return [Sample(self.name, self._value, "gauge", self.labels, self.help)]


#: default histogram buckets, in milliseconds (completion-time oriented)
DEFAULT_BUCKETS = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1_000.0, 2_000.0, 5_000.0, 10_000.0,
)


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` semantics.

    Bucket bounds are upper edges; an implicit ``+Inf`` bucket catches
    everything above the last bound (including non-finite observations).
    """

    __slots__ = ("name", "help", "labels", "_uppers", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        help: str = "",
        labels: Labels = (),
    ) -> None:
        uppers = tuple(sorted(float(b) for b in buckets))
        if not uppers:
            raise ValueError("histogram needs at least one bucket bound")
        if any(u != u for u in uppers):  # NaN guard
            raise ValueError("bucket bounds must not be NaN")
        self.name = name
        self.help = help
        self.labels = labels
        self._uppers = uppers
        self._counts = [0] * (len(uppers) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self._sum += value
        self._count += 1
        for index, upper in enumerate(self._uppers):
            if value <= upper:
                self._counts[index] += 1
                return
        self._counts[-1] += 1

    def observe_many(self, values) -> None:
        """Bulk :meth:`observe` (one vectorized pass over an array)."""
        array = np.asarray(values, dtype=np.float64)
        if array.size == 0:
            return
        finite = array[np.isfinite(array)]
        slots = np.searchsorted(np.asarray(self._uppers), finite, side="left")
        binned = np.bincount(slots, minlength=len(self._uppers) + 1)
        for index, count in enumerate(binned):
            self._counts[index] += int(count)
        self._counts[-1] += int(array.size - finite.size)
        self._sum += float(array.sum())
        self._count += int(array.size)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> dict[str, int]:
        """Cumulative counts keyed by the ``le`` bound (Prometheus style)."""
        out: dict[str, int] = {}
        running = 0
        for upper, count in zip(self._uppers, self._counts):
            running += count
            out[_format_bound(upper)] = running
        out["+Inf"] = running + self._counts[-1]
        return out

    def samples(self) -> list[Sample]:
        out = []
        for bound, cumulative in self.bucket_counts().items():
            out.append(
                Sample(
                    self.name + "_bucket",
                    cumulative,
                    "counter",
                    self.labels + (("le", bound),),
                    self.help,
                )
            )
        out.append(Sample(self.name + "_sum", self._sum, "counter", self.labels, self.help))
        out.append(Sample(self.name + "_count", self._count, "counter", self.labels, self.help))
        return out


def _format_bound(bound: float) -> str:
    if bound == int(bound) and abs(bound) < 1e15:
        return str(int(bound))
    return repr(bound)


Collector = Callable[[], Iterable[Sample]]


@dataclass
class _Family:
    """All instruments sharing one metric name (label variants)."""

    kind: str
    help: str
    instruments: dict[Labels, object] = field(default_factory=dict)


class MetricsRegistry:
    """Get-or-create registry of instruments plus on-demand collectors."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._collectors: list[Collector] = []

    # ------------------------------------------------------------------
    # instrument factories (get-or-create by (name, labels))
    # ------------------------------------------------------------------
    def counter(
        self, name: str, help: str = "", labels: dict | None = None
    ) -> Counter:
        return self._instrument(Counter, "counter", name, help, labels)

    def gauge(self, name: str, help: str = "", labels: dict | None = None) -> Gauge:
        return self._instrument(Gauge, "gauge", name, help, labels)

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        help: str = "",
        labels: dict | None = None,
    ) -> Histogram:
        key = _normalize_labels(labels)
        family = self._family("histogram", name, help)
        instrument = family.instruments.get(key)
        if instrument is None:
            instrument = Histogram(name, buckets=buckets, help=help, labels=key)
            family.instruments[key] = instrument
        return instrument  # type: ignore[return-value]

    def _instrument(self, cls, kind, name, help, labels):
        key = _normalize_labels(labels)
        family = self._family(kind, name, help)
        instrument = family.instruments.get(key)
        if instrument is None:
            instrument = cls(name, help=help, labels=key)
            family.instruments[key] = instrument
        return instrument

    def _family(self, kind: str, name: str, help: str) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = _Family(kind=kind, help=help)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, "
                f"requested {kind}"
            )
        return family

    # ------------------------------------------------------------------
    # collectors
    # ------------------------------------------------------------------
    def register_collector(self, collector: Collector) -> None:
        """Register a callable yielding :class:`Sample` at export time."""
        self._collectors.append(collector)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def samples(self) -> list[Sample]:
        """Every sample: direct instruments first, then collectors."""
        out: list[Sample] = []
        for family in self._families.values():
            for instrument in family.instruments.values():
                out.extend(instrument.samples())  # type: ignore[attr-defined]
        for collector in self._collectors:
            out.extend(collector())
        return out

    def snapshot(self) -> dict[str, float]:
        """Flat ``{key: value}`` view of every sample (tests, reports)."""
        return {sample.key: sample.value for sample in self.samples()}

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4).

        The 0.0.4 spec requires all samples of one metric family in a
        single group; collectors (e.g. one per instance tracker) each
        emit their own slice of shared families, so samples are grouped
        by base name here — in first-appearance order — before the
        HELP/TYPE headers are printed once per family.
        """
        grouped: dict[str, list[Sample]] = {}
        for sample in self.samples():
            grouped.setdefault(_base_name(sample.name), []).append(sample)
        lines: list[str] = []
        for base, samples in grouped.items():
            first = samples[0]
            help_text = (
                first.help or self._families.get(base, _Family("", "")).help
            )
            kind = (
                self._families[base].kind
                if base in self._families
                else ("counter" if first.kind == "counter" else "gauge")
            )
            if help_text:
                lines.append(f"# HELP {base} {help_text}")
            lines.append(f"# TYPE {base} {kind}")
            for sample in samples:
                lines.append(f"{sample.key} {_format_value(sample.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _base_name(name: str) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def _format_value(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)
