"""The ``telemetry`` CLI subcommand: one fully instrumented run.

Usage::

    python -m repro.experiments telemetry
    python -m repro.experiments telemetry --scale 0.1 --output out/

Runs the Figure 4 configuration (m = 32,768 scaled, k = 5) once with
POSG under a live :class:`~repro.telemetry.recorder.TelemetryRecorder`
and once with Round-Robin as the speedup baseline, then emits every
export the telemetry layer offers:

- a human summary of the :class:`~repro.telemetry.report.RunReport`;
- with ``--output DIR``: ``report.json`` (the full run report),
  ``metrics.prom`` (Prometheus text exposition) and ``trace.jsonl``
  (the streamed event trace);
- without ``--output``: the Prometheus text on stdout.

This module is imported lazily by ``repro.experiments.cli`` (and pulls
the core/simulator stack in only inside :func:`run`), so importing
:mod:`repro.telemetry` stays dependency-light and cycle-free.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
from collections.abc import Sequence


def run(
    scale: float | None = None,
    output: str | None = None,
    chunk_size: int = 2048,
    seed: int = 0,
) -> int:
    """Execute the instrumented demo run; returns a process exit code."""
    import numpy as np

    from repro.core.config import POSGConfig
    from repro.core.grouping import POSGGrouping, RoundRobinGrouping
    from repro.simulator.run import simulate_stream
    from repro.telemetry.recorder import TelemetryRecorder
    from repro.telemetry.report import RunReport
    from repro.telemetry.tracer import Tracer
    from repro.workloads.synthetic import default_stream

    if scale is None:
        scale = float(os.environ.get("REPRO_SCALE", "1.0"))
    m = max(1024, int(32_768 * scale))
    k = 5

    directory: pathlib.Path | None = None
    trace_path: pathlib.Path | None = None
    if output is not None:
        directory = pathlib.Path(output)
        directory.mkdir(parents=True, exist_ok=True)
        trace_path = directory / "trace.jsonl"

    tracer = Tracer(sink=str(trace_path)) if trace_path is not None else Tracer()
    with TelemetryRecorder(tracer=tracer) as recorder:
        stream = default_stream(seed=seed, m=m)
        policy = POSGGrouping(POSGConfig.paper_defaults(), telemetry=recorder)
        posg = simulate_stream(
            stream,
            policy,
            k=k,
            rng=np.random.default_rng(seed + 1),
            chunk_size=chunk_size,
            telemetry=recorder,
        )
        # the baseline run stays un-instrumented so the registry holds
        # exactly one run's worth of counters
        baseline = simulate_stream(
            stream, RoundRobinGrouping(), k=k, chunk_size=chunk_size
        )
        report = RunReport.from_simulation(
            posg, k, baseline=baseline, telemetry=recorder
        )

        print(report.summary())
        print(
            f"trace: {recorder.tracer.emitted} events emitted "
            f"({recorder.tracer.dropped} beyond the ring capacity)"
        )
        if directory is not None:
            report_path = report.save(directory / "report.json")
            prom_path = directory / "metrics.prom"
            prom_path.write_text(recorder.registry.to_prometheus())
            print(f"wrote {report_path}")
            print(f"wrote {prom_path}")
            print(f"wrote {trace_path}")
        else:
            print()
            print(recorder.registry.to_prometheus(), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.cli",
        description="Run the Figure 4 configuration with full telemetry.",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="stream-length scale factor (1.0 = paper sizes)",
    )
    parser.add_argument(
        "--output", type=str, default=None,
        help="directory for report.json, metrics.prom and trace.jsonl",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=2048,
        help="simulator chunk size (0 = per-tuple reference engine)",
    )
    parser.add_argument("--seed", type=int, default=0, help="stream seed")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return run(
        scale=args.scale,
        output=args.output,
        chunk_size=args.chunk_size,
        seed=args.seed,
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
