"""Nanosecond phase profiler for the simulation hot paths.

A :class:`PhaseProfiler` measures *where the engine's time goes* —
hashing, estimate gathering, routing scans, sketch folds, window-close
FSM work — as a tree of named spans:

    profiler.start("route")
    ...
    profiler.start("window_close")   # nests under "route"
    ...
    profiler.stop()
    profiler.stop()

Each distinct path through the span stack (``("route",)``,
``("route", "window_close")``, ...) accumulates a call count and a total
time in nanoseconds (``time.perf_counter_ns``).  ``report()`` derives
self time (total minus the children's totals) and ``to_flamegraph()``
emits the collapsed-stack text format Brendan Gregg's ``flamegraph.pl``
(or speedscope) consumes directly::

    simulate;route 12345678
    simulate;route;window_close 2345678

The profiler is engine-agnostic: the simulator guards every span behind
``if profiler is not None``, so un-profiled runs pay nothing, and the
span structure (though not the times) is deterministic for a given
stream.  Spans do not need to align with tuples — the chunked engine
opens one "route" span per control-quiet segment.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from time import perf_counter_ns

__all__ = ["PhaseProfiler"]


class PhaseProfiler:
    """Aggregating span profiler (see module docstring)."""

    __slots__ = ("_path", "_starts", "_nodes")

    def __init__(self) -> None:
        #: current span stack, as names
        self._path: list[str] = []
        self._starts: list[int] = []
        #: path tuple -> [calls, total_ns]
        self._nodes: dict[tuple[str, ...], list[int]] = {}

    # ------------------------------------------------------------------
    # span API (hot path: two list ops and one clock read per edge)
    # ------------------------------------------------------------------
    def start(self, name: str) -> None:
        """Open a span named ``name``, nested under the current one."""
        self._path.append(name)
        self._starts.append(perf_counter_ns())

    def stop(self) -> None:
        """Close the innermost open span."""
        elapsed = perf_counter_ns() - self._starts.pop()
        path = tuple(self._path)
        self._path.pop()
        node = self._nodes.get(path)
        if node is None:
            self._nodes[path] = [1, elapsed]
        else:
            node[0] += 1
            node[1] += elapsed

    @contextmanager
    def span(self, name: str):
        """Context-manager form of :meth:`start`/:meth:`stop`."""
        self.start(name)
        try:
            yield self
        finally:
            self.stop()

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------
    @property
    def open_spans(self) -> tuple[str, ...]:
        """Names of the currently open spans, outermost first."""
        return tuple(self._path)

    def report(self) -> dict:
        """Aggregated spans: ``{"spans": [...], "total_ns": ...}``.

        Each span entry carries its path, call count, total nanoseconds
        and self nanoseconds (total minus direct children).  Sorted by
        path so the output is stable.
        """
        if self._path:
            raise RuntimeError(
                f"cannot report with open spans: {self._path!r}"
            )
        children_total: dict[tuple[str, ...], int] = {}
        for path, (_, total) in self._nodes.items():
            if len(path) > 1:
                parent = path[:-1]
                children_total[parent] = children_total.get(parent, 0) + total
        spans = []
        for path in sorted(self._nodes):
            calls, total = self._nodes[path]
            spans.append(
                {
                    "path": list(path),
                    "name": path[-1],
                    "depth": len(path),
                    "calls": calls,
                    "total_ns": total,
                    "self_ns": total - children_total.get(path, 0),
                }
            )
        root_total = sum(
            total for path, (_, total) in self._nodes.items() if len(path) == 1
        )
        return {"total_ns": root_total, "spans": spans}

    def to_flamegraph(self) -> str:
        """Collapsed-stack lines (``a;b;c <self_ns>``), one per span path."""
        report = self.report()
        lines = []
        for span in report["spans"]:
            self_ns = span["self_ns"]
            if self_ns > 0:
                lines.append(f"{';'.join(span['path'])} {self_ns}")
        return "\n".join(lines) + ("\n" if lines else "")

    def save_json(self, path: "str | Path") -> Path:
        """Write :meth:`report` as JSON; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.report(), indent=2) + "\n")
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PhaseProfiler(paths={len(self._nodes)}, open={self._path!r})"
