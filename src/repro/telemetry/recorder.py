"""The telemetry recorder facade and its no-op twin.

A :class:`TelemetryRecorder` bundles the two halves of the telemetry
layer — a :class:`~repro.telemetry.registry.MetricsRegistry` and a
:class:`~repro.telemetry.tracer.Tracer` — behind one object that every
instrumented component accepts as an optional parameter.

The default everywhere is :data:`NULL_RECORDER`, a singleton
:class:`NullRecorder` whose registry and tracer are inert no-ops and
whose ``enabled`` flag is ``False``.  Hot paths guard instrumentation
with a single attribute check::

    if self._telemetry.enabled:
        self._telemetry.tracer.emit("scheduler_state", ...)

so the instrumented code costs one attribute load and a predictable
branch when telemetry is off (the <3% overhead gate of
``benchmarks/bench_telemetry_overhead.py`` holds this to account).
Cold paths may call the registry/tracer unguarded — the null objects
swallow everything.
"""

from __future__ import annotations

from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.tracer import Tracer


class _NullInstrument:
    """Accepts every Counter/Gauge/Histogram mutation and does nothing."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class _NullRegistry:
    """Registry stand-in: hands out the shared null instrument."""

    __slots__ = ()

    def counter(self, name, help="", labels=None):
        return _NULL_INSTRUMENT

    def gauge(self, name, help="", labels=None):
        return _NULL_INSTRUMENT

    def histogram(self, name, buckets=(), help="", labels=None):
        return _NULL_INSTRUMENT

    def register_collector(self, collector) -> None:
        pass

    def samples(self):
        return []

    def snapshot(self):
        return {}

    def to_prometheus(self) -> str:
        return ""


class _NullTracer:
    """Tracer stand-in: drops every event."""

    __slots__ = ()

    def emit(self, kind, **fields) -> None:
        pass

    def events(self, kind=None):
        return []

    emitted = 0
    dropped = 0

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class TelemetryRecorder:
    """Live recorder: a metrics registry plus an event tracer.

    Parameters
    ----------
    registry:
        Metrics registry to record into (fresh one when omitted).
    tracer:
        Event tracer (fresh in-memory ring when omitted).  Pass
        ``Tracer.jsonl(path)`` to stream events to disk.
    """

    enabled = True

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()

    def close(self) -> None:
        """Flush and close the tracer's sink (registry needs no cleanup)."""
        self.tracer.close()

    def __enter__(self) -> "TelemetryRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __bool__(self) -> bool:
        return True


class NullRecorder:
    """Telemetry turned off: every observation is a no-op.

    Instrumented components default to :data:`NULL_RECORDER`, so a system
    built without explicit telemetry behaves (and benchmarks) exactly as
    an uninstrumented one.
    """

    enabled = False

    def __init__(self) -> None:
        self.registry = _NullRegistry()
        self.tracer = _NullTracer()

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullRecorder":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def __bool__(self) -> bool:
        return False


#: process-wide default recorder (stateless, safe to share)
NULL_RECORDER = NullRecorder()
