"""Online estimator audit: how good is ``W/F`` while the run is live?

The paper's scheduler routes on estimated execution times read off the
Count-Min ``(F, W)`` pair (Listing III.2) and argues two things about
that estimator: its expectation concentrates near the mean execution
time (Theorem 4.3) and its Markov tail over one row, ``Pr{est >= a} <=
E/a``, sharpens to ``(E/a)^r`` across ``r`` independently-hashed rows.
Nothing in the repository measured either claim at runtime — this module
does, on a **deterministic sample** of routed tuples.

Sampling rule: tuple ``j`` is audited iff ``j % sample_every == 0``
(stream position, not wall clock), so two runs over the same stream
sample the same tuples and the whole audit is reproducible bit for bit.
At each sampled tuple the auditor calls the scheduler's *pure*
:meth:`~repro.core.scheduler.POSGScheduler.estimate` — matrices are
frozen between control deliveries, so the value it reads is exactly the
estimate the routing decision used, under both simulator engines.

Per sample the auditor maintains O(1) state:

- streaming error quantiles (:class:`~repro.telemetry.quantiles.P2Quantile`)
  of the absolute and relative estimation error;
- per-row CMS collision diagnostics (which row the min-``F`` rule
  picked, how far the rows disagree);
- tail counters for the Theorem 4.3 checks: empirical
  ``Pr{est >= a}`` vs the Markov bound ``E/a`` (an *identity* on the
  empirical measure, so the check can gate CI without flaking) and the
  paper's ``(E/a)^r`` row-independence sharpening (reported, informative);
- optional segments (e.g. before/after an injected crash) with their
  own quantile estimators.

The module is duck-typed over the scheduler (it only needs ``estimate``
and, optionally, ``row_estimates``/``config``), keeping
``repro.telemetry`` free of ``repro.core`` imports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.telemetry.quantiles import P2Quantile
from repro.telemetry.recorder import NULL_RECORDER
from repro.telemetry.registry import Sample

__all__ = ["AuditConfig", "EstimatorAudit"]


@dataclass(frozen=True)
class AuditConfig:
    """Knobs of the estimator audit.

    Parameters
    ----------
    sample_every:
        Audit every N-th tuple (stream position).  256 keeps the sampled
        hot-path work under the 10% overhead gate at paper scale (see
        ``benchmarks/bench_audit_overhead.py``).
    quantiles:
        Error quantiles to stream, as fractions.
    tail_thresholds_ms:
        Absolute estimate thresholds ``a`` for the Theorem 4.3 tail
        checks ``Pr{est >= a}``.  The defaults bracket the top of the
        default workload's 1..64 ms execution-time range.
    segment_boundaries:
        Stream positions that start a new audit segment (e.g. the tuple
        index of an injected crash); each segment keeps its own error
        quantiles so before/after comparisons stay honest.
    """

    sample_every: int = 256
    quantiles: tuple[float, ...] = (0.5, 0.9, 0.99)
    tail_thresholds_ms: tuple[float, ...] = (48.0, 64.0, 96.0)
    segment_boundaries: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {self.sample_every}"
            )
        if not self.quantiles:
            raise ValueError("need at least one quantile")
        for q in self.quantiles:
            if not 0.0 < q < 1.0:
                raise ValueError(f"quantiles must be in (0, 1), got {q}")
        if any(t <= 0 for t in self.tail_thresholds_ms):
            raise ValueError("tail thresholds must be > 0")
        boundaries = tuple(sorted(self.segment_boundaries))
        if boundaries != tuple(self.segment_boundaries):
            object.__setattr__(self, "segment_boundaries", boundaries)


def _quantile_key(q: float) -> str:
    return f"p{q * 100:g}"


@dataclass(slots=True)
class _Segment:
    """Error tallies for one contiguous stretch of the stream."""

    start: int
    quantiles: tuple[float, ...]
    thresholds: tuple[float, ...]
    end: "int | None" = None
    samples: int = 0
    true_sum: float = 0.0
    estimate_sum: float = 0.0
    abs_error_sum: float = 0.0
    overestimates: int = 0
    zero_true: int = 0
    abs_error_q: list = field(default_factory=list)
    rel_error_q: list = field(default_factory=list)
    tail_counts: list = field(default_factory=list)

    def __post_init__(self) -> None:
        self.abs_error_q = [P2Quantile(q) for q in self.quantiles]
        self.rel_error_q = [P2Quantile(q) for q in self.quantiles]
        self.tail_counts = [0] * len(self.thresholds)

    def observe(self, estimate: float, true_time: float) -> None:
        error = estimate - true_time
        abs_error = error if error >= 0.0 else -error
        self.samples += 1
        self.true_sum += true_time
        self.estimate_sum += estimate
        self.abs_error_sum += abs_error
        if error > 0.0:
            self.overestimates += 1
        for estimator in self.abs_error_q:
            estimator.observe(abs_error)
        if true_time > 0.0:
            relative = abs_error / true_time
            for estimator in self.rel_error_q:
                estimator.observe(relative)
        else:
            self.zero_true += 1
        tail_counts = self.tail_counts
        for index, threshold in enumerate(self.thresholds):
            if estimate >= threshold:
                tail_counts[index] += 1

    def _quantile_dict(self, estimators) -> dict:
        out = {}
        for q, estimator in zip(self.quantiles, estimators):
            value = estimator.value
            out[_quantile_key(q)] = None if math.isnan(value) else float(value)
        return out

    def report(self) -> dict:
        n = self.samples
        return {
            "start": self.start,
            "end": self.end,
            "samples": n,
            "mean_true_ms": self.true_sum / n if n else None,
            "mean_estimate_ms": self.estimate_sum / n if n else None,
            "mean_abs_error_ms": self.abs_error_sum / n if n else None,
            "overestimate_fraction": self.overestimates / n if n else None,
            "abs_error_quantiles_ms": self._quantile_dict(self.abs_error_q),
            "rel_error_quantiles": self._quantile_dict(self.rel_error_q),
        }


class EstimatorAudit:
    """Streaming audit of the scheduler's execution-time estimator.

    Parameters
    ----------
    scheduler:
        Any object with a pure ``estimate(item, instance) -> float``
        (in practice :class:`~repro.core.scheduler.POSGScheduler`).
        ``row_estimates(item, instance)`` and ``config.sketch_shape``
        are used when present for the per-row collision diagnostics and
        the row-independence bound.
    config:
        :class:`AuditConfig` (defaults when omitted).
    telemetry:
        Optional recorder; the audit registers an export-time collector
        publishing ``posg_estimator_*`` samples.
    """

    def __init__(
        self, scheduler, config: AuditConfig | None = None, telemetry=NULL_RECORDER
    ) -> None:
        estimate = getattr(scheduler, "estimate", None)
        if not callable(estimate):
            raise ValueError(
                "estimator audit needs a scheduler exposing estimate(item, "
                f"instance); got {scheduler!r}"
            )
        self._scheduler = scheduler
        self._estimate = estimate
        self._config = config if config is not None else AuditConfig()
        self._telemetry = telemetry if telemetry is not None else NULL_RECORDER
        self._rows = self._sketch_rows(scheduler)
        self._row_estimates = getattr(scheduler, "row_estimates", None)
        # With pooled estimates the routing estimate averages over every
        # instance, so it cannot be recovered from one pair's rows.
        scheduler_config = getattr(scheduler, "config", None)
        self._pooled = bool(getattr(scheduler_config, "pooled_estimates", False))
        quantiles = self._config.quantiles
        thresholds = self._config.tail_thresholds_ms
        self._overall = _Segment(0, quantiles, thresholds)
        self._boundaries = list(self._config.segment_boundaries)
        # Without segment boundaries the single segment IS the overall
        # tally — observing it twice would double the per-sample P2 work
        # for identical numbers.
        if self._boundaries:
            self._segments = [_Segment(0, quantiles, thresholds)]
        else:
            self._segments = [self._overall]
        # collision diagnostics (whole run)
        self._row_pick_counts = [0] * (self._rows or 0)
        self._row_disagreements = 0
        self._rowed_samples = 0
        self._spread_q = [P2Quantile(q) for q in quantiles]
        self._telemetry.registry.register_collector(self._collect_samples)

    @staticmethod
    def _sketch_rows(scheduler) -> int | None:
        config = getattr(scheduler, "config", None)
        shape = getattr(config, "sketch_shape", None)
        if shape is None:
            return None
        return int(shape[0])

    # ------------------------------------------------------------------
    # ingestion (hot-ish path: once every sample_every tuples)
    # ------------------------------------------------------------------
    @property
    def sample_every(self) -> int:
        """Audit stride; the engines sample ``j % sample_every == 0``."""
        return self._config.sample_every

    def observe(
        self, index: int, item: int, instance: int, true_time: float
    ) -> None:
        """Audit one routed tuple.

        ``index`` is the stream position (drives segmenting), ``item``
        and ``instance`` identify the routing decision, ``true_time`` is
        the execution time the simulation actually charged (after any
        injected slowdown — the audit measures the estimator against
        what really happened).
        """
        boundaries = self._boundaries
        while boundaries and index >= boundaries[0]:
            boundary = boundaries.pop(0)
            self._segments[-1].end = boundary
            self._segments.append(
                _Segment(
                    boundary,
                    self._config.quantiles,
                    self._config.tail_thresholds_ms,
                )
            )
        row_fn = self._row_estimates
        rows = row_fn(item, instance) if row_fn is not None else None
        if rows:
            min_freq = rows[0][0]
            picked = 0
            for row in range(1, len(rows)):
                if rows[row][0] < min_freq:
                    min_freq = rows[row][0]
                    picked = row
            if self._pooled:
                estimate = float(self._estimate(item, instance))
            else:
                # FWPair.estimate is exactly the ratio at the first
                # minimum-F row (mean fallback folded into row_values),
                # so the rows fetched for the collision diagnostics
                # already contain the routing estimate.
                estimate = rows[picked][1]
        else:
            estimate = float(self._estimate(item, instance))
        overall = self._overall
        overall.observe(estimate, true_time)
        segment = self._segments[-1]
        if segment is not overall:
            segment.observe(estimate, true_time)
        if rows:
            self._rowed_samples += 1
            lo = math.inf
            hi = -math.inf
            disagree = False
            for freq, ratio in rows:
                if freq != min_freq:
                    disagree = True
                if freq > 0:
                    if ratio < lo:
                        lo = ratio
                    if ratio > hi:
                        hi = ratio
            if picked < len(self._row_pick_counts):
                self._row_pick_counts[picked] += 1
            if disagree:
                self._row_disagreements += 1
            if hi >= lo and estimate > 0.0:
                for estimator in self._spread_q:
                    estimator.observe((hi - lo) / estimate)

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------
    @property
    def samples(self) -> int:
        """Tuples audited so far."""
        return self._overall.samples

    def theorem43_checks(self) -> list[dict]:
        """Empirical Theorem 4.3 tail checks, one per threshold.

        ``markov_bound`` is ``min(1, E/a)`` with ``E`` the sampled mean
        estimate — Markov's inequality holds *exactly* on the empirical
        measure, so ``holds`` is deterministic (never a flake).
        ``row_bound`` is the paper's ``(E/a)^r`` sharpening under row
        independence; it is reported for comparison but not asserted
        (finite sketches are not perfectly independent across rows).
        """
        overall = self._overall
        n = overall.samples
        mean_estimate = overall.estimate_sum / n if n else 0.0
        checks = []
        for threshold, count in zip(
            self._config.tail_thresholds_ms, overall.tail_counts
        ):
            empirical = count / n if n else 0.0
            markov = min(1.0, mean_estimate / threshold)
            row_bound = markov ** self._rows if self._rows else None
            checks.append(
                {
                    "threshold_ms": threshold,
                    "empirical_tail": empirical,
                    "markov_bound": markov,
                    "row_bound": row_bound,
                    "holds": empirical <= markov + 1e-12,
                }
            )
        return checks

    def report(self) -> dict:
        """Everything the audit learned, as one JSON-ready dict."""
        overall = self._overall.report()
        overall.pop("start")
        overall.pop("end")
        rowed = self._rowed_samples
        return {
            "sample_every": self._config.sample_every,
            **overall,
            "zero_true_samples": self._overall.zero_true,
            "collisions": {
                "rowed_samples": rowed,
                "row_pick_counts": list(self._row_pick_counts),
                "row_disagreement_fraction": (
                    self._row_disagreements / rowed if rowed else None
                ),
                "relative_spread_quantiles": self._overall._quantile_dict(
                    self._spread_q
                ),
            },
            "theorem43": {
                "rows": self._rows,
                "checks": self.theorem43_checks(),
                "all_markov_hold": all(
                    check["holds"] for check in self.theorem43_checks()
                ),
            },
            "segments": [segment.report() for segment in self._segments],
        }

    def _collect_samples(self) -> list[Sample]:
        """Export-time ``posg_estimator_*`` samples (registry collector)."""
        overall = self._overall
        n = overall.samples
        samples = [
            Sample(
                "posg_estimator_samples_total",
                n,
                "counter",
                help="Routed tuples audited against the true service time",
            ),
            Sample(
                "posg_estimator_mean_true_ms",
                overall.true_sum / n if n else 0.0,
                "gauge",
                help="Mean true execution time over the audited sample",
            ),
            Sample(
                "posg_estimator_mean_estimate_ms",
                overall.estimate_sum / n if n else 0.0,
                "gauge",
                help="Mean W/F estimate over the audited sample",
            ),
            Sample(
                "posg_estimator_mean_abs_error_ms",
                overall.abs_error_sum / n if n else 0.0,
                "gauge",
                help="Mean |estimate - true| over the audited sample",
            ),
            Sample(
                "posg_estimator_row_disagreements_total",
                self._row_disagreements,
                "counter",
                help="Audited tuples whose CMS rows disagreed on the count",
            ),
        ]
        for q, abs_est, rel_est in zip(
            self._config.quantiles, overall.abs_error_q, overall.rel_error_q
        ):
            key = _quantile_key(q)
            for name, estimator, help_text in (
                (
                    f"posg_estimator_abs_error_{key}_ms",
                    abs_est,
                    "Streaming absolute-error quantile (P2)",
                ),
                (
                    f"posg_estimator_rel_error_{key}",
                    rel_est,
                    "Streaming relative-error quantile (P2)",
                ),
            ):
                value = estimator.value
                if not math.isnan(value):
                    samples.append(Sample(name, value, "gauge", help=help_text))
        for threshold, count in zip(
            self._config.tail_thresholds_ms, overall.tail_counts
        ):
            samples.append(
                Sample(
                    "posg_estimator_tail_fraction",
                    count / n if n else 0.0,
                    "gauge",
                    (("threshold_ms", f"{threshold:g}"),),
                    help="Empirical Pr{estimate >= threshold} (Theorem 4.3)",
                )
            )
        return samples

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EstimatorAudit(samples={self.samples}, "
            f"every={self._config.sample_every})"
        )
