"""Per-tuple lineage tracing: latency decomposition + SLO observatory.

The repo observes latency only in aggregate (``CompletionStats``
percentiles, makespan vs the Theorem 4.2 oracle) — nothing says *where*
a slow tuple's time went.  This module adds a Dapper-style tracer that
samples every N-th tuple of the stream and records its **span chain**:

- the arrival clock and the owning shard's scheduling decision (chosen
  instance, the shard's believed per-instance loads, and the *margin*
  the argmin pick had over the runner-up);
- the enqueue clock at the instance (arrival + data-plane latency) and
  the queue ahead of the tuple, expressed in time (``start - enqueue``);
- execution start/finish clocks and the instance window's remaining
  tuple budget at execution (how close the window was to closing).

From the four raw clocks the tracer derives the decomposition

    completion = scheduling_delay + queue_wait + service_time

where the partition is **exact in IEEE-754**, not approximately equal.
Floating-point addition does not associate, so the identity is defined
by construction: with left-to-right evaluation,

    completion       = finish - arrival
    scheduling_delay = at_instance - arrival
    queue_wait       = start - at_instance
    service_time     = (completion - scheduling_delay) - queue_wait

which makes ``((completion - scheduling_delay) - queue_wait)
- service_time == 0.0`` bit-exact for every sampled tuple (a property
test sweeps adversarial magnitudes).  ``service_time`` equals the
modeled execution time up to rounding of the subtraction chain; the
three components are each >= 0 up to that same rounding.

Determinism contract
--------------------
Records are keyed on the global stream index and store only
engine-invariant clocks (the same float values all three engines
compute for arrival / at-instance / start / finish) plus the believed
loads the engine-side block routers commit.  The per-shard timelines
are therefore **bit-identical** across the per-tuple reference, the
chunked engine and the multi-process parallel engine, with and without
fault plans, under fork and spawn (gated by
``tests/simulator/test_lineage_equivalence.py``).  Like the flight
recorder, the sampling stride is bumped to the next integer coprime
with the shard count so samples rotate over every shard; quantiles and
SLO burn rates are computed at :meth:`LineageTracer.report` time from
the records merged in global index order, so they never depend on the
engine's observation interleaving.

Capacity semantics
------------------
Per-shard timelines are prefix-keep bounded by ``capacity``: on
overflow new samples are counted in ``dropped_samples`` and discarded,
so a truncated timeline is a deterministic, comparable prefix.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.telemetry.quantiles import P2Quantile
from repro.telemetry.recorder import NULL_RECORDER
from repro.telemetry.registry import Sample

#: component keys of the exact latency partition, in identity order
COMPONENTS = ("scheduling_delay", "queue_wait", "service_time")

#: report quantiles per component (P² streaming, label -> q)
_QUANTILES = (("p50", 0.50), ("p99", 0.99), ("p999", 0.999))


@dataclass(frozen=True)
class SLOConfig:
    """One declarative latency objective.

    Parameters
    ----------
    name:
        Label carried into the ``posg_slo_*`` metric series and the
        report block.
    latency_ms:
        Completion-time threshold a tuple must finish under.
    percentile:
        Objective percentile in ``(0, 100)``: "``percentile`` % of
        tuples complete within ``latency_ms``".  The *error budget* is
        the complementary fraction ``1 - percentile/100``; the burn
        rate is the observed violation rate divided by that budget
        (1.0 = exactly spending the budget, > 1.0 = violating the SLO).
    """

    name: str
    latency_ms: float
    percentile: float = 99.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("SLO name must be non-empty")
        if not self.latency_ms > 0.0:
            raise ValueError(f"latency_ms must be > 0, got {self.latency_ms}")
        if not 0.0 < self.percentile < 100.0:
            raise ValueError(
                f"percentile must be in (0, 100), got {self.percentile}"
            )

    @property
    def budget(self) -> float:
        """Allowed violation fraction (the error budget)."""
        return 1.0 - self.percentile / 100.0


@dataclass(frozen=True)
class LineageConfig:
    """Tuning knobs for the lineage tracer.

    Parameters
    ----------
    sample_every:
        Trace every N-th tuple (stream-global stride).  Tuple ``i``
        belongs to shard ``i mod s``, so :meth:`LineageTracer.bind`
        bumps the effective stride to the next integer coprime with
        ``s`` — the samples then rotate over every shard instead of
        aliasing onto shard 0.  The default keeps the sampled-mode
        overhead inside the ``bench_lineage_overhead`` gate.
    capacity:
        Per-shard sample bound; the prefix is kept on overflow and
        ``dropped_samples`` counts the rest.  ``None`` is unbounded.
    slos:
        Declarative :class:`SLOConfig` targets evaluated at report
        time into burn-rate counters.
    """

    sample_every: int = 128
    capacity: int | None = 65_536
    slos: tuple[SLOConfig, ...] = ()

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {self.sample_every}")
        if self.capacity is not None and self.capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {self.capacity}")
        names = [slo.name for slo in self.slos]
        if len(names) != len(set(names)):
            raise ValueError(f"SLO names must be unique, got {names}")


def decompose(record: tuple) -> dict:
    """Derive the exact latency partition of one lineage record.

    ``record`` is a timeline tuple ``(index, instance, believed,
    arrival, at_instance, start, finish, window_remaining)``.  Returns
    the span chain plus the derived components; ``service_time`` is
    defined as the exact remainder of the left-to-right subtraction
    chain, which is what makes the partition identity hold bit-exactly
    (see the module docstring).
    """
    index, instance, believed, arrival, at_instance, start, finish, window = record
    completion = finish - arrival
    scheduling_delay = at_instance - arrival
    queue_wait = start - at_instance
    service_time = (completion - scheduling_delay) - queue_wait
    if believed and len(believed) > 1:
        margin = min(
            value for pos, value in enumerate(believed) if pos != instance
        ) - believed[instance]
    else:
        margin = 0.0
    return {
        "index": index,
        "instance": instance,
        "believed": believed,
        "margin_ms": margin,
        "arrival_ms": arrival,
        "enqueue_ms": at_instance,
        "start_ms": start,
        "finish_ms": finish,
        "window_remaining": window,
        "completion_ms": completion,
        "scheduling_delay": scheduling_delay,
        "queue_wait": queue_wait,
        "service_time": service_time,
    }


class LineageTracer:
    """Deterministic per-tuple span capture for any grouping policy.

    One tracer instruments one run: pass it (or a
    :class:`LineageConfig`) to ``simulate_stream`` /
    ``simulate_stream_parallel`` via ``lineage=`` and read
    :meth:`report` — or :attr:`SimulationResult.lineage` — afterwards.

    Record tuples (per shard, ascending global index)::

        (index, instance, believed, arrival, at_instance, start,
         finish, window_remaining)

    ``believed`` is the owning shard's per-instance load estimate right
    after the pick (``C_hat`` including this tuple's estimate — the
    flight-recorder convention), or ``()`` for policies without an
    estimated load vector (round-robin, oracle baselines).
    ``window_remaining`` is the chosen instance's remaining tuple
    budget before its estimation window closes, *before* this tuple
    executes (0 for policies without instance windows).
    """

    def __init__(self, config: LineageConfig | None = None, telemetry=NULL_RECORDER) -> None:
        self._config = config if config is not None else LineageConfig()
        self._telemetry = telemetry if telemetry is not None else NULL_RECORDER
        self._sources = 0
        self._effective_every = self._config.sample_every
        self._timelines: list[list[tuple]] = []
        self._dropped: list[int] = []
        self._telemetry.registry.register_collector(self._collect_samples)

    # ------------------------------------------------------------------
    # binding
    # ------------------------------------------------------------------
    def bind(self, sources: int) -> None:
        """(Re)initialize for a run with ``sources`` scheduler shards."""
        if sources < 1:
            raise ValueError(f"sources must be >= 1, got {sources}")
        self._sources = int(sources)
        every = self._config.sample_every
        while math.gcd(every, self._sources) != 1:
            every += 1
        self._effective_every = every
        self._timelines = [[] for _ in range(self._sources)]
        self._dropped = [0] * self._sources

    @property
    def config(self) -> LineageConfig:
        return self._config

    @property
    def sources(self) -> int:
        """Shard count bound by the policy (0 before :meth:`bind`)."""
        return self._sources

    @property
    def sample_every(self) -> int:
        """Effective sampling stride (coprime with the shard count).

        Before :meth:`bind` this is the configured value; afterwards it
        is the next integer coprime with ``sources``, so the stream-
        global stride ``index % sample_every == 0`` rotates over every
        shard instead of aliasing onto shard 0.
        """
        if self._sources == 0:
            return self._config.sample_every
        return self._effective_every

    @property
    def dropped_samples(self) -> int:
        """Samples discarded by the per-shard capacity bound (all shards)."""
        return sum(self._dropped)

    # ------------------------------------------------------------------
    # emission (the engines call this on the sampled stride only)
    # ------------------------------------------------------------------
    def record_sample(
        self,
        shard: int,
        index: int,
        instance: int,
        believed,
        arrival: float,
        at_instance: float,
        start: float,
        finish: float,
        window_remaining: int,
    ) -> None:
        """Record one sampled tuple's span chain (raw clocks).

        The clocks are the engine's own values — never re-derived — so
        identical runs produce identical records regardless of engine.
        """
        timeline = self._timelines[shard]
        cap = self._config.capacity
        if cap is not None and len(timeline) >= cap:
            self._dropped[shard] += 1
            return
        timeline.append(
            (
                index,
                instance,
                tuple(believed),
                arrival,
                at_instance,
                start,
                finish,
                window_remaining,
            )
        )

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def timelines(self) -> tuple[tuple, ...]:
        """Per-shard record tuples, ascending index (for bit-identity)."""
        return tuple(tuple(timeline) for timeline in self._timelines)

    def records(self) -> list[tuple]:
        """All records merged in global stream-index order.

        Each shard's timeline is already ascending in index, so the
        merge is a deterministic sort over disjoint index sets — the
        same list whichever engine produced the timelines.
        """
        merged = [record for timeline in self._timelines for record in timeline]
        merged.sort(key=lambda record: record[0])
        return merged

    def spans(self) -> list[dict]:
        """Every record decomposed (:func:`decompose`), index order."""
        return [decompose(record) for record in self.records()]

    # ------------------------------------------------------------------
    # aggregation (report time; never on the hot path)
    # ------------------------------------------------------------------
    def _aggregate(self) -> dict:
        records = self.records()
        samples = len(records)
        quantiles: dict[str, P2Quantile] = {}
        for component in ("completion",) + COMPONENTS:
            for label, q in _QUANTILES:
                quantiles[f"{component}.{label}"] = P2Quantile(q)
        sums = {component: 0.0 for component in ("completion",) + COMPONENTS}
        violations = [0] * len(self._config.slos)
        for record in records:
            span = decompose(record)
            values = {
                "completion": span["completion_ms"],
                "scheduling_delay": span["scheduling_delay"],
                "queue_wait": span["queue_wait"],
                "service_time": span["service_time"],
            }
            for component, value in values.items():
                sums[component] += value
                for label, _ in _QUANTILES:
                    quantiles[f"{component}.{label}"].observe(value)
            for position, slo in enumerate(self._config.slos):
                if span["completion_ms"] > slo.latency_ms:
                    violations[position] += 1
        components = {}
        total = sums["completion"]
        for component in ("completion",) + COMPONENTS:
            components[component] = {
                "mean_ms": sums[component] / samples if samples else 0.0,
                "share": (sums[component] / total) if total > 0.0 else 0.0,
                **{
                    label: (
                        quantiles[f"{component}.{label}"].value
                        if samples
                        else None
                    )
                    for label, _ in _QUANTILES
                },
            }
        slos = []
        for position, slo in enumerate(self._config.slos):
            observed = violations[position] / samples if samples else 0.0
            slos.append(
                {
                    "name": slo.name,
                    "latency_ms": slo.latency_ms,
                    "percentile": slo.percentile,
                    "budget": slo.budget,
                    "samples": samples,
                    "violations": violations[position],
                    "violation_rate": observed,
                    # budget > 0 by SLOConfig validation
                    "burn_rate": observed / slo.budget,
                    "met": observed <= slo.budget,
                }
            )
        return {"samples": samples, "components": components, "slos": slos}

    def slo_status(self) -> list[dict]:
        """The evaluated SLO blocks only (report-time convenience)."""
        return self._aggregate()["slos"]

    def report(self) -> dict:
        """JSON-serializable summary (the RunReport ``lineage`` block)."""
        aggregate = self._aggregate()
        per_shard = [
            {
                "shard": shard,
                "samples": len(self._timelines[shard]),
                "dropped_samples": self._dropped[shard],
            }
            for shard in range(self._sources)
        ]
        return {
            "schema": "posg-lineage/v1",
            "sources": self._sources,
            "sample_every": self.sample_every,
            "capacity": self._config.capacity,
            "samples_total": aggregate["samples"],
            "dropped_samples": sum(self._dropped),
            "per_shard": per_shard,
            "components": aggregate["components"],
            "slos": aggregate["slos"],
        }

    # ------------------------------------------------------------------
    # metrics (export-time collector; zero hot-path cost)
    # ------------------------------------------------------------------
    def _collect_samples(self) -> list[Sample]:
        samples: list[Sample] = []
        for shard in range(self._sources):
            labels = (("shard", str(shard)),)
            samples.extend(
                [
                    Sample(
                        "posg_lineage_samples_total",
                        len(self._timelines[shard]),
                        kind="counter",
                        labels=labels,
                        help="Lineage spans captured per shard.",
                    ),
                    Sample(
                        "posg_lineage_dropped_samples_total",
                        self._dropped[shard],
                        kind="counter",
                        labels=labels,
                        help="Lineage spans discarded by the capacity bound.",
                    ),
                ]
            )
        if self._sources:
            aggregate = self._aggregate()
            for component in ("completion",) + COMPONENTS:
                block = aggregate["components"][component]
                labels = (("component", component),)
                samples.append(
                    Sample(
                        "posg_lineage_component_mean_ms",
                        block["mean_ms"],
                        kind="gauge",
                        labels=labels,
                        help="Mean per-component latency over sampled tuples.",
                    )
                )
                for label, _ in _QUANTILES:
                    value = block[label]
                    if value is None or value != value:
                        continue
                    samples.append(
                        Sample(
                            f"posg_lineage_component_{label}_ms",
                            value,
                            kind="gauge",
                            labels=labels,
                            help=f"Streaming {label} per latency component.",
                        )
                    )
            for slo in aggregate["slos"]:
                labels = (("slo", slo["name"]),)
                samples.extend(
                    [
                        Sample(
                            "posg_slo_violations_total",
                            slo["violations"],
                            kind="counter",
                            labels=labels,
                            help="Sampled tuples over the SLO latency threshold.",
                        ),
                        Sample(
                            "posg_slo_burn_rate",
                            slo["burn_rate"],
                            kind="gauge",
                            labels=labels,
                            help="Violation rate over the SLO error budget "
                            "(> 1 means the objective is being missed).",
                        ),
                        Sample(
                            "posg_slo_met",
                            1.0 if slo["met"] else 0.0,
                            kind="gauge",
                            labels=labels,
                            help="Whether the SLO currently holds (1 = yes).",
                        ),
                    ]
                )
        return samples
