"""Provenance stamping for benchmark artifacts.

Every ``BENCH_*.json`` file the repo writes embeds the output of
:func:`provenance` so the bench trajectory stays comparable across PRs:
the same numbers mean nothing without knowing which commit, interpreter
and numpy produced them.
"""

from __future__ import annotations

import datetime
import platform
import subprocess
import sys
from pathlib import Path

import numpy as np


def git_sha(repo_root: "str | Path | None" = None) -> str | None:
    """Current commit SHA, or ``None`` outside a git checkout."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_root) if repo_root is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if result.returncode != 0:
        return None
    return result.stdout.strip() or None


def provenance(repo_root: "str | Path | None" = None) -> dict:
    """Environment fingerprint to embed in benchmark JSON payloads."""
    return {
        "git_sha": git_sha(repo_root),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
    }
