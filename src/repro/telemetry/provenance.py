"""Provenance stamping for benchmark artifacts.

Every ``BENCH_*.json`` file the repo writes embeds the output of
:func:`provenance` so the bench trajectory stays comparable across PRs:
the same numbers mean nothing without knowing which commit, interpreter
and numpy produced them.
"""

from __future__ import annotations

import datetime
import multiprocessing
import os
import platform
import subprocess
import sys
from pathlib import Path

import numpy as np


def git_sha(repo_root: "str | Path | None" = None) -> str | None:
    """Current commit SHA, or ``None`` outside a git checkout."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_root) if repo_root is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if result.returncode != 0:
        return None
    return result.stdout.strip() or None


def provenance(
    repo_root: "str | Path | None" = None, workers: int | None = None
) -> dict:
    """Environment fingerprint to embed in benchmark JSON payloads.

    ``cpu_count`` and the multiprocessing start method make parallel
    throughput numbers comparable across hosts — a 4-worker figure from
    a 1-core container and one from a 16-core workstation are different
    measurements.  ``workers`` records how many worker processes the
    benchmark actually ran (``None`` for single-process benchmarks).
    """
    info = {
        "git_sha": git_sha(repo_root),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "mp_start_method": multiprocessing.get_start_method(allow_none=True)
        or multiprocessing.get_context().get_start_method(),
    }
    if workers is not None:
        info["workers"] = int(workers)
    return info
