"""Structured event tracing: ring buffer and/or streaming JSONL sink.

The tracer is the ordered half of the telemetry layer.  Components emit
flat, JSON-serializable events at *cold* observation points (FSM
transitions, control-plane messages, run completion); the tracer stamps
each with a monotonically increasing ``seq`` and keeps it in a bounded
ring buffer, optionally streaming it to a JSONL file as it happens.

Event schema (one JSON object per line in JSONL mode)::

    {"seq": 17, "kind": "scheduler_state", "from": "wait_all",
     "to": "run", "epoch": 2, "at": 5120}

``seq`` orders events globally within one recorder; ``kind`` selects the
schema of the remaining fields (see EXPERIMENTS.md, "Telemetry & run
reports", for the catalogue of kinds emitted by the POSG stack).
Non-finite floats are serialized as the strings ``"inf"`` / ``"-inf"`` /
``"nan"`` so every line is strict JSON.
"""

from __future__ import annotations

import json
import math
from collections import deque
from io import IOBase
from pathlib import Path


def _sanitize(value):
    """Make one field value strict-JSON safe."""
    if isinstance(value, float) and not math.isfinite(value):
        return "inf" if value > 0 else ("-inf" if value < 0 else "nan")
    return value


class Tracer:
    """Bounded in-memory event ring with an optional JSONL sink.

    Parameters
    ----------
    capacity:
        Ring-buffer size.  ``None`` keeps every event in memory — fine
        for tests and short runs.
    sink:
        A path or open text file to stream events to as JSON lines.  The
        tracer owns (and closes) the file only when given a path.

    Overflow semantics
    ------------------
    Once the ring is full, every further :meth:`emit` evicts the
    *oldest* buffered event (the ring is a sliding window over the
    tail of the stream) and increments :attr:`dropped`.  Evicted events
    are gone from memory but remain in the JSONL sink when one is
    attached, and ``seq`` numbering is never affected — so
    ``emitted == len(events()) + dropped`` always holds, and a reader
    can detect a truncated trace by checking ``dropped > 0`` (surfaced
    as ``tracer.dropped`` in RunReport v4).  This sliding-window policy
    intentionally differs from the flight recorder's prefix-keep
    policy: an FSM trace is most useful near the end of a run, while
    flight timelines must stay bit-comparable across engines.

    One process, one ring: ``Tracer`` is not safe to share across
    processes.  Multi-process engines (``repro.simulator.parallel``)
    keep all tracer emission in the parent — workers communicate
    through the shared-memory arena and never hold a recorder — so
    capacity accounting stays exact with any worker count.
    """

    def __init__(
        self,
        capacity: int | None = 65_536,
        sink: "str | Path | IOBase | None" = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self._ring: deque = deque(maxlen=capacity)
        self._seq = 0
        self._dropped = 0
        self._owns_sink = isinstance(sink, (str, Path))
        self._sink = open(sink, "w") if self._owns_sink else sink

    @classmethod
    def jsonl(cls, path: "str | Path", capacity: int | None = 65_536) -> "Tracer":
        """Tracer streaming to a JSONL file at ``path``."""
        return cls(capacity=capacity, sink=path)

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def emit(self, kind: str, **fields) -> None:
        """Record one event; fields must be JSON-serializable scalars."""
        event = {"seq": self._seq, "kind": kind}
        for key, value in fields.items():
            event[key] = _sanitize(value)
        self._seq += 1
        if self._ring.maxlen is not None and len(self._ring) == self._ring.maxlen:
            self._dropped += 1
        self._ring.append(event)
        if self._sink is not None:
            self._sink.write(json.dumps(event, sort_keys=False) + "\n")

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def events(self, kind: str | None = None) -> list[dict]:
        """Buffered events (oldest first), optionally filtered by kind."""
        if kind is None:
            return list(self._ring)
        return [event for event in self._ring if event["kind"] == kind]

    @property
    def emitted(self) -> int:
        """Total events emitted (including any dropped from the ring)."""
        return self._seq

    @property
    def dropped(self) -> int:
        """Events evicted from the ring buffer (still in the sink, if any)."""
        return self._dropped

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        if self._sink is not None:
            self._sink.flush()

    def close(self) -> None:
        """Flush and, when the tracer opened the sink itself, close it."""
        if self._sink is not None:
            self._sink.flush()
            if self._owns_sink:
                self._sink.close()
                self._sink = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
