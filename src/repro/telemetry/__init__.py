"""repro.telemetry — unified observability for the POSG stack.

Three pieces, all dependency-free (stdlib + numpy):

- :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms,
  plus export-time *collectors* that mirror component-internal statistics
  with zero hot-path cost (:mod:`repro.telemetry.registry`);
- :class:`Tracer` — structured events (FSM transitions, sketch ships,
  sync rounds) in a bounded ring buffer and/or a streaming JSONL sink
  (:mod:`repro.telemetry.tracer`);
- :class:`TelemetryRecorder` — the facade components accept; its default,
  the :data:`NULL_RECORDER` singleton, makes every observation a no-op so
  uninstrumented runs pay ~nothing (:mod:`repro.telemetry.recorder`).

:class:`RunReport` condenses a finished run into one JSON document
(:mod:`repro.telemetry.report`); :func:`provenance` stamps benchmark
artifacts (:mod:`repro.telemetry.provenance`).

Usage::

    from repro.telemetry import TelemetryRecorder, Tracer

    recorder = TelemetryRecorder(tracer=Tracer.jsonl("trace.jsonl"))
    policy = POSGGrouping(POSGConfig.paper_defaults(), telemetry=recorder)
    result = simulate_stream(stream, policy, k=5, telemetry=recorder)
    print(recorder.registry.to_prometheus())
    report = RunReport.from_simulation(result, k=5, telemetry=recorder)
    recorder.close()

The ``telemetry`` CLI subcommand (``python -m repro.experiments
telemetry``) wires all of this together for the Figure 4 configuration.
"""

from repro.telemetry.provenance import git_sha, provenance
from repro.telemetry.recorder import NULL_RECORDER, NullRecorder, TelemetryRecorder
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
)
from repro.telemetry.report import RunReport
from repro.telemetry.tracer import Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "RunReport",
    "Sample",
    "TelemetryRecorder",
    "Tracer",
    "git_sha",
    "provenance",
]
