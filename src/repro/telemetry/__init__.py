"""repro.telemetry — unified observability for the POSG stack.

Three pieces, all dependency-free (stdlib + numpy):

- :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms,
  plus export-time *collectors* that mirror component-internal statistics
  with zero hot-path cost (:mod:`repro.telemetry.registry`);
- :class:`Tracer` — structured events (FSM transitions, sketch ships,
  sync rounds) in a bounded ring buffer and/or a streaming JSONL sink
  (:mod:`repro.telemetry.tracer`);
- :class:`TelemetryRecorder` — the facade components accept; its default,
  the :data:`NULL_RECORDER` singleton, makes every observation a no-op so
  uninstrumented runs pay ~nothing (:mod:`repro.telemetry.recorder`).

:class:`RunReport` condenses a finished run into one JSON document
(:mod:`repro.telemetry.report`); :func:`provenance` stamps benchmark
artifacts (:mod:`repro.telemetry.provenance`).

The quality-observability layer builds on those hooks:

- :class:`EstimatorAudit` — deterministic sampling of routed tuples,
  streaming W/F estimation-error quantiles and Theorem 4.3 tail checks
  (:mod:`repro.telemetry.audit`);
- :func:`compute_quality` — post-run decision-quality metrics: oracle
  GOS makespan, windowed imbalance and misroute regret
  (:mod:`repro.telemetry.quality`);
- :class:`PhaseProfiler` — nanosecond span profiler for the engine hot
  paths, flamegraph-ready (:mod:`repro.telemetry.profiler`);
- :class:`P2Quantile` — the O(1)-memory streaming quantile estimator
  shared by the audit and :class:`~repro.simulator.metrics.CompletionStats`
  (:mod:`repro.telemetry.quantiles`);
- :func:`render_frame` / :class:`LiveDashboard` /
  :func:`write_html_report` — the live ANSI view and the static HTML
  quality report (:mod:`repro.telemetry.dashboard`), driven by
  ``python -m repro.experiments observe``;
- :class:`FlightRecorder` — the cross-shard flight recorder: causal
  per-shard event timelines (sync rounds, folds, matrices, sampled
  routing decisions with believed loads), bit-identical across engines,
  with :func:`derive_attribution` splitting the sharded misroute regret
  into staleness / collision / residual and :func:`render_shard_lanes`
  drawing the timelines (:mod:`repro.telemetry.flightrecorder`), driven
  by ``python -m repro.experiments attribution``.

Usage::

    from repro.telemetry import TelemetryRecorder, Tracer

    recorder = TelemetryRecorder(tracer=Tracer.jsonl("trace.jsonl"))
    policy = POSGGrouping(POSGConfig.paper_defaults(), telemetry=recorder)
    result = simulate_stream(stream, policy, k=5, telemetry=recorder)
    print(recorder.registry.to_prometheus())
    report = RunReport.from_simulation(result, k=5, telemetry=recorder)
    recorder.close()

The ``telemetry`` CLI subcommand (``python -m repro.experiments
telemetry``) wires all of this together for the Figure 4 configuration.
"""

from repro.telemetry.audit import AuditConfig, EstimatorAudit
from repro.telemetry.dashboard import (
    LiveDashboard,
    render_frame,
    render_shard_lanes,
    write_html_report,
)
from repro.telemetry.flightrecorder import (
    FlightRecorder,
    FlightRecorderConfig,
    derive_attribution,
)
from repro.telemetry.profiler import PhaseProfiler
from repro.telemetry.provenance import git_sha, provenance
from repro.telemetry.quality import (
    compute_quality,
    execution_time_matrix,
    record_quality,
)
from repro.telemetry.quantiles import P2Quantile
from repro.telemetry.recorder import NULL_RECORDER, NullRecorder, TelemetryRecorder
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
)
from repro.telemetry.report import RunReport
from repro.telemetry.tracer import Tracer

__all__ = [
    "AuditConfig",
    "Counter",
    "EstimatorAudit",
    "FlightRecorder",
    "FlightRecorderConfig",
    "Gauge",
    "Histogram",
    "LiveDashboard",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "P2Quantile",
    "PhaseProfiler",
    "RunReport",
    "Sample",
    "TelemetryRecorder",
    "Tracer",
    "compute_quality",
    "derive_attribution",
    "execution_time_matrix",
    "git_sha",
    "provenance",
    "record_quality",
    "render_frame",
    "render_shard_lanes",
    "write_html_report",
]
