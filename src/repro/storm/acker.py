"""Reliability: Storm's XOR ack tracking, timeouts and pending caps.

Every spout emission with a message id registers a *tuple tree*.  Each
edge of the tree carries a random 64-bit ``ack_id``; the acker XORs ids
into a per-tree checksum when edges are created (emit) and when they are
acknowledged (ack).  The checksum returns to zero exactly when every
emitted edge has been acked, at which point the tree is complete and the
spout's ``ack`` callback fires.

Trees that do not complete within ``message_timeout`` (virtual
milliseconds) are failed — this is what produces the "1,600 tuples timed
out" ASSG behaviour of Figure 11 when an overloaded instance's queue
exceeds the timeout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np


@dataclass
class _PendingTree:
    """Book-keeping for one in-flight spout tuple."""

    msg_id: Any
    emitted_at: float
    checksum: int
    #: edges created but whose ack hasn't arrived; checksum==0 AND no
    #: outstanding edges means complete
    outstanding: int


class AckTracker:
    """Tracks in-flight tuple trees for one topology."""

    def __init__(
        self,
        message_timeout: float,
        rng: np.random.Generator | None = None,
    ) -> None:
        if message_timeout <= 0:
            raise ValueError(f"message_timeout must be > 0, got {message_timeout}")
        self._timeout = message_timeout
        self._rng = rng if rng is not None else np.random.default_rng()
        self._pending: dict[Any, _PendingTree] = {}
        self._acked = 0
        self._failed = 0
        self._timed_out = 0

    # ------------------------------------------------------------------
    # tree lifecycle
    # ------------------------------------------------------------------
    def fresh_ack_id(self) -> int:
        """A random non-zero 64-bit edge id.

        The draw covers the full non-zero 64-bit range; zero (the XOR
        identity, which could complete a tree early) is excluded by the
        lower bound, so no rejection loop is needed.
        """
        return int(self._rng.integers(1, 1 << 64, dtype=np.uint64))

    def register_root(self, msg_id: Any, ack_id: int, now: float) -> None:
        """A spout emitted an anchored tuple."""
        if msg_id in self._pending:
            raise ValueError(f"message id {msg_id!r} already pending")
        self._pending[msg_id] = _PendingTree(
            msg_id=msg_id, emitted_at=now, checksum=ack_id, outstanding=1
        )

    def register_edge(self, msg_id: Any, ack_id: int) -> None:
        """A bolt emitted an anchored descendant tuple."""
        tree = self._pending.get(msg_id)
        if tree is None:
            return  # tree already completed/failed/timed out
        tree.checksum ^= ack_id
        tree.outstanding += 1

    def ack(self, msg_id: Any, ack_id: int) -> tuple[bool, float] | None:
        """One edge acked; returns ``(True, latency)`` when the tree
        completes, ``None`` otherwise."""
        tree = self._pending.get(msg_id)
        if tree is None:
            return None
        tree.checksum ^= ack_id
        tree.outstanding -= 1
        if tree.checksum == 0 and tree.outstanding == 0:
            del self._pending[msg_id]
            self._acked += 1
            return True, tree.emitted_at
        return None

    def fail(self, msg_id: Any) -> bool:
        """Explicit failure of a tree; returns whether it was pending."""
        if self._pending.pop(msg_id, None) is not None:
            self._failed += 1
            return True
        return False

    def expire(self, now: float) -> list[Any]:
        """Fail every tree older than the timeout; returns their ids."""
        expired = [
            msg_id
            for msg_id, tree in self._pending.items()
            if now - tree.emitted_at >= self._timeout
        ]
        for msg_id in expired:
            del self._pending[msg_id]
            self._timed_out += 1
        return expired

    def next_expiry(self) -> float | None:
        """Earliest instant at which a pending tree can time out."""
        if not self._pending:
            return None
        oldest = min(tree.emitted_at for tree in self._pending.values())
        return oldest + self._timeout

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """In-flight tuple trees (drives ``max.spout.pending``)."""
        return len(self._pending)

    @property
    def acked(self) -> int:
        """Completed trees."""
        return self._acked

    @property
    def failed(self) -> int:
        """Explicitly failed trees (not counting timeouts)."""
        return self._failed

    @property
    def timed_out(self) -> int:
        """Trees failed by timeout."""
        return self._timed_out

    @property
    def message_timeout(self) -> float:
        """The timeout, in virtual milliseconds."""
        return self._timeout
