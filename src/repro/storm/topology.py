"""Topology definition: spouts, bolts, and the builder wiring them.

Follows Storm's ``TopologyBuilder`` API shape:

.. code-block:: python

    builder = TopologyBuilder()
    builder.set_spout("source", lambda: MySpout(), parallelism=1)
    builder.set_bolt("worker", lambda: MyBolt(), parallelism=5) \\
           .shuffle_grouping("source")
    topology = builder.build()

Components are instantiated per *task* from the given factory, so each
task owns independent state (Storm serializes and copies; we call the
factory).
"""

from __future__ import annotations

import abc
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.storm.grouping import (
    FieldsGrouping,
    GlobalGrouping,
    ShuffleGrouping,
    StreamGrouping,
)
from repro.storm.tuples import StormTuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.storm.executor import BoltCollector, SpoutCollector, TaskContext


class Spout(abc.ABC):
    """A stream source.

    Virtual-time deviation from Storm: :meth:`next_tuple` returns the
    delay (in simulated milliseconds) until the engine should call it
    again, or ``None`` to use the cluster's idle backoff.  Emitting zero
    or more tuples per call is allowed, as in Storm.
    """

    def open(self, context: "TaskContext", collector: "SpoutCollector") -> None:
        """Called once before the first :meth:`next_tuple`."""

    @abc.abstractmethod
    def next_tuple(self) -> float | None:
        """Emit pending tuples via the collector; return the next-call delay."""

    def ack(self, msg_id) -> None:
        """A tuple tree rooted at ``msg_id`` completed."""

    def fail(self, msg_id) -> None:
        """A tuple tree rooted at ``msg_id`` failed or timed out."""

    def close(self) -> None:
        """Called at topology shutdown."""


class Bolt(abc.ABC):
    """A processing operator.

    Virtual-time deviation from Storm: :meth:`work_time` declares the
    simulated execution duration of a tuple (stand-in for the measured
    wall-clock time of ``execute`` in the paper's prototype; their test
    bolts busy-waited for a content-dependent duration).
    """

    def prepare(self, context: "TaskContext", collector: "BoltCollector") -> None:
        """Called once before the first :meth:`execute`."""

    def work_time(self, tup: StormTuple) -> float:
        """Simulated execution duration in milliseconds (default: instant)."""
        return 0.0

    @abc.abstractmethod
    def execute(self, tup: StormTuple) -> None:
        """Process one tuple; emit/ack/fail through the collector."""

    def cleanup(self) -> None:
        """Called at topology shutdown."""


@dataclass
class SpoutSpec:
    """A named spout with its task factory and parallelism."""

    name: str
    factory: Callable[[], Spout]
    parallelism: int
    output_fields: tuple[str, ...]


@dataclass
class _Subscription:
    """One inbound edge of a bolt: (source component -> grouping)."""

    source: str
    grouping: StreamGrouping


@dataclass
class BoltSpec:
    """A named bolt with its factory, parallelism and subscriptions."""

    name: str
    factory: Callable[[], Bolt]
    parallelism: int
    output_fields: tuple[str, ...]
    subscriptions: list[_Subscription] = field(default_factory=list)

    # -- grouping declaration API (chainable, like Storm's InputDeclarer) --
    def shuffle_grouping(self, source: str) -> "BoltSpec":
        """Subscribe with Storm's stock shuffle grouping (ASSG)."""
        self.subscriptions.append(_Subscription(source, ShuffleGrouping()))
        return self

    def fields_grouping(self, source: str, fields: tuple[str, ...]) -> "BoltSpec":
        """Subscribe with hash-partitioning on the given fields."""
        self.subscriptions.append(_Subscription(source, FieldsGrouping(fields)))
        return self

    def global_grouping(self, source: str) -> "BoltSpec":
        """Subscribe with all tuples to the lowest task id."""
        self.subscriptions.append(_Subscription(source, GlobalGrouping()))
        return self

    def custom_grouping(self, source: str, grouping: StreamGrouping) -> "BoltSpec":
        """Subscribe with a user grouping (how POSG plugs in)."""
        self.subscriptions.append(_Subscription(source, grouping))
        return self


@dataclass(frozen=True)
class Topology:
    """An immutable, validated topology ready for submission."""

    spouts: dict[str, SpoutSpec]
    bolts: dict[str, BoltSpec]

    def component(self, name: str) -> SpoutSpec | BoltSpec:
        """Look up any component by name."""
        if name in self.spouts:
            return self.spouts[name]
        if name in self.bolts:
            return self.bolts[name]
        raise KeyError(f"unknown component {name!r}")

    def downstream_of(self, source: str) -> list[tuple[BoltSpec, StreamGrouping]]:
        """Every (bolt, grouping) subscribed to ``source``."""
        return [
            (bolt, sub.grouping)
            for bolt in self.bolts.values()
            for sub in bolt.subscriptions
            if sub.source == source
        ]


class TopologyBuilder:
    """Collects component declarations and validates the graph."""

    def __init__(self) -> None:
        self._spouts: dict[str, SpoutSpec] = {}
        self._bolts: dict[str, BoltSpec] = {}

    def set_spout(
        self,
        name: str,
        factory: Callable[[], Spout],
        parallelism: int = 1,
        output_fields: tuple[str, ...] = ("value",),
    ) -> SpoutSpec:
        """Declare a spout; returns its spec."""
        self._check_name(name)
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        spec = SpoutSpec(name, factory, parallelism, tuple(output_fields))
        self._spouts[name] = spec
        return spec

    def set_bolt(
        self,
        name: str,
        factory: Callable[[], Bolt],
        parallelism: int = 1,
        output_fields: tuple[str, ...] = ("value",),
    ) -> BoltSpec:
        """Declare a bolt; returns its spec for grouping declarations."""
        self._check_name(name)
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        spec = BoltSpec(name, factory, parallelism, tuple(output_fields))
        self._bolts[name] = spec
        return spec

    def _check_name(self, name: str) -> None:
        if not name:
            raise ValueError("component name must be non-empty")
        if name in self._spouts or name in self._bolts:
            raise ValueError(f"component {name!r} already declared")

    def build(self) -> Topology:
        """Validate and freeze the topology."""
        if not self._spouts:
            raise ValueError("a topology needs at least one spout")
        known = set(self._spouts) | set(self._bolts)
        for bolt in self._bolts.values():
            if not bolt.subscriptions:
                raise ValueError(f"bolt {bolt.name!r} subscribes to nothing")
            for sub in bolt.subscriptions:
                if sub.source not in known:
                    raise ValueError(
                        f"bolt {bolt.name!r} subscribes to unknown component "
                        f"{sub.source!r}"
                    )
        self._check_acyclic()
        return Topology(spouts=dict(self._spouts), bolts=dict(self._bolts))

    def _check_acyclic(self) -> None:
        """Topologies are DAGs; reject subscription cycles."""
        edges: dict[str, set[str]] = {name: set() for name in self._bolts}
        for bolt in self._bolts.values():
            for sub in bolt.subscriptions:
                if sub.source in self._bolts:
                    edges[bolt.name].add(sub.source)
        visiting: set[str] = set()
        done: set[str] = set()

        def visit(node: str) -> None:
            if node in done:
                return
            if node in visiting:
                raise ValueError(f"topology contains a cycle through {node!r}")
            visiting.add(node)
            for upstream in edges[node]:
                visit(upstream)
            visiting.discard(node)
            done.add(node)

        for name in edges:
            visit(name)
