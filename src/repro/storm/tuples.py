"""Tuples as they travel through the mini-Storm engine.

Mirrors Storm's model: a tuple is a named list of values emitted on a
stream by a component task; tuples emitted by spouts with a message id
are *anchored* and tracked by the acker until every descendant is acked.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

#: Storm's name for a plain list of field values
Values = list

_tuple_ids = itertools.count(1)


def _fresh_tuple_id() -> int:
    return next(_tuple_ids)


@dataclass
class StormTuple:
    """One tuple instance flowing between tasks.

    Parameters
    ----------
    values:
        The field values, positionally matching the emitting component's
        declared output fields.
    fields:
        Output field names of the emitting component.
    source_component, source_task:
        Provenance of the emission.
    root_id:
        Message id of the spout tuple this descends from (``None`` for
        unanchored tuples).
    ack_id:
        Random 64-bit value XOR-ed into the acker's state for this edge
        of the tuple tree.
    sync_request:
        POSG piggy-back slot (Figure 1.D): control payload riding on a
        data tuple.
    """

    values: Values
    fields: tuple[str, ...]
    source_component: str
    source_task: int
    root_id: Any = None
    ack_id: int = 0
    tuple_id: int = field(default_factory=_fresh_tuple_id)
    sync_request: Any = None

    def value(self, field_name: str) -> Any:
        """Value of a named field (Storm's ``getValueByField``)."""
        try:
            index = self.fields.index(field_name)
        except ValueError:
            raise KeyError(
                f"tuple from {self.source_component} has no field "
                f"{field_name!r}; fields are {self.fields}"
            ) from None
        return self.values[index]

    def select(self, field_names: tuple[str, ...]) -> tuple:
        """Values of several named fields, for fields grouping."""
        return tuple(self.value(name) for name in field_names)

    @property
    def anchored(self) -> bool:
        """Whether this tuple participates in ack tracking."""
        return self.root_id is not None
