"""Stream groupings: how a component's output is partitioned over the
subscribed bolt's tasks.

``ShuffleGrouping`` matches Apache Storm's stock implementation — a
round-robin rotation over the target tasks — which is exactly the
baseline the paper calls **ASSG** (Section V-C).  POSG arrives through
the :class:`CustomStreamGrouping` extension point, mirroring how the
paper's prototype integrates with Storm.
"""

from __future__ import annotations

import abc

from repro.storm.tuples import StormTuple


class StreamGrouping(abc.ABC):
    """Chooses target task indices for each outbound tuple."""

    def prepare(self, source: str, target_tasks: list[int]) -> None:
        """Bind to the target bolt's task ids (ascending order)."""
        if not target_tasks:
            raise ValueError("grouping needs at least one target task")
        self._target_tasks = list(target_tasks)

    @property
    def target_tasks(self) -> list[int]:
        """The subscribed bolt's task ids."""
        return self._target_tasks

    @abc.abstractmethod
    def choose_tasks(self, tup: StormTuple) -> list[int]:
        """Target task ids (usually one) for this tuple."""


class ShuffleGrouping(StreamGrouping):
    """Storm's stock shuffle grouping: round-robin over target tasks (ASSG)."""

    def prepare(self, source: str, target_tasks: list[int]) -> None:
        super().prepare(source, target_tasks)
        self._index = 0

    def choose_tasks(self, tup: StormTuple) -> list[int]:
        task = self._target_tasks[self._index]
        self._index = (self._index + 1) % len(self._target_tasks)
        return [task]


class FieldsGrouping(StreamGrouping):
    """Hash-partition on selected fields (key grouping)."""

    def __init__(self, fields: tuple[str, ...]) -> None:
        if not fields:
            raise ValueError("fields grouping needs at least one field")
        self._fields = tuple(fields)

    def choose_tasks(self, tup: StormTuple) -> list[int]:
        key = tup.select(self._fields)
        return [self._target_tasks[hash(key) % len(self._target_tasks)]]


class GlobalGrouping(StreamGrouping):
    """Every tuple to the lowest target task id."""

    def choose_tasks(self, tup: StormTuple) -> list[int]:
        return [self._target_tasks[0]]


class AllGrouping(StreamGrouping):
    """Replicate every tuple to every target task."""

    def choose_tasks(self, tup: StormTuple) -> list[int]:
        return list(self._target_tasks)


class CustomStreamGrouping(StreamGrouping):
    """Extension point for user-defined groupings (Storm's
    ``CustomStreamGrouping`` interface).

    Subclasses may additionally implement the engine-facing hooks used by
    POSG:

    - :meth:`on_control` — receive a control message from a bolt task;
    - :meth:`wants_execution_reports` — ask the cluster to report each
      executed tuple back (task id, item, measured duration, piggy-backed
      sync request).
    """

    def on_control(self, message) -> None:
        """Control message from a downstream task (default: ignored)."""

    def on_instance_crash(self, task: int) -> None:
        """A subscribed bolt task crash-restarted (default: ignored).

        Fired by the cluster's fault injection; stateful groupings (POSG)
        use it to wipe the per-task tracker the way a real process
        restart would.
        """

    def wants_execution_reports(self) -> bool:
        """Whether bolt tasks must report executions to this grouping."""
        return False

    def on_execution(
        self, task: int, tup: StormTuple, duration: float
    ) -> list:
        """An execution report; returns control messages for the grouping.

        Only called when :meth:`wants_execution_reports` is true.  The
        returned messages are delivered back to :meth:`on_control` after
        the cluster's control-plane latency.
        """
        return []
