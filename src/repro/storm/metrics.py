"""Per-topology metrics: completion latencies, timeouts, task activity."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.telemetry.registry import Sample


class TopologyMetrics:
    """Collected while a topology runs on the local cluster."""

    def __init__(self) -> None:
        self._completions: dict[Any, float] = {}
        self._timeouts: list[Any] = []
        self._failures: list[Any] = []
        self._executed_per_task: dict[tuple[str, int], int] = {}
        self._emitted = 0
        self._control_messages = 0
        self._control_bits = 0

    # ------------------------------------------------------------------
    # recording (called by the cluster)
    # ------------------------------------------------------------------
    def record_emit(self) -> None:
        self._emitted += 1

    def record_completion(self, msg_id: Any, latency: float) -> None:
        self._completions[msg_id] = latency

    def record_timeout(self, msg_id: Any) -> None:
        self._timeouts.append(msg_id)

    def record_failure(self, msg_id: Any) -> None:
        self._failures.append(msg_id)

    def record_execution(self, component: str, task_index: int) -> None:
        key = (component, task_index)
        self._executed_per_task[key] = self._executed_per_task.get(key, 0) + 1

    def record_control_message(self, bits: int = 0) -> None:
        """Count one control-plane message and its wire size in bits.

        The paper's overhead figures are expressed in traffic volume, not
        message count, so the cluster passes each message's
        ``size_bits()`` alongside (0 for legacy callers).
        """
        self._control_messages += 1
        self._control_bits += bits

    # ------------------------------------------------------------------
    # reading (after the run)
    # ------------------------------------------------------------------
    @property
    def emitted(self) -> int:
        """Anchored tuples emitted by spouts."""
        return self._emitted

    @property
    def completed(self) -> int:
        """Tuple trees fully acked."""
        return len(self._completions)

    @property
    def timed_out(self) -> int:
        """Tuple trees failed by timeout (the Figure 11/12 statistic)."""
        return len(self._timeouts)

    @property
    def failed(self) -> int:
        """Tuple trees failed explicitly by a bolt."""
        return len(self._failures)

    @property
    def control_messages(self) -> int:
        """Control-plane messages exchanged (POSG overhead accounting)."""
        return self._control_messages

    @property
    def control_bits(self) -> int:
        """Control-plane traffic in bits (POSG overhead accounting)."""
        return self._control_bits

    def samples(self) -> list[Sample]:
        """Metric samples for a telemetry registry collector.

        The cluster registers this when constructed with a live recorder
        (``LocalCluster(config, telemetry=...)``); reads happen only at
        export time, so the run itself pays nothing.
        """
        return [
            Sample(
                "storm_tuples_emitted_total", self._emitted, "counter",
                help="Anchored tuples emitted by spouts",
            ),
            Sample(
                "storm_tuples_completed_total", len(self._completions),
                "counter", help="Tuple trees fully acked",
            ),
            Sample(
                "storm_tuples_timed_out_total", len(self._timeouts),
                "counter", help="Tuple trees failed by timeout",
            ),
            Sample(
                "storm_tuples_failed_total", len(self._failures), "counter",
                help="Tuple trees failed explicitly by a bolt",
            ),
            Sample(
                "storm_control_messages_total", self._control_messages,
                "counter", help="Control-plane messages exchanged",
            ),
            Sample(
                "storm_control_bits_total", self._control_bits, "counter",
                help="Control-plane traffic in bits",
            ),
        ] + [
            Sample(
                "storm_task_executed_total", count, "counter",
                (("component", component), ("task", str(task))),
                help="Tuples executed per task",
            )
            for (component, task), count in sorted(self._executed_per_task.items())
        ]

    def completion_latencies(self) -> np.ndarray:
        """Latencies of completed trees, ordered by message id.

        Message ids must be sortable (the stream spouts use the tuple's
        stream index).
        """
        if not self._completions:
            return np.array([], dtype=np.float64)
        ordered = sorted(self._completions)
        return np.array([self._completions[mid] for mid in ordered])

    def completed_ids(self) -> list:
        """Sorted message ids of completed trees."""
        return sorted(self._completions)

    def average_completion_time(self) -> float:
        """Mean completion latency over *completed* tuples (paper's L)."""
        latencies = self.completion_latencies()
        if latencies.size == 0:
            raise ValueError("no tuple completed")
        return float(latencies.mean())

    def executions(self, component: str, task_index: int) -> int:
        """Tuples executed by one task."""
        return self._executed_per_task.get((component, task_index), 0)

    def task_execution_counts(self, component: str, parallelism: int) -> np.ndarray:
        """Executed-tuple counts for every task of a component."""
        return np.array(
            [self.executions(component, index) for index in range(parallelism)]
        )
