"""Task executors: how spout and bolt instances run on virtual time.

Each component task gets its own executor.  Spout executors periodically
call ``next_tuple``; bolt executors serve their FIFO input queue one
tuple at a time, advancing the virtual clock by the bolt's declared
``work_time`` — the stand-in for the wall-clock execution the paper's
prototype measures.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.storm.tuples import StormTuple, Values

if TYPE_CHECKING:  # pragma: no cover
    from repro.storm.cluster import LocalCluster
    from repro.storm.topology import Bolt, BoltSpec, Spout, SpoutSpec


@dataclass(frozen=True)
class TaskContext:
    """What a component instance knows about its placement."""

    component: str
    task_index: int
    parallelism: int
    #: read the current virtual time (Storm components read wall clock)
    clock: "Callable[[], float]" = lambda: 0.0

    @property
    def is_leader(self) -> bool:
        """Whether this is the component's first task."""
        return self.task_index == 0


class SpoutCollector:
    """Output collector handed to a spout's ``open``."""

    def __init__(self, cluster: "LocalCluster", spec: "SpoutSpec", task_index: int) -> None:
        self._cluster = cluster
        self._spec = spec
        self._task_index = task_index

    def emit(self, values: Values, msg_id: Any = None) -> None:
        """Emit a tuple; a non-``None`` ``msg_id`` makes it tracked."""
        self._cluster.spout_emit(self._spec, self._task_index, list(values), msg_id)


class BoltCollector:
    """Output collector handed to a bolt's ``prepare``."""

    def __init__(self, cluster: "LocalCluster", spec: "BoltSpec", task_index: int) -> None:
        self._cluster = cluster
        self._spec = spec
        self._task_index = task_index
        self._acked_inputs: set[int] = set()

    def emit(self, values: Values, anchors: list[StormTuple] | None = None) -> None:
        """Emit a tuple, optionally anchored to input tuples."""
        self._cluster.bolt_emit(
            self._spec, self._task_index, list(values), anchors or []
        )

    def ack(self, tup: StormTuple) -> None:
        """Acknowledge an input tuple."""
        if tup.tuple_id in self._acked_inputs:
            return
        self._acked_inputs.add(tup.tuple_id)
        self._cluster.ack_tuple(tup)

    def fail(self, tup: StormTuple) -> None:
        """Fail an input tuple's whole tree."""
        self._acked_inputs.add(tup.tuple_id)
        self._cluster.fail_tuple(tup)

    def was_handled(self, tup: StormTuple) -> bool:
        """Whether the bolt already acked/failed this input."""
        return tup.tuple_id in self._acked_inputs


class SpoutExecutor:
    """Drives one spout task."""

    def __init__(
        self,
        cluster: "LocalCluster",
        spec: "SpoutSpec",
        task_index: int,
        spout: "Spout",
    ) -> None:
        self.cluster = cluster
        self.spec = spec
        self.task_index = task_index
        self.spout = spout
        self.collector = SpoutCollector(cluster, spec, task_index)
        self.exhausted = False

    def open(self) -> None:
        context = TaskContext(
            self.spec.name,
            self.task_index,
            self.spec.parallelism,
            clock=lambda: self.cluster.sim.now,
        )
        self.spout.open(context, self.collector)
        self._schedule_tick(0.0)

    def _schedule_tick(self, delay: float) -> None:
        self.cluster.sim.after(max(0.0, delay), self._tick)

    def _tick(self) -> None:
        config = self.cluster.config
        if (
            config.max_spout_pending is not None
            and self.cluster.acker.pending_count >= config.max_spout_pending
        ):
            # Backpressure: try again after the idle backoff.
            self._schedule_tick(config.idle_backoff)
            return
        delay = self.spout.next_tuple()
        if delay is None:
            if getattr(self.spout, "finished", False):
                self.exhausted = True
                self.cluster.on_spout_exhausted()
                return
            delay = config.idle_backoff
        self._schedule_tick(delay)


class BoltExecutor:
    """Drives one bolt task: FIFO queue, one tuple at a time."""

    def __init__(
        self,
        cluster: "LocalCluster",
        spec: "BoltSpec",
        task_index: int,
        bolt: "Bolt",
    ) -> None:
        self.cluster = cluster
        self.spec = spec
        self.task_index = task_index
        self.bolt = bolt
        self.collector = BoltCollector(cluster, spec, task_index)
        self.queue: deque[StormTuple] = deque()
        self.busy = False
        self.executed = 0
        self.alive = True
        #: bumped on every crash so in-flight finish timers from a dead
        #: incarnation are recognized and dropped
        self._incarnation = 0
        self._current: StormTuple | None = None
        #: set by the cluster when slow-node faults target this task
        self.fault_injector = None

    def prepare(self) -> None:
        context = TaskContext(
            self.spec.name,
            self.task_index,
            self.spec.parallelism,
            clock=lambda: self.cluster.sim.now,
        )
        self.bolt.prepare(context, self.collector)

    @property
    def queue_depth(self) -> int:
        """Tuples waiting (not counting the one in service)."""
        return len(self.queue)

    def enqueue(self, tup: StormTuple) -> None:
        """A tuple arrived on this task's input."""
        if not self.alive:
            # The task is down: the tuple is lost, its tree fails and the
            # spout replays (or gives up on) it — Storm's at-least-once
            # contract under worker crashes.
            self.cluster.fail_tuple(tup)
            return
        self.queue.append(tup)
        if not self.busy:
            self._start_next()

    def _start_next(self) -> None:
        tup = self.queue.popleft()
        self.busy = True
        self._current = tup
        duration = self.bolt.work_time(tup)
        if duration < 0:
            raise ValueError(
                f"bolt {self.spec.name!r} returned negative work_time {duration}"
            )
        if self.fault_injector is not None:
            duration *= self.fault_injector.execution_factor(
                self.task_index, self.cluster.sim.now
            )
        incarnation = self._incarnation
        self.cluster.sim.after(
            duration, lambda: self._finish(tup, duration, incarnation)
        )

    def _finish(self, tup: StormTuple, duration: float, incarnation: int = 0) -> None:
        if incarnation != self._incarnation:
            return  # timer from a crashed incarnation; the tuple is gone
        self._current = None
        self.executed += 1
        self.bolt.execute(tup)
        # Basic-bolt convenience: auto-ack inputs the bolt didn't handle.
        if self.cluster.config.auto_ack and not self.collector.was_handled(tup):
            self.collector.ack(tup)
        self.cluster.report_execution(self.spec, self.task_index, tup, duration)
        if self.queue:
            self._start_next()
        else:
            self.busy = False

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def crash(self) -> list[StormTuple]:
        """Kill this task; returns the tuples it loses.

        The queue and the in-service tuple vanish with the process; the
        caller (the cluster) fails their trees through the acker so the
        spouts learn about the loss.
        """
        self.alive = False
        self._incarnation += 1
        lost = list(self.queue)
        self.queue.clear()
        if self.busy and self._current is not None:
            lost.append(self._current)
        self._current = None
        self.busy = False
        return lost

    def restart(self) -> None:
        """Bring the task back up (empty queue, fresh incarnation)."""
        self.alive = True
        if self.queue and not self.busy:
            self._start_next()
