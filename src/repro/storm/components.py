"""Reusable spouts and bolts for the paper's experiments.

- :class:`StreamSpout` replays a materialized
  :class:`~repro.workloads.synthetic.Stream` at its recorded arrival
  times, using the stream index as the message id;
- :class:`WorkBolt` executes tuples for their content-driven duration,
  optionally scaled by a per-task
  :class:`~repro.workloads.nonstationary.LoadShiftScenario` multiplier —
  the stand-in for the busy-waiting bolts of the paper's prototype
  (Section V-C).
"""

from __future__ import annotations

import numpy as np

from repro.storm.executor import BoltCollector, SpoutCollector, TaskContext
from repro.storm.topology import Bolt, Spout
from repro.storm.tuples import StormTuple
from repro.workloads.nonstationary import LoadShiftScenario
from repro.workloads.synthetic import Stream


class StreamSpout(Spout):
    """Replays a stream; message id = stream index."""

    def __init__(self, stream: Stream, anchored: bool = True) -> None:
        self._stream = stream
        self._anchored = anchored
        self._next = 0
        self._collector: SpoutCollector | None = None
        self._context: TaskContext | None = None
        self.acked: int = 0
        self.failed: int = 0

    def open(self, context: TaskContext, collector: SpoutCollector) -> None:
        if context.parallelism != 1:
            raise ValueError("StreamSpout must run with parallelism 1")
        self._context = context
        self._collector = collector
        self._clock = context.clock

    @property
    def finished(self) -> bool:
        """Whether every tuple has been emitted."""
        return self._next >= self._stream.m

    def next_tuple(self) -> float | None:
        """Emit the next tuple if its arrival time has come."""
        assert self._collector is not None
        if self.finished:
            return None
        now = self._clock()
        due = float(self._stream.arrivals[self._next])
        if now < due:
            # called early (e.g. right after backpressure cleared)
            return due - now
        index = self._next
        self._next += 1
        self._collector.emit(
            [int(self._stream.items[index]), index],
            msg_id=index if self._anchored else None,
        )
        if self.finished:
            return None
        # delay until the next arrival; 0 when already overdue
        return max(0.0, float(self._stream.arrivals[self._next]) - now)

    def ack(self, msg_id) -> None:
        self.acked += 1

    def fail(self, msg_id) -> None:
        self.failed += 1


#: output fields of :class:`StreamSpout`
STREAM_SPOUT_FIELDS = ("value", "index")


class ShardedStreamSpout(Spout):
    """Replays every ``sources``-th tuple of a stream, starting at ``shard``.

    The multi-source deployment splits one logical stream over ``s``
    upstream executors fed round-robin by the ingest layer: spout ``i``
    emits tuples ``i, i+s, i+2s, ...`` at their original arrival times.
    Message ids and the ``index`` field keep the *global* stream
    positions, so ack tracking and load-shift scenarios see the same
    identifiers as a single-spout replay of the full stream.
    """

    def __init__(
        self, stream: Stream, shard: int, sources: int, anchored: bool = True
    ) -> None:
        if sources < 1:
            raise ValueError(f"sources must be >= 1, got {sources}")
        if not 0 <= shard < sources:
            raise ValueError(f"shard must be in [0, {sources}), got {shard}")
        self._stream = stream
        self._indices = np.arange(shard, stream.m, sources)
        self._anchored = anchored
        self._next = 0
        self._collector: SpoutCollector | None = None
        self.acked: int = 0
        self.failed: int = 0

    def open(self, context: TaskContext, collector: SpoutCollector) -> None:
        if context.parallelism != 1:
            raise ValueError("ShardedStreamSpout must run with parallelism 1")
        self._collector = collector
        self._clock = context.clock

    @property
    def finished(self) -> bool:
        """Whether every tuple of this shard has been emitted."""
        return self._next >= len(self._indices)

    def next_tuple(self) -> float | None:
        """Emit the shard's next tuple if its arrival time has come."""
        assert self._collector is not None
        if self.finished:
            return None
        now = self._clock()
        index = int(self._indices[self._next])
        due = float(self._stream.arrivals[index])
        if now < due:
            return due - now
        self._next += 1
        self._collector.emit(
            [int(self._stream.items[index]), index],
            msg_id=index if self._anchored else None,
        )
        if self.finished:
            return None
        upcoming = int(self._indices[self._next])
        return max(0.0, float(self._stream.arrivals[upcoming]) - now)

    def ack(self, msg_id) -> None:
        self.acked += 1

    def fail(self, msg_id) -> None:
        self.failed += 1


class WorkBolt(Bolt):
    """Busy-works for the tuple's content-driven duration.

    Parameters
    ----------
    time_table:
        ``item -> nominal execution time`` lookup (milliseconds).
    scenario:
        Optional per-task multiplier schedule; the multiplier is indexed
        by the tuple's stream position (field ``index``), exactly like
        Figure 10/11's setup.
    """

    def __init__(
        self,
        time_table: np.ndarray,
        scenario: LoadShiftScenario | None = None,
    ) -> None:
        self._time_table = np.asarray(time_table, dtype=np.float64)
        self._scenario = scenario
        self._context: TaskContext | None = None
        self._collector: BoltCollector | None = None

    def prepare(self, context: TaskContext, collector: BoltCollector) -> None:
        self._context = context
        self._collector = collector

    def work_time(self, tup: StormTuple) -> float:
        assert self._context is not None
        item = int(tup.value("value"))
        base = float(self._time_table[item])
        if self._scenario is None:
            return base
        position = int(tup.value("index"))
        return base * self._scenario.multiplier(self._context.task_index, position)

    def execute(self, tup: StormTuple) -> None:
        # Terminal operator: nothing to emit; auto-ack completes the tree.
        pass


class ForwardingBolt(Bolt):
    """Forwards its input downstream, anchored (for multi-stage tests)."""

    def prepare(self, context: TaskContext, collector: BoltCollector) -> None:
        self._collector = collector

    def execute(self, tup: StormTuple) -> None:
        self._collector.emit(list(tup.values), anchors=[tup])


class FailingBolt(Bolt):
    """Fails every ``failure_period``-th tuple (failure-injection tests)."""

    def __init__(self, failure_period: int = 2) -> None:
        if failure_period < 1:
            raise ValueError("failure_period must be >= 1")
        self._period = failure_period
        self._count = 0

    def prepare(self, context: TaskContext, collector: BoltCollector) -> None:
        self._collector = collector

    def execute(self, tup: StormTuple) -> None:
        self._count += 1
        if self._count % self._period == 0:
            self._collector.fail(tup)
        else:
            self._collector.ack(tup)
