"""POSG as a Storm ``CustomStreamGrouping`` (the paper's prototype).

Figure 1's deployment: the grouping runs inside the upstream component's
output path (our scheduler-side FSM); every downstream bolt task hosts an
:class:`~repro.core.instance.InstanceTracker` (the instance-side FSM)
whose control messages travel back to the grouping over the cluster's
control plane with latency.

The piggy-backing of sync requests (Figure 1.D) uses the tuple's
``sync_request`` slot: :meth:`choose_tasks` stores the request on the
prototype tuple and the cluster attaches it to the chosen task's copy.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import POSGConfig
from repro.core.grouping import POSGGrouping
from repro.core.scheduler import POSGScheduler, SchedulerState
from repro.storm.grouping import CustomStreamGrouping
from repro.storm.tuples import StormTuple
from repro.telemetry.audit import AuditConfig, EstimatorAudit
from repro.telemetry.flightrecorder import FlightRecorder, FlightRecorderConfig
from repro.telemetry.lineage import LineageConfig, LineageTracer
from repro.telemetry.recorder import NULL_RECORDER


class POSGShuffleGrouping(CustomStreamGrouping):
    """Drop-in replacement for Storm's shuffle grouping.

    Parameters
    ----------
    item_field:
        Name of the tuple field carrying the attribute value that drives
        the execution time (the paper's single "fixed and known attribute").
    config:
        POSG parameters; paper defaults when omitted.
    rng:
        Seeds the shared hash functions.
    telemetry:
        Optional :class:`~repro.telemetry.recorder.TelemetryRecorder`;
        forwarded to the scheduler- and instance-side FSMs so their
        transitions land in the same registry/tracer as the cluster's.
    audit:
        Optional :class:`~repro.telemetry.audit.AuditConfig` (or a
        pre-built :class:`~repro.telemetry.audit.EstimatorAudit`)
        sampling executed tuples as the cluster reports them: every
        N-th execution report compares the scheduler's current W/F
        estimate against the measured duration.  Unlike the simulator's
        hook (which samples in *routing* order), reports arrive in
        completion order, so the sample index counts executions.  The
        auditor binds to the scheduler in :meth:`prepare` and is
        exposed as :attr:`audit`.
    flight:
        Optional :class:`~repro.telemetry.flightrecorder.FlightRecorderConfig`
        (or pre-built recorder): captures the scheduler's causal event
        timeline and samples every N-th routed tuple's decision with its
        believed loads.  Binds in :meth:`prepare`, exposed as
        :attr:`flight`; the route-sample index counts tuples routed by
        this grouping.
    lineage:
        Optional :class:`~repro.telemetry.lineage.LineageConfig` (or
        pre-built :class:`~repro.telemetry.lineage.LineageTracer`):
        every N-th routed tuple opens a span (route clock, believed
        loads) that the matching execution report closes (service time,
        pre-fold window counter).  Tuples execute FIFO per task, so the
        open span and the report are matched by per-task sequence
        numbers; a crash clears that task's open spans (its queue may
        be dropped or replayed).  Binds in :meth:`prepare`, exposed as
        :attr:`lineage`; the sample index counts routed tuples.
    clock:
        Zero-argument callable returning the current virtual time
        (pass ``lambda: cluster.sim.now``).  Stamps span arrival and
        finish clocks; without it spans carry a zero arrival and the
        reported duration as the finish, so only ``service_time`` is
        meaningful.  The Storm control plane reports executions without
        per-tuple enqueue clocks, so ``scheduling_delay`` is always 0
        here (the simulator engines decompose all three components).
    """

    def __init__(
        self,
        item_field: str = "value",
        config: POSGConfig | None = None,
        rng: np.random.Generator | None = None,
        telemetry=None,
        audit: "AuditConfig | EstimatorAudit | None" = None,
        flight: "FlightRecorderConfig | FlightRecorder | None" = None,
        lineage: "LineageConfig | LineageTracer | None" = None,
        clock=None,
    ) -> None:
        self._item_field = item_field
        self._policy = POSGGrouping(config, telemetry=telemetry)
        self._rng = rng
        self._agents: dict[int, object] = {}
        self._telemetry = telemetry if telemetry is not None else NULL_RECORDER
        if audit is not None and not isinstance(
            audit, (AuditConfig, EstimatorAudit)
        ):
            raise TypeError(
                f"audit must be an AuditConfig or EstimatorAudit, got {audit!r}"
            )
        self._audit_spec = audit
        self._auditor: EstimatorAudit | None = None
        self._executed = 0
        if flight is not None and not isinstance(
            flight, (FlightRecorderConfig, FlightRecorder)
        ):
            raise TypeError(
                "flight must be a FlightRecorderConfig or FlightRecorder, "
                f"got {flight!r}"
            )
        self._flight_spec = flight
        self._flight: FlightRecorder | None = None
        self._flight_every = 0
        self._routed = 0
        if lineage is not None and not isinstance(
            lineage, (LineageConfig, LineageTracer)
        ):
            raise TypeError(
                "lineage must be a LineageConfig or LineageTracer, "
                f"got {lineage!r}"
            )
        self._lineage_spec = lineage
        self._lineage: LineageTracer | None = None
        self._lineage_every = 0
        self._clock = clock
        self._lin_routed = 0
        #: per task: tuples routed there / execution reports seen there
        self._lin_route_seq: dict[int, int] = {}
        self._lin_exec_seq: dict[int, int] = {}
        #: per task: open spans awaiting their execution report, FIFO of
        #: ``(task_seq, sample_index, believed, arrival)``
        self._lin_pending: dict[int, list] = {}

    def prepare(self, source: str, target_tasks: list[int]) -> None:
        super().prepare(source, target_tasks)
        self._policy.setup(len(target_tasks), self._rng)
        self._agents = {
            position: self._policy.create_instance_agent(position)
            for position in range(len(target_tasks))
        }
        if isinstance(self._audit_spec, EstimatorAudit):
            self._auditor = self._audit_spec
        elif self._audit_spec is not None:
            self._auditor = EstimatorAudit(
                self._policy.scheduler,
                self._audit_spec,
                telemetry=self._telemetry,
            )
        if isinstance(self._flight_spec, FlightRecorder):
            self._flight = self._flight_spec
        elif self._flight_spec is not None:
            self._flight = FlightRecorder(
                self._flight_spec, telemetry=self._telemetry
            )
        if self._flight is not None:
            self._policy.attach_flight(self._flight)
            self._flight_every = self._flight.sample_every
        if isinstance(self._lineage_spec, LineageTracer):
            self._lineage = self._lineage_spec
        elif self._lineage_spec is not None:
            self._lineage = LineageTracer(
                self._lineage_spec, telemetry=self._telemetry
            )
        if self._lineage is not None:
            self._policy.attach_lineage(self._lineage)
            self._lineage_every = self._lineage.sample_every

    def choose_tasks(self, tup: StormTuple) -> list[int]:
        item = int(tup.value(self._item_field))
        decision = self._policy.route(item)
        tup.sync_request = decision.sync_request
        if self._flight is not None:
            index = self._routed
            if index % self._flight_every == 0:
                self._policy.record_flight_route(
                    self._flight, index, decision.instance
                )
            self._routed = index + 1
        if self._lineage is not None:
            index = self._lin_routed
            position = decision.instance
            seq = self._lin_route_seq.get(position, 0)
            if index % self._lineage_every == 0:
                self._lin_pending.setdefault(position, []).append((
                    seq,
                    index,
                    self._policy.scheduler._c_hat.tolist(),
                    self._clock() if self._clock is not None else 0.0,
                ))
            self._lin_route_seq[position] = seq + 1
            self._lin_routed = index + 1
        return [self._target_tasks[decision.instance]]

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def wants_execution_reports(self) -> bool:
        return True

    def on_execution(self, task: int, tup: StormTuple, duration: float) -> list:
        item = int(tup.value(self._item_field))
        auditor = self._auditor
        if auditor is not None:
            index = self._executed
            if index % auditor.sample_every == 0:
                # Before the agent folds the report: the scheduler-side
                # matrices only change on control delivery, so this reads
                # the estimate the grouping is currently routing with.
                auditor.observe(index, item, task, duration)
            self._executed = index + 1
        agent = self._agents[task]
        if self._lineage is not None:
            seq = self._lin_exec_seq.get(task, 0)
            self._lin_exec_seq[task] = seq + 1
            queue = self._lin_pending.get(task)
            # Drop spans whose tuple was lost before executing (crash
            # or replay desync), then close the one matching this
            # report.  The window counter is read before the fold below.
            while queue and queue[0][0] < seq:
                queue.pop(0)
            if queue and queue[0][0] == seq:
                _, index, believed, arrival = queue.pop(0)
                finish = (
                    self._clock()
                    if self._clock is not None
                    else arrival + duration
                )
                self._lineage.record_sample(
                    0, index, task, believed, arrival, arrival,
                    finish - duration, finish,
                    agent.tracker.window_remaining,
                )
        return agent.on_executed(item, duration, tup.sync_request)

    def on_control(self, message) -> None:
        self._policy.on_control(message)

    def on_instance_crash(self, task: int) -> None:
        """Wipe the crashed task's instance-side state (new generation)."""
        agent = self._agents.get(task)
        if agent is not None:
            agent.tracker.restart()
        # Open spans routed to the crashed task may never execute (its
        # queue restarts); drop them rather than mis-close later spans.
        self._lin_pending.pop(task, None)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def scheduler(self) -> POSGScheduler:
        """The scheduler-side FSM."""
        return self._policy.scheduler

    @property
    def state(self) -> SchedulerState:
        """Scheduler FSM state."""
        return self._policy.state

    @property
    def policy(self) -> POSGGrouping:
        """The underlying engine-agnostic policy."""
        return self._policy

    @property
    def audit(self) -> EstimatorAudit | None:
        """The estimator audit, once :meth:`prepare` has bound it."""
        return self._auditor

    @property
    def flight(self) -> FlightRecorder | None:
        """The flight recorder, once :meth:`prepare` has bound it."""
        return self._flight

    @property
    def lineage(self) -> LineageTracer | None:
        """The lineage tracer, once :meth:`prepare` has bound it."""
        return self._lineage
