"""The local cluster: wiring, routing, reliability, lifecycle.

:class:`LocalCluster` plays the role of Storm's LocalCluster plus the
pieces of nimbus/worker plumbing the experiments need: it instantiates
one executor per task, binds groupings, routes emissions with a transfer
latency, runs the acker (timeouts, ``max.spout.pending``), dispatches
POSG execution reports and control messages with a control-plane
latency, and collects :class:`~repro.storm.metrics.TopologyMetrics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.faults.injector import FaultInjector
from repro.faults.plan import CrashFault, FaultPlan
from repro.simulator.engine import Simulation
from repro.storm.acker import AckTracker
from repro.storm.executor import BoltExecutor, SpoutExecutor
from repro.storm.grouping import CustomStreamGrouping, StreamGrouping
from repro.storm.metrics import TopologyMetrics
from repro.storm.topology import BoltSpec, SpoutSpec, Topology
from repro.storm.tuples import StormTuple, Values
from repro.telemetry.recorder import NULL_RECORDER


@dataclass(frozen=True)
class ClusterConfig:
    """Runtime knobs (defaults mirror Storm's where they exist).

    Times are virtual milliseconds.
    """

    #: topology.message.timeout.secs — Storm defaults to 30 s
    message_timeout: float = 30_000.0
    #: topology.max.spout.pending — None disables backpressure
    max_spout_pending: int | None = None
    #: network hop for data tuples between tasks
    transfer_latency: float = 0.0
    #: network hop for control messages (POSG matrices / sync / acks)
    control_latency: float = 1.0
    #: delay before re-polling an idle or backpressured spout
    idle_backoff: float = 1.0
    #: auto-ack inputs that the bolt did not ack/fail itself
    auto_ack: bool = True
    #: how often the acker sweeps for timed-out trees
    timeout_sweep_interval: float = 1_000.0
    #: seed for ack-id generation
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.message_timeout <= 0:
            raise ValueError("message_timeout must be > 0")
        if self.max_spout_pending is not None and self.max_spout_pending < 1:
            raise ValueError("max_spout_pending must be >= 1 or None")
        if self.transfer_latency < 0 or self.control_latency < 0:
            raise ValueError("latencies must be >= 0")
        if self.idle_backoff <= 0:
            raise ValueError("idle_backoff must be > 0")
        if self.timeout_sweep_interval <= 0:
            raise ValueError("timeout_sweep_interval must be > 0")


class LocalCluster:
    """Runs one topology to completion on virtual time.

    Parameters
    ----------
    config:
        Runtime knobs; defaults when omitted.
    telemetry:
        Optional :class:`~repro.telemetry.recorder.TelemetryRecorder`.
    rng:
        Generator for the cluster's randomness (ack-id draws).  Falls
        back to ``default_rng(config.seed)``, so either a shared
        generator or a config seed makes runs reproducible end to end.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan` (or pre-built
        injector).  Scripted crashes/slowdowns target ``fault_bolt``;
        message faults apply to the POSG control messages the cluster
        dispatches.  An inactive plan changes nothing.
    fault_bolt:
        Name of the bolt whose tasks scripted faults target; may be
        omitted when the topology has exactly one bolt.
    """

    def __init__(
        self,
        config: ClusterConfig | None = None,
        telemetry=None,
        rng: np.random.Generator | None = None,
        faults: "FaultPlan | FaultInjector | None" = None,
        fault_bolt: str | None = None,
    ) -> None:
        self.config = config if config is not None else ClusterConfig()
        self.sim = Simulation()
        self.metrics = TopologyMetrics()
        self.telemetry = telemetry if telemetry is not None else NULL_RECORDER
        if self.telemetry.enabled:
            self.telemetry.registry.register_collector(self.metrics.samples)
        self.acker = AckTracker(
            self.config.message_timeout,
            rng=rng if rng is not None else np.random.default_rng(self.config.seed),
        )
        if isinstance(faults, FaultInjector):
            self._injector = faults if faults.active else None
        elif isinstance(faults, FaultPlan):
            self._injector = (
                FaultInjector(faults, telemetry=self.telemetry)
                if faults.active
                else None
            )
        elif faults is None:
            self._injector = None
        else:
            raise TypeError(
                f"faults must be a FaultPlan or FaultInjector, got {faults!r}"
            )
        self._fault_bolt = fault_bolt
        self._topology: Topology | None = None
        self._spout_executors: list[SpoutExecutor] = []
        self._bolt_executors: dict[str, list[BoltExecutor]] = {}
        #: groupings wanting execution reports, per bolt name
        self._reporting_groupings: dict[str, list[CustomStreamGrouping]] = {}
        self._msg_roots: dict[Any, SpoutExecutor] = {}
        self._sweep_scheduled = False
        self._submitted = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def submit(self, topology: Topology) -> None:
        """Instantiate tasks, bind groupings, open components."""
        if self._submitted:
            raise RuntimeError("cluster already has a topology")
        self._submitted = True
        self._topology = topology

        for bolt_spec in topology.bolts.values():
            executors = [
                BoltExecutor(self, bolt_spec, index, bolt_spec.factory())
                for index in range(bolt_spec.parallelism)
            ]
            self._bolt_executors[bolt_spec.name] = executors
            for executor in executors:
                executor.prepare()

        for bolt_spec in topology.bolts.values():
            for subscription in bolt_spec.subscriptions:
                grouping = subscription.grouping
                grouping.prepare(
                    subscription.source, list(range(bolt_spec.parallelism))
                )
                if (
                    isinstance(grouping, CustomStreamGrouping)
                    and grouping.wants_execution_reports()
                ):
                    self._reporting_groupings.setdefault(
                        bolt_spec.name, []
                    ).append(grouping)

        for spout_spec in topology.spouts.values():
            for index in range(spout_spec.parallelism):
                executor = SpoutExecutor(
                    self, spout_spec, index, spout_spec.factory()
                )
                self._spout_executors.append(executor)
                executor.open()

        if self._injector is not None:
            self._arm_faults()

    def _arm_faults(self) -> None:
        """Schedule scripted faults against the target bolt's tasks."""
        injector = self._injector
        name = self._fault_bolt
        if name is None:
            if len(self._bolt_executors) != 1:
                raise ValueError(
                    "fault_bolt must name the target bolt when the topology "
                    f"has {len(self._bolt_executors)} bolts"
                )
            name = next(iter(self._bolt_executors))
        elif name not in self._bolt_executors:
            raise ValueError(f"fault_bolt {name!r} is not a bolt in the topology")
        self._fault_bolt = name
        executors = self._bolt_executors[name]
        for event in (*injector.crashes, *injector.plan.slowdowns):
            if event.instance >= len(executors):
                raise ValueError(
                    f"scripted fault targets task {event.instance} but bolt "
                    f"{name!r} has parallelism {len(executors)}"
                )
        if injector.plan.slowdowns:
            for executor in executors:
                executor.fault_injector = injector
        for crash in injector.crashes:
            self.sim.after(
                crash.at_ms, (lambda c: lambda: self._fire_crash(c))(crash)
            )

    def _fire_crash(self, crash: CrashFault) -> None:
        """Crash one bolt task: fail its tuples, notify groupings."""
        executors = self._bolt_executors[self._fault_bolt]
        executor = executors[crash.instance]
        lost = executor.crash()
        self._injector.note_crash(crash.instance, self.sim.now)
        for tup in lost:
            self.fail_tuple(tup)
        bolt_spec = self._topology.bolts[self._fault_bolt]
        for subscription in bolt_spec.subscriptions:
            grouping = subscription.grouping
            if isinstance(grouping, CustomStreamGrouping):
                grouping.on_instance_crash(crash.instance)
        self.sim.after(
            crash.outage_ms,
            (lambda ex, i: lambda: self._finish_restart(ex, i))(
                executor, crash.instance
            ),
        )

    def _finish_restart(self, executor: BoltExecutor, instance: int) -> None:
        executor.restart()
        self._injector.note_restart(instance, self.sim.now)

    def run(self, until: float | None = None) -> float:
        """Drain the event loop; returns the final virtual time."""
        if not self._submitted:
            raise RuntimeError("submit a topology before running")
        final = self.sim.run(until=until)
        self.shutdown()
        return final

    def shutdown(self) -> None:
        """Close every component (idempotent)."""
        topology = self._topology
        if topology is None:
            return
        for executor in self._spout_executors:
            executor.spout.close()
        for executors in self._bolt_executors.values():
            for executor in executors:
                executor.bolt.cleanup()

    def on_spout_exhausted(self) -> None:
        """A spout signalled it will never emit again (no-op hook)."""

    # ------------------------------------------------------------------
    # emission and routing
    # ------------------------------------------------------------------
    def spout_emit(
        self, spec: SpoutSpec, task_index: int, values: Values, msg_id: Any
    ) -> None:
        """Route one spout emission to every subscriber."""
        assert self._topology is not None
        root_id = None
        if msg_id is not None:
            root_ack = self.acker.fresh_ack_id()
            self.acker.register_root(msg_id, root_ack, self.sim.now)
            self._msg_roots[msg_id] = self._find_spout_executor(spec, task_index)
            self.metrics.record_emit()
            self._ensure_sweep()
            root_id = msg_id
            # the root edge is acked once the first hop's edges exist; we
            # model the spout's own edge as immediately acked after fan-out
        proto = StormTuple(
            values=values,
            fields=spec.output_fields,
            source_component=spec.name,
            source_task=task_index,
            root_id=root_id,
        )
        self._route(proto)
        if msg_id is not None:
            # complete the root edge (the fan-out registered child edges)
            result = self.acker.ack(msg_id, root_ack)
            if result is not None:
                # degenerate: no subscriber -> the tree completes instantly
                _, emitted_at = result
                self.metrics.record_completion(msg_id, self.sim.now - emitted_at)
                self._notify_spout(msg_id, failed=False)

    def bolt_emit(
        self,
        spec: BoltSpec,
        task_index: int,
        values: Values,
        anchors: list[StormTuple],
    ) -> None:
        """Route one bolt emission, inheriting anchors."""
        root_id = None
        for anchor in anchors:
            if anchor.root_id is not None:
                root_id = anchor.root_id  # single-root model (see DESIGN.md)
                break
        proto = StormTuple(
            values=values,
            fields=spec.output_fields,
            source_component=spec.name,
            source_task=task_index,
            root_id=root_id,
        )
        self._route(proto)

    def _route(self, proto: StormTuple) -> None:
        assert self._topology is not None
        for bolt_spec, grouping in self._topology.downstream_of(
            proto.source_component
        ):
            proto.sync_request = None
            tasks = grouping.choose_tasks(proto)
            sync_request = proto.sync_request  # set by POSG-style groupings
            if (
                sync_request is not None
                and self._injector is not None
                and self._injector.drop_request(sync_request)
            ):
                # The piggy-backed request is lost on the wire; the data
                # tuple itself still arrives.  Its bits were spent, so the
                # control-overhead accounting still counts the send.
                self.metrics.record_control_message(sync_request.size_bits())
                sync_request = None
            for position, task in enumerate(tasks):
                if not 0 <= task < bolt_spec.parallelism:
                    raise ValueError(
                        f"grouping chose invalid task {task} for bolt "
                        f"{bolt_spec.name!r}"
                    )
                edge = StormTuple(
                    values=list(proto.values),
                    fields=proto.fields,
                    source_component=proto.source_component,
                    source_task=proto.source_task,
                    root_id=proto.root_id,
                    sync_request=sync_request if position == 0 else None,
                )
                if edge.root_id is not None:
                    edge.ack_id = self.acker.fresh_ack_id()
                    self.acker.register_edge(edge.root_id, edge.ack_id)
                if sync_request is not None and position == 0:
                    self.metrics.record_control_message(sync_request.size_bits())
                executor = self._bolt_executors[bolt_spec.name][task]
                self.sim.after(
                    self.config.transfer_latency,
                    (lambda ex, tup: lambda: ex.enqueue(tup))(executor, edge),
                )
        proto.sync_request = None

    # ------------------------------------------------------------------
    # reliability
    # ------------------------------------------------------------------
    def ack_tuple(self, tup: StormTuple) -> None:
        """A bolt acked one of its inputs."""
        if tup.root_id is None:
            return
        result = self.acker.ack(tup.root_id, tup.ack_id)
        if result is not None:
            _, emitted_at = result
            self.metrics.record_completion(tup.root_id, self.sim.now - emitted_at)
            self._notify_spout(tup.root_id, failed=False)

    def fail_tuple(self, tup: StormTuple) -> None:
        """A bolt failed one of its inputs: fail the whole tree."""
        if tup.root_id is None:
            return
        if self.acker.fail(tup.root_id):
            self.metrics.record_failure(tup.root_id)
            self._notify_spout(tup.root_id, failed=True)

    def _notify_spout(self, msg_id: Any, failed: bool) -> None:
        executor = self._msg_roots.pop(msg_id, None)
        if executor is None:
            return
        callback = executor.spout.fail if failed else executor.spout.ack
        self.sim.after(self.config.control_latency, lambda: callback(msg_id))

    def _find_spout_executor(
        self, spec: SpoutSpec, task_index: int
    ) -> SpoutExecutor:
        for executor in self._spout_executors:
            if executor.spec is spec and executor.task_index == task_index:
                return executor
        raise KeyError(f"no executor for spout {spec.name!r} task {task_index}")

    # ------------------------------------------------------------------
    # timeouts
    # ------------------------------------------------------------------
    def _ensure_sweep(self) -> None:
        if not self._sweep_scheduled:
            self._sweep_scheduled = True
            self.sim.after(self.config.timeout_sweep_interval, self._sweep)

    def _sweep(self) -> None:
        self._sweep_scheduled = False
        for msg_id in self.acker.expire(self.sim.now):
            self.metrics.record_timeout(msg_id)
            self._notify_spout(msg_id, failed=True)
        if self.acker.pending_count > 0 or not self._all_spouts_exhausted():
            self._ensure_sweep()

    def _all_spouts_exhausted(self) -> bool:
        return all(executor.exhausted for executor in self._spout_executors)

    # ------------------------------------------------------------------
    # POSG execution reports
    # ------------------------------------------------------------------
    def report_execution(
        self, spec: BoltSpec, task_index: int, tup: StormTuple, duration: float
    ) -> None:
        """A bolt task executed a tuple; notify reporting groupings."""
        self.metrics.record_execution(spec.name, task_index)
        for grouping in self._reporting_groupings.get(spec.name, ()):
            messages = grouping.on_execution(task_index, tup, duration)
            for message in messages:
                size_bits = getattr(message, "size_bits", None)
                self.metrics.record_control_message(
                    size_bits() if size_bits is not None else 0
                )
                if self._injector is not None:
                    delays = self._injector.deliver_times(
                        message, self.config.control_latency
                    )
                else:
                    delays = (self.config.control_latency,)
                for delay in delays:
                    self.sim.after(
                        delay,
                        (lambda g, msg: lambda: g.on_control(msg))(
                            grouping, message
                        ),
                    )
