"""A miniature Apache-Storm-like stream processing engine.

The paper evaluates a POSG prototype "implemented as a custom grouping
function within the Apache Storm framework" on an Azure cluster (Section
V-C).  Storm and the cluster are unavailable here, so this package
implements the relevant slice of Storm's execution model from scratch,
running on the virtual-time event engine of :mod:`repro.simulator`:

- **topologies** of spouts and bolts with per-component parallelism
  (:mod:`~repro.storm.topology`);
- **stream groupings** — Storm's stock shuffle grouping (round-robin,
  called *ASSG* in the paper), fields/global/all groupings, and the
  ``CustomStreamGrouping`` extension point POSG plugs into
  (:mod:`~repro.storm.grouping`, :mod:`~repro.storm.posg_grouping`);
- **reliability**: XOR-based ack tracking, per-tuple timeouts and
  ``max.spout.pending`` backpressure (:mod:`~repro.storm.acker`), which
  produce the tuple-timeout behaviour Figures 11/12 report for ASSG;
- a **local cluster** driver (:mod:`~repro.storm.cluster`).

Virtual time substitutes for wall-clock time: bolts declare the simulated
work a tuple costs (``work_time``), standing in for the busy-waiting the
paper's prototype used.
"""

from repro.storm.tuples import StormTuple, Values
from repro.storm.topology import (
    Bolt,
    BoltSpec,
    Spout,
    SpoutSpec,
    TopologyBuilder,
    Topology,
)
from repro.storm.grouping import (
    AllGrouping,
    CustomStreamGrouping,
    FieldsGrouping,
    GlobalGrouping,
    ShuffleGrouping,
    StreamGrouping,
)
from repro.storm.acker import AckTracker
from repro.storm.cluster import ClusterConfig, LocalCluster
from repro.storm.metrics import TopologyMetrics
from repro.storm.posg_grouping import POSGShuffleGrouping
from repro.storm.multisource import MultiSourcePOSGCoordinator

__all__ = [
    "StormTuple",
    "Values",
    "Spout",
    "Bolt",
    "SpoutSpec",
    "BoltSpec",
    "TopologyBuilder",
    "Topology",
    "StreamGrouping",
    "ShuffleGrouping",
    "FieldsGrouping",
    "GlobalGrouping",
    "AllGrouping",
    "CustomStreamGrouping",
    "AckTracker",
    "ClusterConfig",
    "LocalCluster",
    "TopologyMetrics",
    "POSGShuffleGrouping",
    "MultiSourcePOSGCoordinator",
]
