"""Multi-source POSG on the Storm layer: ``s`` upstream executors.

The simulator's :class:`~repro.core.multisource.MultiSourcePOSGGrouping`
interleaves the sub-streams itself; on the Storm layer the sharding is
*physical* — the topology has ``s`` spouts (or ``s`` tasks of one
upstream component), and each spout's subscription to the worker bolt
carries its own grouping object running its own scheduler FSM.  The
:class:`MultiSourcePOSGCoordinator` builds those per-shard groupings
around one shared core so the deployment matches the model:

- one scheduler per shard (``coordinator.shard(i)`` for spout ``i``);
- **one** instance agent per bolt task, shared by all shards — the
  tracker measures the task's total execution time across every source,
  which is what makes ``Delta_op`` a global re-baselining signal;
- matrices broadcast to every shard, sync replies route back to the
  shard whose ``source`` tag the request carried (both via the shared
  core's dispatch).

The cluster reports each executed tuple to *every* grouping that wants
execution reports, and a crash notifies every subscription's grouping.
Both must fold exactly once per event, so only the shard-0 grouping
subscribes to reports and handles crash notifications; the control
messages an instance returns therefore re-enter through shard 0 and are
fanned out by the coordinator.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import POSGConfig
from repro.core.multisource import MultiSourcePOSGGrouping
from repro.core.scheduler import POSGScheduler
from repro.storm.grouping import CustomStreamGrouping
from repro.storm.tuples import StormTuple
from repro.telemetry.audit import AuditConfig, EstimatorAudit
from repro.telemetry.flightrecorder import FlightRecorder, FlightRecorderConfig
from repro.telemetry.lineage import LineageConfig, LineageTracer
from repro.telemetry.recorder import NULL_RECORDER


class MultiSourcePOSGCoordinator:
    """Shared state behind the ``s`` per-spout grouping shards.

    Parameters
    ----------
    sources:
        Number of upstream scheduler shards ``s`` (>= 1); the topology
        must attach each of ``coordinator.shard(0..s-1)`` to exactly one
        subscription of the same worker bolt.
    item_field:
        Tuple field carrying the attribute value (as for
        :class:`~repro.storm.posg_grouping.POSGShuffleGrouping`).
    config, rng, telemetry:
        As for the single-source grouping; shared by every shard.
    audit:
        Optional :class:`~repro.telemetry.audit.AuditConfig` (or
        pre-built auditor).  Binds to shard 0's scheduler — the
        matrices broadcast keeps every shard's stored estimates
        numerically identical, so shard 0 speaks for all of them.
    flight:
        Optional :class:`~repro.telemetry.flightrecorder.FlightRecorderConfig`
        (or pre-built recorder): captures every shard scheduler's
        causal event timeline and samples routing decisions across the
        coordinator's combined routed-tuple count.  Unlike the
        simulator (where tuple ``i`` belongs to shard ``i mod s``), the
        physical shards route whatever their spouts emit, so samples
        are recorded under the *actual* routing shard and the sample
        index counts tuples in coordinator routing order.
    lineage:
        Optional :class:`~repro.telemetry.lineage.LineageConfig` (or
        pre-built :class:`~repro.telemetry.lineage.LineageTracer`):
        every N-th routed tuple (coordinator routing order) opens a
        span closed by the matching execution report — see
        :class:`~repro.storm.posg_grouping.POSGShuffleGrouping` for the
        span clock semantics.  Samples record under the shard that
        routed them.
    clock:
        Zero-argument virtual-time callable for span clocks (pass
        ``lambda: cluster.sim.now``); optional.
    """

    def __init__(
        self,
        sources: int = 2,
        item_field: str = "value",
        config: POSGConfig | None = None,
        rng: np.random.Generator | None = None,
        telemetry=None,
        audit: "AuditConfig | EstimatorAudit | None" = None,
        flight: "FlightRecorderConfig | FlightRecorder | None" = None,
        lineage: "LineageConfig | LineageTracer | None" = None,
        clock=None,
    ) -> None:
        self._core = MultiSourcePOSGGrouping(
            sources, config, telemetry=telemetry
        )
        self._item_field = item_field
        self._rng = rng
        self._telemetry = telemetry if telemetry is not None else NULL_RECORDER
        if audit is not None and not isinstance(
            audit, (AuditConfig, EstimatorAudit)
        ):
            raise TypeError(
                f"audit must be an AuditConfig or EstimatorAudit, got {audit!r}"
            )
        self._audit_spec = audit
        self._auditor: EstimatorAudit | None = None
        if flight is not None and not isinstance(
            flight, (FlightRecorderConfig, FlightRecorder)
        ):
            raise TypeError(
                "flight must be a FlightRecorderConfig or FlightRecorder, "
                f"got {flight!r}"
            )
        self._flight_spec = flight
        self._flight: FlightRecorder | None = None
        self._flight_every = 0
        self._routed = 0
        if lineage is not None and not isinstance(
            lineage, (LineageConfig, LineageTracer)
        ):
            raise TypeError(
                "lineage must be a LineageConfig or LineageTracer, "
                f"got {lineage!r}"
            )
        self._lineage_spec = lineage
        self._lineage: LineageTracer | None = None
        self._lineage_every = 0
        self._clock = clock
        self._lin_routed = 0
        self._lin_route_seq: dict[int, int] = {}
        self._lin_exec_seq: dict[int, int] = {}
        #: per task: open spans awaiting their execution report, FIFO of
        #: ``(task_seq, shard, sample_index, believed, arrival)``
        self._lin_pending: dict[int, list] = {}
        self._agents: dict[int, object] = {}
        self._executed = 0
        self._shards: dict[int, _ShardGrouping] = {}
        self._bound_tasks: list[int] | None = None

    # ------------------------------------------------------------------
    # topology wiring
    # ------------------------------------------------------------------
    def shard(self, source: int) -> "CustomStreamGrouping":
        """The grouping for upstream shard ``source`` (claim each once)."""
        if not 0 <= source < self._core.sources:
            raise ValueError(
                f"shard must be in [0, {self._core.sources}), got {source}"
            )
        if source in self._shards:
            raise ValueError(f"shard {source} already claimed")
        grouping = _ShardGrouping(self, source)
        self._shards[source] = grouping
        return grouping

    def _bind(self, source: int, target_tasks: list[int]) -> None:
        """First shard to prepare sets up the shared core; rest verify."""
        if self._bound_tasks is None:
            self._bound_tasks = list(target_tasks)
            self._core.setup(len(target_tasks), self._rng)
            self._agents = {
                position: self._core.create_instance_agent(position)
                for position in range(len(target_tasks))
            }
            if isinstance(self._audit_spec, EstimatorAudit):
                self._auditor = self._audit_spec
            elif self._audit_spec is not None:
                self._auditor = EstimatorAudit(
                    self._core.scheduler,
                    self._audit_spec,
                    telemetry=self._telemetry,
                )
            if isinstance(self._flight_spec, FlightRecorder):
                self._flight = self._flight_spec
            elif self._flight_spec is not None:
                self._flight = FlightRecorder(
                    self._flight_spec, telemetry=self._telemetry
                )
            if self._flight is not None:
                self._core.attach_flight(self._flight)
                self._flight_every = self._flight.sample_every
            if isinstance(self._lineage_spec, LineageTracer):
                self._lineage = self._lineage_spec
            elif self._lineage_spec is not None:
                self._lineage = LineageTracer(
                    self._lineage_spec, telemetry=self._telemetry
                )
            if self._lineage is not None:
                self._core.attach_lineage(self._lineage)
                self._lineage_every = self._lineage.sample_every
        elif list(target_tasks) != self._bound_tasks:
            raise ValueError(
                f"shard {source} prepared against tasks {target_tasks}, "
                f"but the coordinator is bound to {self._bound_tasks}; "
                "every shard must subscribe the same worker bolt"
            )

    # ------------------------------------------------------------------
    # shared hooks (called by the shard groupings)
    # ------------------------------------------------------------------
    def _route(self, source: int, item: int):
        decision = self._core.schedulers[source].submit(item)
        if self._flight is not None:
            index = self._routed
            if index % self._flight_every == 0:
                self._flight.record_route(
                    source,
                    index,
                    decision.instance,
                    self._core.schedulers[source]._c_hat.tolist(),
                )
            self._routed = index + 1
        if self._lineage is not None:
            index = self._lin_routed
            position = decision.instance
            seq = self._lin_route_seq.get(position, 0)
            if index % self._lineage_every == 0:
                self._lin_pending.setdefault(position, []).append((
                    seq,
                    source,
                    index,
                    self._core.schedulers[source]._c_hat.tolist(),
                    self._clock() if self._clock is not None else 0.0,
                ))
            self._lin_route_seq[position] = seq + 1
            self._lin_routed = index + 1
        return decision

    def _on_execution(
        self, task: int, tup: StormTuple, duration: float
    ) -> list:
        item = int(tup.value(self._item_field))
        auditor = self._auditor
        if auditor is not None:
            index = self._executed
            if index % auditor.sample_every == 0:
                auditor.observe(index, item, task, duration)
            self._executed = index + 1
        agent = self._agents[task]
        if self._lineage is not None:
            seq = self._lin_exec_seq.get(task, 0)
            self._lin_exec_seq[task] = seq + 1
            queue = self._lin_pending.get(task)
            while queue and queue[0][0] < seq:
                queue.pop(0)
            if queue and queue[0][0] == seq:
                _, shard, index, believed, arrival = queue.pop(0)
                finish = (
                    self._clock()
                    if self._clock is not None
                    else arrival + duration
                )
                self._lineage.record_sample(
                    shard, index, task, believed, arrival, arrival,
                    finish - duration, finish,
                    agent.tracker.window_remaining,
                )
        return agent.on_executed(item, duration, tup.sync_request)

    def on_control(self, message) -> None:
        """Dispatch through the core: broadcast matrices, route replies."""
        self._core.on_control(message)

    def _on_instance_crash(self, task: int) -> None:
        agent = self._agents.get(task)
        if agent is not None:
            agent.tracker.restart()
        self._lin_pending.pop(task, None)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def item_field(self) -> str:
        """The tuple field carrying the attribute value."""
        return self._item_field

    @property
    def sources(self) -> int:
        """Number of upstream scheduler shards ``s``."""
        return self._core.sources

    @property
    def policy(self) -> MultiSourcePOSGGrouping:
        """The shared sharded policy core."""
        return self._core

    @property
    def schedulers(self) -> tuple[POSGScheduler, ...]:
        """Every shard's scheduler, indexed by source id."""
        return self._core.schedulers

    @property
    def scheduler(self) -> POSGScheduler:
        """Shard 0's scheduler (the audit anchor)."""
        return self._core.scheduler

    @property
    def audit(self) -> EstimatorAudit | None:
        """The estimator audit, once the first shard has prepared."""
        return self._auditor

    @property
    def flight(self) -> FlightRecorder | None:
        """The flight recorder, once the first shard has prepared."""
        return self._flight

    @property
    def lineage(self) -> LineageTracer | None:
        """The lineage tracer, once the first shard has prepared."""
        return self._lineage

    def stats(self) -> dict:
        """Merged per-shard control-plane accounting (see the core)."""
        return self._core.stats()


class _ShardGrouping(CustomStreamGrouping):
    """One upstream shard's grouping: routes via its own scheduler.

    Execution reports and crash notifications fan out to every grouping
    of the bolt, so only shard 0 accepts them (and folds through the
    coordinator exactly once); the other shards are pure routers.
    """

    def __init__(self, coordinator: MultiSourcePOSGCoordinator, source: int) -> None:
        self._coordinator = coordinator
        self._source = source

    def prepare(self, source: str, target_tasks: list[int]) -> None:
        super().prepare(source, target_tasks)
        self._coordinator._bind(self._source, self._target_tasks)

    def choose_tasks(self, tup: StormTuple) -> list[int]:
        item = int(tup.value(self._coordinator.item_field))
        decision = self._coordinator._route(self._source, item)
        tup.sync_request = decision.sync_request
        return [self._target_tasks[decision.instance]]

    def wants_execution_reports(self) -> bool:
        return self._source == 0

    def on_execution(self, task: int, tup: StormTuple, duration: float) -> list:
        return self._coordinator._on_execution(task, tup, duration)

    def on_control(self, message) -> None:
        self._coordinator.on_control(message)

    def on_instance_crash(self, task: int) -> None:
        if self._source == 0:
            self._coordinator._on_instance_crash(task)

    @property
    def source_id(self) -> int:
        """This shard's scheduler id."""
        return self._source
