"""Per-family bucket-column cache.

Every sketch-level operation — Count-Min update, point query, the F/W
ratio estimate of POSG — starts by evaluating the same ``rows`` hash
functions on the same item.  The item universes of the paper are small
(``n = 4096`` synthetic, ~35k Twitter entities), so the ``(rows, n)``
column table fits comfortably in memory and can be computed once per
hash family and shared by every sketch built from it: the scheduler's
``C_hat`` estimates, all ``k`` instance-side F/W pairs and any
workload-preprocessing sketch then reduce hashing to an array lookup.

The cache fills lazily: items are hashed in bulk (via the vectorized
Mersenne kernel of :mod:`repro.sketches.hashing`) the first time they
are seen, so unbounded or unknown universes still work — only the
columns actually touched are materialized.  Items outside the cacheable
range (negative, or beyond :data:`MAX_CACHED_ITEM`) bypass the table and
are hashed directly, which keeps the cache a pure accelerator with no
behavioural footprint.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.sketches.hashing import TwoUniversalHashFamily

#: items above this id are hashed directly instead of cached, bounding the
#: column table to a few hundred MB even for adversarial item ids
MAX_CACHED_ITEM = (1 << 22) - 1


class BucketColumnCache:
    """Lazy ``(rows, universe)`` column table for one hash family.

    Two complementary lookup structures are kept in sync:

    - a Python ``dict`` mapping ``item -> tuple(cols)`` serving the
      scalar per-tuple hot paths (sketch update, estimate) without any
      numpy call;
    - a dense ``(rows, capacity)`` ``int64`` table plus a ``known``
      bitmap serving vectorized bulk lookups (``columns_many``).
    """

    __slots__ = ("_hashes", "_rows", "_scalar", "_table", "_known")

    def __init__(
        self, hashes: TwoUniversalHashFamily, initial_capacity: int = 1024
    ) -> None:
        self._hashes = hashes
        self._rows = hashes.rows
        self._scalar: dict[int, tuple[int, ...]] = {}
        capacity = max(1, initial_capacity)
        self._table = np.zeros((self._rows, capacity), dtype=np.int64)
        self._known = np.zeros(capacity, dtype=bool)

    @property
    def hashes(self) -> TwoUniversalHashFamily:
        """The family whose columns are cached."""
        return self._hashes

    @property
    def cached_items(self) -> int:
        """Number of items whose columns are materialized."""
        return len(self._scalar)

    # ------------------------------------------------------------------
    # scalar lookup (per-tuple hot path)
    # ------------------------------------------------------------------
    def columns(self, item: int) -> tuple[int, ...]:
        """The item's bucket column on every row (cached)."""
        cols = self._scalar.get(item)
        if cols is None:
            cols = self._hashes.hash_all(item)
            self._scalar[item] = cols
            if 0 <= item <= MAX_CACHED_ITEM:
                self._fill_table(item, cols)
        return cols

    def _fill_table(self, item: int, cols: tuple[int, ...]) -> None:
        if item >= self._table.shape[1]:
            self._grow(item + 1)
        self._table[:, item] = cols
        self._known[item] = True

    def _grow(self, needed: int) -> None:
        capacity = self._table.shape[1]
        while capacity < needed:
            capacity *= 2
        capacity = min(capacity, MAX_CACHED_ITEM + 1)
        grown = np.zeros((self._rows, capacity), dtype=np.int64)
        grown[:, : self._table.shape[1]] = self._table
        self._table = grown
        known = np.zeros(capacity, dtype=bool)
        known[: self._known.shape[0]] = self._known
        self._known = known

    # ------------------------------------------------------------------
    # vectorized lookup (bulk paths)
    # ------------------------------------------------------------------
    def columns_many(self, items: np.ndarray) -> np.ndarray:
        """Bucket matrix of shape ``(rows, len(items))`` for a batch.

        Unknown items are hashed in bulk through the vectorized kernel
        and memoized; items outside the cacheable range fall back to a
        direct (uncached) kernel evaluation.
        """
        items = np.ascontiguousarray(items, dtype=np.int64)
        if items.size == 0:
            return np.empty((self._rows, 0), dtype=np.int64)
        if items.min() < 0 or items.max() > MAX_CACHED_ITEM:
            return self._hashes.hash_vector(items.astype(np.uint64))
        high = int(items.max())
        if high >= self._table.shape[1]:
            self._grow(high + 1)
        missing = ~self._known[items]
        if missing.any():
            fresh = np.unique(items[missing])
            cols = self._hashes.hash_vector(fresh.astype(np.uint64))
            self._table[:, fresh] = cols
            self._known[fresh] = True
            scalar = self._scalar
            for j, item in enumerate(fresh.tolist()):
                scalar[item] = tuple(int(c) for c in cols[:, j])
        return self._table[:, items]

    def prefill(self, universe: int) -> None:
        """Eagerly materialize columns for items ``0 .. universe-1``."""
        if universe > 0:
            self.columns_many(np.arange(min(universe, MAX_CACHED_ITEM + 1)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BucketColumnCache(rows={self._rows}, "
            f"cached_items={self.cached_items})"
        )


#: one cache per live family object; weak keys let families (and their
#: caches) be garbage collected with the sketches that used them
_SHARED: "weakref.WeakKeyDictionary[TwoUniversalHashFamily, BucketColumnCache]" = (
    weakref.WeakKeyDictionary()
)


def get_bucket_cache(hashes: TwoUniversalHashFamily) -> BucketColumnCache:
    """The shared column cache of a hash family.

    Sketches built from the same family object (the POSG protocol shares
    one family between the scheduler and every instance) receive the
    *same* cache, so columns computed by any party serve all of them.
    """
    cache = _SHARED.get(hashes)
    if cache is None:
        cache = BucketColumnCache(hashes)
        _SHARED[hashes] = cache
    return cache
