"""Streaming-summary substrate: hash families and Count-Min sketches.

This package implements, from scratch, the data-streaming building blocks
the paper relies on (Section III-A of the paper):

- :class:`~repro.sketches.hashing.TwoUniversalHashFamily` — Carter–Wegman
  2-universal hash functions over a prime field.
- :class:`~repro.sketches.count_min.CountMinSketch` — the Cormode &
  Muthukrishnan Count-Min sketch, with both the plain frequency update
  and the generalized weighted update used by POSG's ``W`` matrix.
"""

from repro.sketches.hashing import TwoUniversalHashFamily, random_hash_family
from repro.sketches.bucket_cache import BucketColumnCache, get_bucket_cache
from repro.sketches.count_min import CountMinSketch, dims_for
from repro.sketches.space_saving import SpaceSaving

__all__ = [
    "TwoUniversalHashFamily",
    "random_hash_family",
    "BucketColumnCache",
    "get_bucket_cache",
    "CountMinSketch",
    "dims_for",
    "SpaceSaving",
]
