"""The Space-Saving heavy-hitters algorithm (Metwally et al., 2005).

Maintains at most ``capacity`` ``(item, count, error)`` triples.  A
monitored item's counter increments in place; an unmonitored item evicts
the current minimum, inheriting its count (recorded as the new entry's
``error``).  Guarantees, after ``m`` updates:

- every item with true frequency ``> m / capacity`` is monitored;
- for monitored items, ``count - error <= f_item <= count`` and
  ``error <= m / capacity``.

Used by the distribution-aware key grouping baseline
(:class:`repro.core.dkg.DKGGrouping`) to identify the heavy keys whose
placement dominates load balance.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class _Entry:
    item: int
    count: float
    error: float


class SpaceSaving:
    """Fixed-capacity heavy-hitters summary."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._entries: dict[int, _Entry] = {}
        self._total = 0.0
        self._evicted = False

    @property
    def capacity(self) -> int:
        """Maximum number of monitored items."""
        return self._capacity

    @property
    def total(self) -> float:
        """Total weight observed."""
        return self._total

    def update(self, item: int, weight: float = 1.0) -> None:
        """Observe one occurrence of ``item``."""
        if weight < 0:
            raise ValueError(f"weight must be >= 0, got {weight}")
        self._total += weight
        entry = self._entries.get(item)
        if entry is not None:
            entry.count += weight
            return
        if len(self._entries) < self._capacity:
            self._entries[item] = _Entry(item=item, count=weight, error=0.0)
            return
        # lowest item id breaks count ties so eviction (and everything
        # downstream of it) is deterministic regardless of insertion order
        victim = min(self._entries.values(), key=lambda e: (e.count, e.item))
        del self._entries[victim.item]
        self._evicted = True
        self._entries[item] = _Entry(
            item=item, count=victim.count + weight, error=victim.count
        )

    def estimate(self, item: int) -> float:
        """Frequency upper bound for ``item`` (0 if unmonitored)."""
        entry = self._entries.get(item)
        return entry.count if entry is not None else 0.0

    def guaranteed_count(self, item: int) -> float:
        """Frequency lower bound (``count - error``)."""
        entry = self._entries.get(item)
        return entry.count - entry.error if entry is not None else 0.0

    def heavy_hitters(self, phi: float) -> list[tuple[int, float]]:
        """Items with estimated frequency ``>= phi * total``, descending.

        Every true ``phi``-heavy hitter is included (no false negatives
        when ``capacity > 1/phi``); some returned items may be lighter.
        """
        if not 0.0 < phi <= 1.0:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        threshold = phi * self._total
        hitters = [
            (entry.item, entry.count)
            for entry in self._entries.values()
            if entry.count >= threshold
        ]
        return sorted(hitters, key=lambda pair: (-pair[1], pair[0]))

    def monitored(self) -> list[tuple[int, float]]:
        """All monitored ``(item, count)`` pairs, descending by count."""
        return sorted(
            ((e.item, e.count) for e in self._entries.values()),
            key=lambda pair: (-pair[1], pair[0]),
        )

    def _unmonitored_bound(self) -> float:
        """Upper bound on the frequency of any *unmonitored* item.

        Zero while nothing was ever evicted (every seen item is still
        monitored); otherwise the minimum monitored count.
        """
        if not self._evicted or not self._entries:
            return 0.0
        return min(entry.count for entry in self._entries.values())

    def merge(self, other: "SpaceSaving") -> None:
        """Fold another summary in (Agarwal et al., "Mergeable Summaries").

        Items monitored on both sides add their counts and errors; an
        item monitored on only one side inherits the other side's
        unmonitored-frequency bound as extra count *and* error, which
        preserves the no-underestimate guarantee
        (``count >= f_A + f_B``) at the cost of looser errors.  The
        merged summary keeps this object's capacity, retaining the
        largest counts.
        """
        bound_self = self._unmonitored_bound()
        bound_other = other._unmonitored_bound()
        combined: dict[int, _Entry] = {}
        for item in set(self._entries) | set(other._entries):
            mine = self._entries.get(item)
            theirs = other._entries.get(item)
            count = error = 0.0
            if mine is not None:
                count += mine.count
                error += mine.error
            else:
                count += bound_self
                error += bound_self
            if theirs is not None:
                count += theirs.count
                error += theirs.error
            else:
                count += bound_other
                error += bound_other
            combined[item] = _Entry(item=item, count=count, error=error)
        survivors = sorted(combined.values(), key=lambda e: (-e.count, e.item))
        if len(survivors) > self._capacity:
            self._evicted = True
        self._evicted = self._evicted or other._evicted
        self._entries = {
            entry.item: entry for entry in survivors[: self._capacity]
        }
        self._total += other._total

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, item: int) -> bool:
        return item in self._entries
