"""Count-Min sketch (Cormode & Muthukrishnan, 2005).

The sketch is an ``r x c`` matrix of counters with one 2-universal hash
function per row.  Reading item ``t`` increments ``F[i, h_i(t)]`` on every
row; a point query returns the minimum cell over the item's row cells,
which overestimates the true frequency by at most ``eps * (m - f_t)`` with
probability at least ``1 - delta`` when ``r = ceil(ln 1/delta)`` and
``c = ceil(e / eps)``.

POSG (Section III of the paper) uses two variants side by side:

- the plain frequency sketch ``F`` (``update value = 1``);
- the generalized sketch ``W`` where each update carries a non-negative
  value ``v_t`` (the measured execution time), so a cell accumulates the
  cumulated execution time of all items colliding there.

Both are served by :class:`CountMinSketch`, which accepts an arbitrary
update weight.
"""

from __future__ import annotations

import math

import numpy as np

from repro.sketches.bucket_cache import get_bucket_cache
from repro.sketches.hashing import TwoUniversalHashFamily, random_hash_family


def dims_for(epsilon: float, delta: float) -> tuple[int, int]:
    """Return the sketch dimensions ``(rows, cols)`` for an accuracy target.

    ``rows = ceil(ln(1/delta))`` and ``cols = ceil(e/epsilon)`` guarantee an
    ``(epsilon, delta)``-additive approximation of point queries.

    Examples from the paper: ``epsilon=0.05 -> cols=55`` (the paper rounds
    to 54), ``delta=0.1 -> rows=3`` (the paper rounds up to 4; we use
    ``ceil`` which gives 3 for 0.1 — callers wanting the paper's exact
    r=4/c=54 can pass dimensions explicitly).
    """
    if not 0.0 < epsilon <= 1.0:
        raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    rows = max(1, math.ceil(math.log(1.0 / delta)))
    cols = max(1, math.ceil(math.e / epsilon))
    return rows, cols


class CountMinSketch:
    """A Count-Min sketch with optional weighted updates.

    Parameters
    ----------
    hashes:
        The shared hash family; its ``rows``/``cols`` fix the matrix shape.
    dtype:
        Counter dtype; ``float64`` by default because POSG accumulates
        execution times (fractions of milliseconds).

    Notes
    -----
    The sketch exposes its matrix as the read-only property :attr:`matrix`
    so POSG can snapshot, serialize and merge sketches; mutate only through
    :meth:`update`/:meth:`reset`/:meth:`merge`.
    """

    __slots__ = ("_hashes", "_cache", "_matrix", "_total_weight", "_update_count")

    def __init__(self, hashes: TwoUniversalHashFamily, dtype=np.float64) -> None:
        self._hashes = hashes
        self._cache = get_bucket_cache(hashes)
        self._matrix = np.zeros((hashes.rows, hashes.cols), dtype=dtype)
        self._total_weight = 0.0
        self._update_count = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_accuracy(
        cls,
        epsilon: float,
        delta: float,
        rng: np.random.Generator | None = None,
    ) -> "CountMinSketch":
        """Build a sketch sized for an ``(epsilon, delta)`` guarantee."""
        rows, cols = dims_for(epsilon, delta)
        return cls(random_hash_family(rows, cols, rng=rng))

    # ------------------------------------------------------------------
    # stream ingestion
    # ------------------------------------------------------------------
    def update(self, item: int, weight: float = 1.0) -> None:
        """Fold one occurrence of ``item`` (with ``weight``) into the sketch.

        Time complexity is ``O(rows) = O(log 1/delta)`` (Theorem 3.1).
        """
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight}")
        matrix = self._matrix
        for row, col in enumerate(self._cache.columns(item)):
            matrix[row, col] += weight
        self._total_weight += weight
        self._update_count += 1

    def update_at(self, columns, weight: float = 1.0) -> None:
        """Fold one occurrence whose bucket columns are already known.

        ``columns`` must be the item's per-row column tuple as returned by
        the family's shared :class:`~repro.sketches.bucket_cache.\
BucketColumnCache`; callers updating several sketches with the same hash
        family (the F/W pair) use this to hash each tuple once.
        """
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight}")
        matrix = self._matrix
        for row, col in enumerate(columns):
            matrix[row, col] += weight
        self._total_weight += weight
        self._update_count += 1

    def update_conservative(self, item: int, weight: float = 1.0) -> None:
        """Conservative update (Estan & Varghese): raise each of the
        item's cells only up to ``query(item) + weight``.

        Tightens point-query overestimates for frequency counting while
        preserving the no-underestimate guarantee.  Note that POSG's
        ``W/F`` ratio estimator requires ``F`` and ``W`` to grow in
        lockstep (cell ratios are then mixture means), so the runtime
        algorithm uses plain updates; this variant exists for sketch-level
        comparisons and downstream users.

        Conservative sketches lose linearity: :meth:`merge` of two
        conservatively-built sketches still never underestimates, but may
        overestimate more than a single conservatively-built sketch of
        the concatenated stream.
        """
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight}")
        matrix = self._matrix
        cells = list(enumerate(self._cache.columns(item)))
        target = min(matrix[row, col] for row, col in cells) + weight
        for row, col in cells:
            if matrix[row, col] < target:
                matrix[row, col] = target
        self._total_weight += weight
        self._update_count += 1

    def update_many(self, items: np.ndarray, weights: np.ndarray | None = None) -> None:
        """Vectorized bulk update (used by workload preprocessing).

        The scatter is a per-row ``bincount`` — orders of magnitude faster
        than ``np.add.at`` for the batch sizes workloads use — so per-cell
        sums are grouped per batch; mixing :meth:`update` and
        :meth:`update_many` therefore yields the same counters up to
        float-addition reassociation (exactly equal for integer-valued
        weights such as frequency counts).
        """
        items = np.asarray(items)
        if items.size == 0:
            return
        buckets = self._cache.columns_many(items)
        if weights is None:
            weights = np.ones(items.shape[0], dtype=self._matrix.dtype)
        else:
            weights = np.asarray(weights, dtype=self._matrix.dtype)
            if weights.shape != items.shape:
                raise ValueError("items and weights must have the same shape")
            if np.any(weights < 0):
                raise ValueError("weights must be non-negative")
        cols = self._matrix.shape[1]
        for row in range(buckets.shape[0]):
            self._matrix[row] += np.bincount(
                buckets[row], weights=weights, minlength=cols
            )
        self._total_weight += float(weights.sum())
        self._update_count += items.shape[0]

    def fold_batch_exact(self, buckets: np.ndarray, weights: "np.ndarray | None") -> None:
        """Fold a pre-hashed batch with *per-tuple* float semantics.

        Unlike :meth:`update_many`, every cell receives its updates one by
        one in stream order (``np.add.at`` is unbuffered and sequential)
        and ``total_weight`` accumulates term by term, so the resulting
        sketch state is bit-for-bit identical to calling :meth:`update`
        once per tuple.  ``weights=None`` means unit weights and requires
        a sketch that has only ever seen unit weights (the frequency
        sketch ``F``): all counters are then small integers, exactly
        representable, and the scatter collapses to a ``bincount``.
        The chunked simulator uses this to batch instance-side sketch
        maintenance without perturbing POSG's estimates.

        ``buckets`` is a ``(rows, batch)`` column matrix (from
        :meth:`~repro.sketches.bucket_cache.BucketColumnCache.\
columns_many`); validation is the caller's job — this is a hot path.
        """
        rows, batch = buckets.shape
        if batch == 0:
            return
        cols = self._matrix.shape[1]
        flat = self._matrix.ravel()
        offsets = (np.arange(rows, dtype=np.int64) * cols)[:, None]
        indices = (buckets + offsets).ravel()
        if weights is None:
            # Unit weights: cell sums are small integers, exactly
            # representable, so a bincount scatter is bit-identical.
            flat += np.bincount(indices, minlength=rows * cols)
            self._total_weight += float(batch)
        else:
            tiled = np.broadcast_to(weights, (rows, batch)).ravel()
            np.add.at(flat, indices, tiled)
            # Sequential scalar accumulation preserves the exact rounding
            # of per-tuple updates (float addition is not associative).
            total = self._total_weight
            for w in weights.tolist():
                total += w
            self._total_weight = total
        self._update_count += batch

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, item: int) -> float:
        """Point query: ``min_i matrix[i, h_i(item)]`` (never underestimates)."""
        matrix = self._matrix
        return float(
            min(matrix[row, col] for row, col in enumerate(self._cache.columns(item)))
        )

    def query_many(self, items: np.ndarray) -> np.ndarray:
        """Vectorized point queries (shape ``(len(items),)``)."""
        items = np.asarray(items)
        if items.size == 0:
            return np.empty(0, dtype=np.float64)
        buckets = self._cache.columns_many(items)
        rows = np.arange(buckets.shape[0])[:, None]
        return self._matrix[rows, buckets].min(axis=0).astype(np.float64)

    def cells(self, item: int) -> np.ndarray:
        """Return the item's cell values on every row (shape ``(rows,)``)."""
        cols = self._cache.columns(item)
        return self._matrix[np.arange(self._hashes.rows), list(cols)]

    def argmin_row(self, item: int) -> int:
        """Row index whose cell for ``item`` holds the minimum value."""
        values = self.cells(item)
        return int(np.argmin(values))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero every counter (POSG resets after shipping matrices)."""
        self._matrix.fill(0)
        self._total_weight = 0.0
        self._update_count = 0

    def copy(self) -> "CountMinSketch":
        """Deep copy sharing the (immutable) hash family."""
        clone = CountMinSketch(self._hashes, dtype=self._matrix.dtype)
        clone._matrix = self._matrix.copy()
        clone._total_weight = self._total_weight
        clone._update_count = self._update_count
        return clone

    def scale(self, factor: float) -> None:
        """Multiply every counter by ``factor`` (exponential aging).

        Scaling preserves all cell *ratios* (the quantity POSG estimates
        from) while down-weighting history relative to future merges.
        """
        if factor < 0:
            raise ValueError(f"factor must be >= 0, got {factor}")
        self._matrix *= factor
        self._total_weight *= factor

    def merge(self, other: "CountMinSketch") -> None:
        """Add ``other``'s counters into this sketch (linear sketch property).

        Both sketches must have been built from the *same* hash family.
        """
        if other._hashes is not self._hashes and other._hashes != self._hashes:
            raise ValueError("cannot merge sketches with different hash families")
        if other._matrix.shape != self._matrix.shape:
            raise ValueError("cannot merge sketches with different shapes")
        self._matrix += other._matrix
        self._total_weight += other._total_weight
        self._update_count += other._update_count

    # ------------------------------------------------------------------
    # serialization (what actually crosses the network in a deployment)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable snapshot, including the hash family."""
        return {
            "hashes": self._hashes.to_dict(),
            "matrix": self._matrix.tolist(),
            "total_weight": self._total_weight,
            "update_count": self._update_count,
        }

    @classmethod
    def from_dict(
        cls, payload: dict, hashes: TwoUniversalHashFamily | None = None
    ) -> "CountMinSketch":
        """Rebuild from :meth:`to_dict`; pass ``hashes`` to share an
        existing family object (required for :meth:`merge` with ``is``
        identity)."""
        family = (
            hashes
            if hashes is not None
            else TwoUniversalHashFamily.from_dict(payload["hashes"])
        )
        sketch = cls(family)
        matrix = np.asarray(payload["matrix"], dtype=sketch._matrix.dtype)
        if matrix.shape != sketch._matrix.shape:
            raise ValueError(
                f"matrix shape {matrix.shape} does not match family shape "
                f"{sketch._matrix.shape}"
            )
        sketch._matrix = matrix
        sketch._total_weight = float(payload["total_weight"])
        sketch._update_count = int(payload["update_count"])
        return sketch

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def hashes(self) -> TwoUniversalHashFamily:
        """The hash family shared with sibling sketches."""
        return self._hashes

    @property
    def bucket_cache(self):
        """The family's shared column cache (see :mod:`bucket_cache`)."""
        return self._cache

    @property
    def matrix(self) -> np.ndarray:
        """Read-only view of the ``rows x cols`` counter matrix.

        The view is non-writeable (same convention as
        ``POSGScheduler.c_hat``) so external code cannot invalidate the
        cached fast paths; mutate only through
        :meth:`update`/:meth:`reset`/:meth:`merge`/:meth:`scale`.
        """
        view = self._matrix.view()
        view.flags.writeable = False
        return view

    @property
    def shape(self) -> tuple[int, int]:
        """``(rows, cols)`` of the counter matrix."""
        return self._matrix.shape

    @property
    def total_weight(self) -> float:
        """Sum of all update weights seen since the last reset."""
        return self._total_weight

    @property
    def update_count(self) -> int:
        """Number of updates folded in since the last reset."""
        return self._update_count

    def error_bound(self) -> float:
        """The additive error ``eps * m`` implied by the current width.

        With width ``c``, the per-row overestimate of a point query has
        expectation at most ``total_weight / c``; the Count-Min guarantee
        bounds it by ``(e/c) * total_weight`` with per-row probability
        ``1/e``.
        """
        return math.e / self._matrix.shape[1] * self._total_weight

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rows, cols = self.shape
        return (
            f"CountMinSketch(rows={rows}, cols={cols}, "
            f"updates={self._update_count}, weight={self._total_weight:.3f})"
        )
