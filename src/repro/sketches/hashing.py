"""Carter–Wegman 2-universal hash functions.

A family ``H`` of functions ``h : [n] -> [c]`` is 2-universal when, for any
two distinct items ``x != y`` and a function drawn uniformly from ``H``,
``Pr{h(x) = h(y)} <= 1/c``.  Carter and Wegman (1979) construct such a
family as ``h(x) = ((a*x + b) mod p) mod c`` with ``p`` prime, ``p > n``,
``a`` drawn from ``[1, p-1]`` and ``b`` from ``[0, p-1]``.

The implementation is fully deterministic given a seed, supports scalar and
vectorized (numpy) evaluation, and its parameters can be serialized so that
the POSG scheduler and the operator instances share the exact same
functions, as required by the protocol of the paper (Listing III.1/III.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# A Mersenne prime comfortably above every universe size used in the paper
# (n = 4096 synthetic, n ~ 35000 Twitter entities) and large enough that the
# ``mod p`` bias is negligible for any realistic universe.
MERSENNE_PRIME_61 = (1 << 61) - 1

_M61 = np.uint64(MERSENNE_PRIME_61)
_SHIFT_61 = np.uint64(61)
_SHIFT_31 = np.uint64(31)
_SHIFT_30 = np.uint64(30)
_MASK_31 = np.uint64((1 << 31) - 1)
_MASK_30 = np.uint64((1 << 30) - 1)


def _fold_mersenne61(x: np.ndarray) -> np.ndarray:
    """Reduce a ``uint64`` array modulo ``2^61 - 1``.

    Two shift-and-add folds bring any 64-bit value below ``2^62``, after
    which a single conditional subtract lands it in ``[0, p)``.
    """
    x = (x & _M61) + (x >> _SHIFT_61)
    x = (x & _M61) + (x >> _SHIFT_61)
    return np.where(x >= _M61, x - _M61, x)


def _mersenne61_affine(a: np.ndarray, b: np.ndarray, items: np.ndarray) -> np.ndarray:
    """``(a * items + b) mod (2^61 - 1)`` entirely in ``uint64``.

    The 122-bit products are assembled from 30/31-bit limbs:
    with ``a = a_hi*2^31 + a_lo`` and ``x = x_hi*2^31 + x_lo``,

        a*x = a_hi*x_hi*2^62 + (a_hi*x_lo + a_lo*x_hi)*2^31 + a_lo*x_lo

    and ``2^61 = 1 (mod p)`` turns every high limb into a small additive
    term: ``2^62 = 2`` and, writing the middle sum ``m = m_hi*2^30 + m_lo``,
    ``m*2^31 = m_hi + m_lo*2^31``.  Each partial term stays below ``2^62``,
    so the final sum (plus ``b < 2^61``) never overflows ``uint64``.

    ``a`` and ``b`` broadcast against ``items``; all inputs must already be
    reduced modulo ``p``.
    """
    a_hi = a >> _SHIFT_31
    a_lo = a & _MASK_31
    x_hi = items >> _SHIFT_31
    x_lo = items & _MASK_31
    mid = a_hi * x_lo + a_lo * x_hi
    total = (
        np.uint64(2) * (a_hi * x_hi)
        + (mid >> _SHIFT_30)
        + ((mid & _MASK_30) << _SHIFT_31)
        + a_lo * x_lo
    )
    return _fold_mersenne61(total + b)


def _is_prime(value: int) -> bool:
    """Deterministic Miller-Rabin primality test for 64-bit integers."""
    if value < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for prime in small_primes:
        if value % prime == 0:
            return value == prime
    d = value - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    # These witnesses are sufficient for all values below 3.3 * 10^24.
    for witness in small_primes:
        x = pow(witness, d, value)
        if x in (1, value - 1):
            continue
        for _ in range(r - 1):
            x = x * x % value
            if x == value - 1:
                break
        else:
            return False
    return True


def next_prime(value: int) -> int:
    """Return the smallest prime strictly greater than ``value``."""
    candidate = value + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not _is_prime(candidate):
        candidate += 2
    return candidate


@dataclass(frozen=True)
class TwoUniversalHashFamily:
    """A fixed set of ``r`` 2-universal hash functions ``[n] -> [c]``.

    Parameters
    ----------
    a, b:
        Integer arrays of shape ``(r,)`` holding the Carter–Wegman
        coefficients of each row's function.
    cols:
        The output range ``c``; ``h_i(x) in {0, ..., cols - 1}``.
    prime:
        The field modulus ``p``.

    The family is immutable; use :func:`random_hash_family` to draw one.
    """

    a: tuple[int, ...]
    b: tuple[int, ...]
    cols: int
    prime: int = MERSENNE_PRIME_61

    def __post_init__(self) -> None:
        if len(self.a) != len(self.b):
            raise ValueError("coefficient vectors a and b must have equal length")
        if len(self.a) == 0:
            raise ValueError("a hash family needs at least one function")
        if self.cols < 1:
            raise ValueError(f"cols must be >= 1, got {self.cols}")
        if not _is_prime(self.prime):
            raise ValueError(f"prime={self.prime} is not prime")
        if any(not (1 <= ai < self.prime) for ai in self.a):
            raise ValueError("every a_i must lie in [1, prime - 1]")
        if any(not (0 <= bi < self.prime) for bi in self.b):
            raise ValueError("every b_i must lie in [0, prime - 1]")

    @property
    def rows(self) -> int:
        """Number of independent hash functions in the family."""
        return len(self.a)

    def hash(self, row: int, item: int) -> int:
        """Evaluate ``h_row(item)``, a bucket index in ``[0, cols)``."""
        return ((self.a[row] * item + self.b[row]) % self.prime) % self.cols

    def hash_all(self, item: int) -> tuple[int, ...]:
        """Evaluate every row's function on ``item`` (scheduler hot path)."""
        p, c = self.prime, self.cols
        return tuple(((a * item + b) % p) % c for a, b in zip(self.a, self.b))

    def hash_vector(self, items: np.ndarray) -> np.ndarray:
        """Vectorized evaluation: shape ``(rows, len(items))`` bucket matrix.

        Three paths, all bit-identical to scalar :meth:`hash`:

        - ``prime == 2^61 - 1`` (the default): a branch-free ``uint64``
          Mersenne-reduction kernel (see :func:`_mersenne61_affine`) that
          handles arbitrary coefficients and items without overflow;
        - other primes whose worst-case product ``(p-1) * max(a) + max(b)``
          fits in 64 bits: plain ``uint64`` arithmetic (items are reduced
          into the field first, so the guard is exact);
        - everything else: vectorized Python-int (object-dtype) arithmetic,
          correct for arbitrary primes.
        """
        items = np.ascontiguousarray(items, dtype=np.uint64)
        if items.size == 0:
            return np.empty((self.rows, 0), dtype=np.int64)
        cols = np.uint64(self.cols)
        if self.prime == MERSENNE_PRIME_61:
            a = np.asarray(self.a, dtype=np.uint64)[:, None]
            b = np.asarray(self.b, dtype=np.uint64)[:, None]
            mixed = _mersenne61_affine(a, b, _fold_mersenne61(items)[None, :])
            return (mixed % cols).astype(np.int64)
        prime = np.uint64(self.prime)
        # h(x) = h(x mod p), so reduce items into the field first; the
        # overflow guard then bounds the *true* worst-case product.
        reduced = items % prime
        if (self.prime - 1) * max(self.a) + max(self.b) < (1 << 64):
            a = np.asarray(self.a, dtype=np.uint64)[:, None]
            b = np.asarray(self.b, dtype=np.uint64)[:, None]
            mixed = (a * reduced[None, :] + b) % prime
            return (mixed % cols).astype(np.int64)
        # Arbitrary-precision slow path: numpy object arrays hold Python
        # ints, so products cannot overflow no matter the prime.
        a_obj = np.array([int(ai) for ai in self.a], dtype=object)[:, None]
        b_obj = np.array([int(bi) for bi in self.b], dtype=object)[:, None]
        mixed = (a_obj * reduced.astype(object)[None, :] + b_obj) % self.prime
        return (mixed % self.cols).astype(np.int64)

    def to_dict(self) -> dict:
        """Serializable parameter dictionary (shared scheduler/instances)."""
        return {"a": list(self.a), "b": list(self.b), "cols": self.cols, "prime": self.prime}

    @classmethod
    def from_dict(cls, payload: dict) -> "TwoUniversalHashFamily":
        """Rebuild a family from :meth:`to_dict` output."""
        return cls(
            a=tuple(payload["a"]),
            b=tuple(payload["b"]),
            cols=int(payload["cols"]),
            prime=int(payload["prime"]),
        )


def random_hash_family(
    rows: int,
    cols: int,
    rng: np.random.Generator | None = None,
    prime: int = MERSENNE_PRIME_61,
) -> TwoUniversalHashFamily:
    """Draw ``rows`` independent functions ``[n] -> [cols]`` from the family.

    Parameters
    ----------
    rows:
        Number of functions (the sketch depth ``r = ceil(ln 1/delta)``).
    cols:
        Output range (the sketch width ``c = ceil(e/eps)``).
    rng:
        Source of randomness; defaults to a fresh unseeded generator.
    prime:
        Field modulus; must exceed every item in the universe.
    """
    if rows < 1:
        raise ValueError(f"rows must be >= 1, got {rows}")
    if cols < 1:
        raise ValueError(f"cols must be >= 1, got {cols}")
    rng = rng if rng is not None else np.random.default_rng()
    a = tuple(int(rng.integers(1, prime)) for _ in range(rows))
    b = tuple(int(rng.integers(0, prime)) for _ in range(rows))
    return TwoUniversalHashFamily(a=a, b=b, cols=cols, prime=prime)
