"""Declarative fault plans: *what* goes wrong, when, and how often.

A :class:`FaultPlan` is a frozen, fully-validated description of the
faults to inject into one run — per-message-kind probabilities for the
control plane plus scripted at-time events for the instances.  It holds
no mutable state and draws no randomness itself; pairing a plan with a
seed-derived generator is the job of
:class:`~repro.faults.injector.FaultInjector`, which keeps runs
deterministic: the same plan, seed and workload produce the same faults.

The model follows the failure assumptions of the paper's evaluation
(Figure 10 is a recovery-timeline experiment) and of the systems POSG
targets: control messages ride an asynchronous network that may drop,
delay, duplicate or reorder them, and operator instances may crash
(losing their in-memory ``F``/``W`` matrices and ``C_op``) or run slow
for a while.  Data tuples are *not* faulted — shuffle grouping sits on
the data path, and the point of the subsystem is to stress the control
plane underneath it.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MessageFaults:
    """Per-kind control-message fault probabilities.

    Each probability is evaluated independently per message:
    ``drop`` discards it, ``duplicate`` delivers a second copy,
    ``delay`` adds a fixed ``delay_ms``, and ``reorder`` adds a
    uniform random extra latency in ``[0, reorder_ms)`` (which is what
    actually reorders messages relative to each other).
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    delay_ms: float = 0.0
    reorder: float = 0.0
    reorder_ms: float = 8.0

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "delay", "reorder"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in ("delay_ms", "reorder_ms"):
            value = getattr(self, name)
            if value < 0.0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if self.delay > 0.0 and self.delay_ms == 0.0:
            raise ValueError("delay > 0 requires delay_ms > 0")

    @property
    def active(self) -> bool:
        """Whether any fault can fire for this message kind."""
        return (
            self.drop > 0.0
            or self.duplicate > 0.0
            or self.delay > 0.0
            or self.reorder > 0.0
        )

    def summary(self) -> dict:
        """Plain-dict form for run reports."""
        return {
            "drop": self.drop,
            "duplicate": self.duplicate,
            "delay": self.delay,
            "delay_ms": self.delay_ms,
            "reorder": self.reorder,
            "reorder_ms": self.reorder_ms,
        }


@dataclass(frozen=True)
class CrashFault:
    """Scripted crash-restart of one operator instance.

    At virtual time ``at_ms`` the instance loses all in-memory state
    (matrices, snapshot, ``C_op`` — see ``InstanceTracker.restart``) and
    stays down for ``outage_ms`` before the new incarnation starts
    executing again.
    """

    instance: int
    at_ms: float
    outage_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.instance < 0:
            raise ValueError(f"instance must be >= 0, got {self.instance}")
        if self.at_ms < 0.0:
            raise ValueError(f"at_ms must be >= 0, got {self.at_ms}")
        if self.outage_ms < 0.0:
            raise ValueError(f"outage_ms must be >= 0, got {self.outage_ms}")

    def summary(self) -> dict:
        """Plain-dict form for run reports."""
        return {
            "instance": self.instance,
            "at_ms": self.at_ms,
            "outage_ms": self.outage_ms,
        }


@dataclass(frozen=True)
class SlowdownFault:
    """Scripted slow-node window: execution times inflate by ``factor``.

    While ``at_ms <= now < at_ms + duration_ms`` every tuple executed by
    ``instance`` takes ``factor`` times its nominal duration — the
    operator-slowdown scenario PKG and POTUS evaluate under.
    """

    instance: int
    at_ms: float
    duration_ms: float
    factor: float

    def __post_init__(self) -> None:
        if self.instance < 0:
            raise ValueError(f"instance must be >= 0, got {self.instance}")
        if self.at_ms < 0.0:
            raise ValueError(f"at_ms must be >= 0, got {self.at_ms}")
        if self.duration_ms <= 0.0:
            raise ValueError(f"duration_ms must be > 0, got {self.duration_ms}")
        if self.factor <= 0.0:
            raise ValueError(f"factor must be > 0, got {self.factor}")

    def summary(self) -> dict:
        """Plain-dict form for run reports."""
        return {
            "instance": self.instance,
            "at_ms": self.at_ms,
            "duration_ms": self.duration_ms,
            "factor": self.factor,
        }


#: the process-level fault kinds a WorkerFault can script
WORKER_FAULT_KINDS = ("crash", "hang", "stall")


@dataclass(frozen=True)
class WorkerFault:
    """Scripted process-level fault of one parallel-engine worker.

    Unlike :class:`CrashFault` (which models an *operator instance*
    losing state inside the simulated topology), a ``WorkerFault``
    targets the machinery running the simulation itself: one of the
    shard-routing worker processes of
    :func:`~repro.simulator.parallel.simulate_stream_parallel`.  The
    fault fires when the worker receives the dispatch for global
    control-quiet segment number ``segment`` (0-based, counted by the
    parent across the whole run):

    - ``kind="crash"`` — the worker process hard-exits (``os._exit``)
      before routing, exactly like an OOM kill or SIGKILL;
    - ``kind="hang"`` — the worker sleeps ``hang_ms`` before routing,
      modelling a GC pause / NUMA stall / live-lock; a hang longer than
      the supervision ack deadline is indistinguishable from a death
      and triggers kill + respawn;
    - ``kind="stall"`` — from this segment on, the worker sleeps an
      extra ``(stall_factor - 1)`` times its routing time per segment:
      a degraded-but-alive straggler that never trips the deadline.

    Because workers route speculatively against frozen shared-memory
    state and the parent commits only merged prefixes, none of these
    faults can change the run's output: a killed worker's segment is
    simply re-routed (by a respawned worker or by the parent), so
    chaos-tested runs stay bit-identical to the sequential engines.
    Sequential engines ignore worker faults entirely.
    """

    worker: int
    segment: int
    kind: str = "crash"
    hang_ms: float = 0.0
    stall_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise ValueError(f"worker must be >= 0, got {self.worker}")
        if self.segment < 0:
            raise ValueError(f"segment must be >= 0, got {self.segment}")
        if self.kind not in WORKER_FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {WORKER_FAULT_KINDS}, got {self.kind!r}"
            )
        if self.hang_ms < 0.0:
            raise ValueError(f"hang_ms must be >= 0, got {self.hang_ms}")
        if self.kind == "hang" and self.hang_ms == 0.0:
            raise ValueError("kind='hang' requires hang_ms > 0")
        if self.stall_factor < 1.0:
            raise ValueError(
                f"stall_factor must be >= 1, got {self.stall_factor}"
            )
        if self.kind == "stall" and self.stall_factor == 1.0:
            raise ValueError("kind='stall' requires stall_factor > 1")

    def summary(self) -> dict:
        """Plain-dict form for run reports."""
        return {
            "worker": self.worker,
            "segment": self.segment,
            "kind": self.kind,
            "hang_ms": self.hang_ms,
            "stall_factor": self.stall_factor,
        }


#: a MessageFaults with every probability at zero (the default)
NO_FAULTS = MessageFaults()


@dataclass(frozen=True)
class FaultPlan:
    """Complete fault description for one run.

    Parameters
    ----------
    matrices, sync_requests, sync_replies:
        Per-kind control-plane fault probabilities.  Piggy-backed
        :class:`~repro.core.messages.SyncRequest` messages ride on data
        tuples, so only their ``drop`` probability applies (delaying or
        duplicating the carrying tuple would fault the data plane).
    source_sync_requests, source_sync_replies:
        Per-*scheduler* overrides for multi-source deployments (see
        :class:`~repro.core.multisource.MultiSourcePOSGGrouping`): a
        mapping from scheduler shard id to :class:`MessageFaults`,
        applied instead of the global probability for messages carrying
        that ``source`` tag.  Shards without an entry use the global
        channel.  Matrices messages are a *broadcast* channel (the
        fan-out to the shards happens inside the policy, past the
        network the injector models), so they have no per-scheduler
        override.  Accepts a dict for convenience; stored as a sorted
        tuple of ``(source, faults)`` pairs.
    crashes:
        Scripted :class:`CrashFault` events, any order (the injector
        sorts them by time).
    slowdowns:
        Scripted :class:`SlowdownFault` windows.
    worker_faults:
        Scripted :class:`WorkerFault` events against the parallel
        engine's shard-routing worker processes (crash / hang / stall
        at a given control-quiet segment).  Only
        :func:`~repro.simulator.parallel.simulate_stream_parallel`
        realizes them; the sequential engines ignore them, which is
        safe because process faults never change routed output.  At
        most one fault per ``(worker, segment)`` pair.
    seed:
        Seed for the injector's private random generator; the same plan
        and seed reproduce the same fault sequence.
    """

    matrices: MessageFaults = NO_FAULTS
    sync_requests: MessageFaults = NO_FAULTS
    sync_replies: MessageFaults = NO_FAULTS
    source_sync_requests: tuple[tuple[int, MessageFaults], ...] = ()
    source_sync_replies: tuple[tuple[int, MessageFaults], ...] = ()
    crashes: tuple[CrashFault, ...] = field(default_factory=tuple)
    slowdowns: tuple[SlowdownFault, ...] = field(default_factory=tuple)
    worker_faults: tuple[WorkerFault, ...] = field(default_factory=tuple)
    seed: int = 0

    @staticmethod
    def _normalize_overrides(name: str, overrides) -> tuple:
        if isinstance(overrides, dict):
            overrides = tuple(sorted(overrides.items()))
        else:
            overrides = tuple(tuple(pair) for pair in overrides)
        for source, faults in overrides:
            if not isinstance(source, int) or source < 0:
                raise ValueError(
                    f"{name} keys must be scheduler ids >= 0, got {source!r}"
                )
            if not isinstance(faults, MessageFaults):
                raise TypeError(
                    f"{name} values must be MessageFaults, got {faults!r}"
                )
        if len({source for source, _ in overrides}) != len(overrides):
            raise ValueError(f"{name} has duplicate scheduler ids")
        return overrides

    def __post_init__(self) -> None:
        # accept lists for convenience, store tuples (frozen dataclass)
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "slowdowns", tuple(self.slowdowns))
        object.__setattr__(
            self,
            "source_sync_requests",
            self._normalize_overrides(
                "source_sync_requests", self.source_sync_requests
            ),
        )
        object.__setattr__(
            self,
            "source_sync_replies",
            self._normalize_overrides(
                "source_sync_replies", self.source_sync_replies
            ),
        )
        object.__setattr__(self, "worker_faults", tuple(self.worker_faults))
        for crash in self.crashes:
            if not isinstance(crash, CrashFault):
                raise TypeError(f"crashes must hold CrashFault, got {crash!r}")
        for slow in self.slowdowns:
            if not isinstance(slow, SlowdownFault):
                raise TypeError(f"slowdowns must hold SlowdownFault, got {slow!r}")
        for fault in self.worker_faults:
            if not isinstance(fault, WorkerFault):
                raise TypeError(
                    f"worker_faults must hold WorkerFault, got {fault!r}"
                )
        keys = [(f.worker, f.segment) for f in self.worker_faults]
        if len(set(keys)) != len(keys):
            raise ValueError(
                "worker_faults has more than one fault for the same "
                "(worker, segment) pair"
            )

    @property
    def control_active(self) -> bool:
        """Whether any *simulated-topology* fault can fire.

        This is the flag the per-tuple merge paths interpose on:
        control-plane message faults plus scripted instance crashes and
        slowdowns.  Process-level :attr:`worker_faults` are excluded —
        they perturb the machinery, never the simulated run, so engines
        may keep their fault-free fast paths when only worker faults
        are scripted.
        """
        return (
            self.matrices.active
            or self.sync_requests.active
            or self.sync_replies.active
            or any(faults.active for _, faults in self.source_sync_requests)
            or any(faults.active for _, faults in self.source_sync_replies)
            or bool(self.crashes)
            or bool(self.slowdowns)
        )

    @property
    def process_active(self) -> bool:
        """Whether any process-level worker fault is scripted."""
        return bool(self.worker_faults)

    @property
    def active(self) -> bool:
        """Whether this plan can inject anything at all.

        An inactive plan is the contract behind the bit-identity
        guarantee: engines check it once and skip the interposition
        entirely, so a run with ``FaultPlan()`` equals a run with no
        plan.
        """
        return self.control_active or self.process_active

    def summary(self) -> dict:
        """Plain-dict form for ``RunReport`` / ``report.json``."""
        summary = {
            "seed": self.seed,
            "matrices": self.matrices.summary(),
            "sync_requests": self.sync_requests.summary(),
            "sync_replies": self.sync_replies.summary(),
            "crashes": [crash.summary() for crash in self.crashes],
            "slowdowns": [slow.summary() for slow in self.slowdowns],
        }
        if self.worker_faults:
            summary["worker_faults"] = [
                fault.summary() for fault in self.worker_faults
            ]
        if self.source_sync_requests:
            summary["source_sync_requests"] = {
                str(source): faults.summary()
                for source, faults in self.source_sync_requests
            }
        if self.source_sync_replies:
            summary["source_sync_replies"] = {
                str(source): faults.summary()
                for source, faults in self.source_sync_replies
            }
        return summary
