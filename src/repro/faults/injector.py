"""Seeded runtime realization of a :class:`~repro.faults.plan.FaultPlan`.

The injector is the single stateful object of the fault subsystem: it
owns the private random generator that turns the plan's probabilities
into concrete fault decisions, counts everything it injects, and emits
tracer events so a chaos run's timeline can be reconstructed from the
trace alone.  Engines interpose it at exactly three points:

- control-message dispatch — :meth:`deliver_times` maps one outgoing
  message and its nominal delivery time to zero (dropped), one, or two
  (duplicated) delivery times, possibly shifted by delay/reorder faults;
- sync-request piggy-backing — :meth:`drop_request` decides whether the
  request riding on a data tuple is lost (the only fault kind that makes
  sense for piggy-backed messages);
- tuple execution — :meth:`execution_factor` inflates execution times
  inside scripted slow-node windows.

Scripted crashes are driven *by the engine* (each engine owns its notion
of time and of what "the instance is down" means); the injector supplies
the sorted schedule via :attr:`crashes` and books the events through
:meth:`note_crash` / :meth:`note_restart`.

Determinism: all randomness comes from ``default_rng(plan.seed)``, and
every engine consults the injector in arrival order, so a (plan, seed,
workload) triple reproduces the same faults — including across the
per-tuple and chunked simulator engines, which interpose at the same
per-tuple points.
"""

from __future__ import annotations

import numpy as np

from repro.core.messages import (
    ControlMessage,
    MatricesMessage,
    SyncReply,
    SyncRequest,
)
from repro.faults.plan import FaultPlan, MessageFaults
from repro.telemetry.recorder import NULL_RECORDER
from repro.telemetry.registry import Sample

#: message-kind keys used in counters, traces and reports
KINDS = ("matrices", "sync_request", "sync_reply")


class FaultInjector:
    """Stateful, seeded executor of one :class:`FaultPlan`.

    Parameters
    ----------
    plan:
        The faults to inject.
    k:
        Number of operator instances, when known; scripted faults
        naming an instance ``>= k`` are rejected early instead of
        misfiring silently mid-run.
    telemetry:
        Optional recorder; fault counters export as ``posg_fault_*``
        metrics and every injected fault emits a tracer event.
    """

    def __init__(self, plan: FaultPlan, k: int | None = None, telemetry=NULL_RECORDER) -> None:
        if k is not None:
            for event in (*plan.crashes, *plan.slowdowns):
                if event.instance >= k:
                    raise ValueError(
                        f"scripted fault targets instance {event.instance} "
                        f"but only {k} instances exist"
                    )
        self._plan = plan
        self._telemetry = telemetry if telemetry is not None else NULL_RECORDER
        self._rng = np.random.default_rng(plan.seed)
        # per-scheduler channel overrides (multi-source deployments);
        # empty dicts for ordinary plans, so the lookups below fall
        # straight through to the global channels
        self._request_overrides = dict(plan.source_sync_requests)
        self._reply_overrides = dict(plan.source_sync_replies)
        self._crashes = tuple(sorted(plan.crashes, key=lambda c: c.at_ms))
        self._slowdowns = tuple(sorted(plan.slowdowns, key=lambda s: s.at_ms))
        self._dropped = dict.fromkeys(KINDS, 0)
        self._duplicated = dict.fromkeys(KINDS, 0)
        self._delayed = dict.fromkeys(KINDS, 0)
        self._reordered = dict.fromkeys(KINDS, 0)
        self._crashes_fired = 0
        self._restarts_fired = 0
        self._slowed_tuples = 0
        # process-level worker faults (parallel engine only); booked by
        # the WorkerSupervisor at dispatch time, deterministically
        self._worker_faults_fired = {"crash": 0, "hang": 0, "stall": 0}
        self._worker_respawns = 0
        self._telemetry.registry.register_collector(self._collect_samples)

    # ------------------------------------------------------------------
    # control-plane interposition
    # ------------------------------------------------------------------
    def deliver_times(self, message: ControlMessage, base_delivery: float) -> list[float]:
        """Fault one outgoing message; return its delivery time(s).

        ``[]`` means dropped; two entries mean duplicated.  Each copy's
        delay/reorder faults are drawn independently, so a duplicate can
        overtake the original — which is exactly the reordering the
        scheduler's epoch/stale-reply machinery must survive.
        """
        kind, faults = self._classify(message)
        if faults is None or not faults.active:
            return [base_delivery]
        rng = self._rng
        if faults.drop > 0.0 and rng.random() < faults.drop:
            self._dropped[kind] += 1
            self._emit("fault_drop", kind, message)
            return []
        copies = 1
        if faults.duplicate > 0.0 and rng.random() < faults.duplicate:
            copies = 2
            self._duplicated[kind] += 1
            self._emit("fault_duplicate", kind, message)
        times = []
        for _ in range(copies):
            when = base_delivery
            if faults.delay > 0.0 and rng.random() < faults.delay:
                when += faults.delay_ms
                self._delayed[kind] += 1
                self._emit("fault_delay", kind, message, extra_ms=faults.delay_ms)
            if faults.reorder > 0.0 and rng.random() < faults.reorder:
                jitter = float(rng.uniform(0.0, faults.reorder_ms))
                when += jitter
                self._reordered[kind] += 1
                self._emit("fault_reorder", kind, message, extra_ms=jitter)
            times.append(when)
        return times

    def drop_request(self, request: SyncRequest | None = None) -> bool:
        """Whether the piggy-backed :class:`SyncRequest` being sent is lost.

        Piggy-backed requests ride on data tuples, so drop is the only
        supported fault for them: the tuple itself is always delivered
        (shuffle grouping must not lose data), only its control payload
        vanishes.  Passing the ``request`` lets multi-source plans apply
        a per-scheduler override (keyed by ``request.source``); without
        one the global ``sync_requests`` channel applies.
        """
        faults = self._plan.sync_requests
        if request is not None and self._request_overrides:
            faults = self._request_overrides.get(request.source, faults)
        if faults.drop > 0.0 and self._rng.random() < faults.drop:
            self._dropped["sync_request"] += 1
            if self._telemetry.enabled:
                self._telemetry.tracer.emit("fault_drop", channel="sync_request")
            return True
        return False

    def _classify(self, message: ControlMessage) -> tuple[str, MessageFaults | None]:
        """Resolve the fault channel for one message.

        Source-tagged messages (sync requests and replies) consult the
        plan's per-scheduler overrides first; matrices are a broadcast
        channel (the per-shard fan-out happens inside the policy, past
        the network the injector models) and always use the global
        probabilities.
        """
        if isinstance(message, MatricesMessage):
            return "matrices", self._plan.matrices
        if isinstance(message, SyncReply):
            if self._reply_overrides:
                override = self._reply_overrides.get(message.source)
                if override is not None:
                    return "sync_reply", override
            return "sync_reply", self._plan.sync_replies
        if isinstance(message, SyncRequest):
            if self._request_overrides:
                override = self._request_overrides.get(message.source)
                if override is not None:
                    return "sync_request", override
            return "sync_request", self._plan.sync_requests
        return "unknown", None

    def _emit(self, event: str, kind: str, message: ControlMessage, **extra) -> None:
        if not self._telemetry.enabled:
            return
        instance = getattr(message, "instance", None)
        self._telemetry.tracer.emit(event, channel=kind, instance=instance, **extra)

    # ------------------------------------------------------------------
    # instance faults
    # ------------------------------------------------------------------
    @property
    def crashes(self) -> tuple:
        """Scripted crash events, sorted by ``at_ms`` (engine-driven)."""
        return self._crashes

    def execution_factor(self, instance: int, now: float) -> float:
        """Execution-time multiplier for ``instance`` at virtual time ``now``.

        Overlapping slow-node windows compound multiplicatively.
        """
        factor = 1.0
        for slow in self._slowdowns:
            if slow.at_ms > now:
                break
            if slow.instance == instance and now < slow.at_ms + slow.duration_ms:
                factor *= slow.factor
        if factor != 1.0:
            self._slowed_tuples += 1
        return factor

    def note_crash(self, instance: int, at_ms: float) -> None:
        """Book a crash the engine just fired."""
        self._crashes_fired += 1
        if self._telemetry.enabled:
            self._telemetry.tracer.emit("fault_crash", instance=instance, at_ms=at_ms)

    def note_restart(self, instance: int, at_ms: float) -> None:
        """Book the matching restart."""
        self._restarts_fired += 1
        if self._telemetry.enabled:
            self._telemetry.tracer.emit("fault_restart", instance=instance, at_ms=at_ms)

    # ------------------------------------------------------------------
    # process-level worker faults (parallel engine)
    # ------------------------------------------------------------------
    @property
    def worker_faults(self) -> tuple:
        """Scripted process-level faults for the parallel engine."""
        return self._plan.worker_faults

    def note_worker_fault(self, fault) -> None:
        """Book a worker fault the supervisor just shipped into a segment.

        Called at dispatch time (the fault *will* fire in the worker),
        so the tally is deterministic even when the resulting hang is
        too short for the parent to distinguish from a slow segment.
        """
        self._worker_faults_fired[fault.kind] += 1
        if self._telemetry.enabled:
            self._telemetry.tracer.emit(
                "fault_worker",
                fault_kind=fault.kind,
                worker=fault.worker,
                segment=fault.segment,
            )

    def note_worker_respawn(self, worker: int) -> None:
        """Book one supervisor kill + respawn of a worker process."""
        self._worker_respawns += 1
        if self._telemetry.enabled:
            self._telemetry.tracer.emit("worker_respawn", worker=worker)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def plan(self) -> FaultPlan:
        """The plan being executed."""
        return self._plan

    @property
    def active(self) -> bool:
        """Whether the plan can inject anything (engines may skip us)."""
        return self._plan.active

    def report(self) -> dict:
        """Plan summary plus injected-fault counters, for ``report.json``."""
        return {
            "plan": self._plan.summary(),
            "injected": {
                "dropped": dict(self._dropped),
                "duplicated": dict(self._duplicated),
                "delayed": dict(self._delayed),
                "reordered": dict(self._reordered),
                "crashes": self._crashes_fired,
                "restarts": self._restarts_fired,
                "slowed_tuples": self._slowed_tuples,
                "worker_faults": dict(self._worker_faults_fired),
                "worker_respawns": self._worker_respawns,
            },
        }

    def _collect_samples(self) -> list[Sample]:
        """Export-time metric samples (registered as a collector)."""
        samples = []
        for name, counts in (
            ("posg_fault_dropped_total", self._dropped),
            ("posg_fault_duplicated_total", self._duplicated),
            ("posg_fault_delayed_total", self._delayed),
            ("posg_fault_reordered_total", self._reordered),
        ):
            samples.extend(
                Sample(
                    name,
                    counts[kind],
                    "counter",
                    (("kind", kind),),
                    help="Control messages faulted by the injector",
                )
                for kind in KINDS
            )
        samples.append(
            Sample(
                "posg_fault_crashes_total",
                self._crashes_fired,
                "counter",
                help="Scripted instance crashes fired",
            )
        )
        samples.append(
            Sample(
                "posg_fault_restarts_total",
                self._restarts_fired,
                "counter",
                help="Scripted instance restarts fired",
            )
        )
        samples.append(
            Sample(
                "posg_fault_slowed_tuples_total",
                self._slowed_tuples,
                "counter",
                help="Tuple executions inflated by slow-node windows",
            )
        )
        samples.extend(
            Sample(
                "posg_fault_worker_total",
                count,
                "counter",
                (("kind", kind),),
                help="Process-level worker faults injected (parallel engine)",
            )
            for kind, count in self._worker_faults_fired.items()
        )
        samples.append(
            Sample(
                "posg_fault_worker_respawns_total",
                self._worker_respawns,
                "counter",
                help="Worker processes killed and respawned by the supervisor",
            )
        )
        return samples

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(active={self.active}, seed={self._plan.seed}, "
            f"crashes={len(self._crashes)})"
        )
