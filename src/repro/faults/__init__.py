"""Seeded, deterministic fault injection for the POSG control plane.

The paper's protocol (Figure 3) is specified for a reliable network;
this package supplies the adversary that the recovery defenses in
:class:`~repro.core.scheduler.POSGScheduler` (armed via
:class:`~repro.core.config.RecoveryConfig`) are measured against:

- :class:`~repro.faults.plan.FaultPlan` — a frozen, validated
  description of what goes wrong: per-kind drop/delay/duplicate/reorder
  probabilities for control messages, scripted instance crash-restarts
  and slow-node windows.
- :class:`~repro.faults.injector.FaultInjector` — the seeded runtime
  that turns the plan into concrete fault decisions, counts them, and
  traces them through telemetry.

Both simulator engines (``simulator/run.py``) and the Storm-like layer
(``storm/cluster.py``) accept an injector; with the plan inactive they
skip the interposition entirely, preserving bit-identical fault-free
behaviour.  ``python -m repro.experiments chaos`` runs the packaged
recovery-timeline scenario.
"""

from repro.faults.plan import (
    CrashFault,
    FaultPlan,
    MessageFaults,
    NO_FAULTS,
    SlowdownFault,
    WorkerFault,
)
from repro.faults.injector import FaultInjector

__all__ = [
    "CrashFault",
    "FaultInjector",
    "FaultPlan",
    "MessageFaults",
    "NO_FAULTS",
    "SlowdownFault",
    "WorkerFault",
]
