"""Network latency models.

The paper's completion-time metric includes network latencies (Section
II); its simulations focus on queuing delay, so the default everywhere is
zero data-plane latency and a small constant control-plane latency (the
matrices/sync round trips of Figure 1 travel over the network and the
time series of Figure 10 shows the resulting adaptation lag).
"""

from __future__ import annotations

import abc

import numpy as np


class LatencyModel(abc.ABC):
    """Per-message network delay, in milliseconds."""

    @abc.abstractmethod
    def sample(self) -> float:
        """Delay for the next message."""


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``value`` milliseconds."""

    def __init__(self, value: float = 0.0) -> None:
        if value < 0:
            raise ValueError(f"latency must be >= 0, got {value}")
        self._value = value

    @property
    def value(self) -> float:
        """The constant delay."""
        return self._value

    def sample(self) -> float:
        return self._value


class UniformLatency(LatencyModel):
    """Uniform jitter in ``[low, high]`` milliseconds."""

    def __init__(
        self, low: float, high: float, rng: np.random.Generator | None = None
    ) -> None:
        if low < 0 or high < low:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        self._low = low
        self._high = high
        self._rng = rng if rng is not None else np.random.default_rng()

    def sample(self) -> float:
        return float(self._rng.uniform(self._low, self._high))


class LognormalLatency(LatencyModel):
    """Heavy-tailed delay: ``base + Lognormal(mean, sigma)`` milliseconds.

    Wide-area control-plane latencies are famously heavy-tailed, and a
    heavy tail is what makes message *reordering* interesting: one slow
    matrices message can arrive after the sync round it preempted.
    ``mean`` and ``sigma`` parameterize the underlying normal (the
    standard numpy convention); ``base`` adds a constant propagation
    floor.
    """

    def __init__(
        self,
        mean: float,
        sigma: float,
        base: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        if base < 0:
            raise ValueError(f"base must be >= 0, got {base}")
        self._mean = mean
        self._sigma = sigma
        self._base = base
        self._rng = rng if rng is not None else np.random.default_rng()

    def sample(self) -> float:
        return self._base + float(self._rng.lognormal(self._mean, self._sigma))
