"""The discrete-event simulation core.

A :class:`Simulation` owns a virtual clock and an event queue.  Processes
(plain Python objects) schedule callbacks with :meth:`Simulation.at` /
:meth:`Simulation.after`; :meth:`Simulation.run` drains events in
timestamp order, advancing the clock.  Time never flows backwards and the
engine is single-threaded, so simulations are exactly reproducible.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.simulator.events import Event, EventQueue


class Simulation:
    """A virtual-time event loop."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._events_processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def at(
        self, time: float, action: Callable[[], None], priority: int = 0
    ) -> Event:
        """Schedule ``action`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        return self._queue.push(time, action, priority)

    def after(
        self, delay: float, action: Callable[[], None], priority: int = 0
    ) -> Event:
        """Schedule ``action`` ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self._queue.push(self._now + delay, action, priority)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events until the queue drains (or a limit is reached).

        Parameters
        ----------
        until:
            Stop before executing any event later than this time; the
            clock is left at ``until``.
        max_events:
            Safety valve against runaway simulations.

        Returns the final virtual time.
        """
        if self._running:
            raise RuntimeError("simulation is already running (re-entrant run)")
        self._running = True
        try:
            processed = 0
            while True:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                if max_events is not None and processed >= max_events:
                    break
                event = self._queue.pop()
                assert event is not None
                self._now = event.time
                event.action()
                self._events_processed += 1
                processed += 1
            return self._now
        finally:
            self._running = False

    def step(self) -> bool:
        """Execute exactly one event; returns ``False`` when none remain."""
        event = self._queue.pop()
        if event is None:
            return False
        self._now = event.time
        event.action()
        self._events_processed += 1
        return True

    @property
    def pending(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)
