"""Event primitives for the discrete-event engine.

Events are ordered by ``(time, priority, sequence)``: ties at the same
timestamp resolve by explicit priority, then insertion order, which makes
every simulation fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field


@dataclass(order=True)
class Event:
    """One scheduled callback.

    ``action`` is excluded from ordering; comparisons use only
    ``(time, priority, sequence)``.
    """

    time: float
    priority: int
    sequence: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True


class EventQueue:
    """A deterministic min-heap of events."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(
        self, time: float, action: Callable[[], None], priority: int = 0
    ) -> Event:
        """Schedule ``action`` at ``time``; returns the (cancellable) event."""
        if time != time or time == float("inf"):  # NaN or infinite
            raise ValueError(f"event time must be finite, got {time}")
        event = Event(
            time=time,
            priority=priority,
            sequence=next(self._counter),
            action=action,
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Timestamp of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
