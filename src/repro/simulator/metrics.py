"""Completion-time metrics.

Implements the paper's evaluation metrics (Section V-A):

- ``L`` — average per-tuple completion time;
- ``S_L`` — completion-time speedup of one algorithm over another,
  ``sum(l_baseline) / sum(l_algorithm)``;
- the windowed time series of Figure 10 (max / mean / min completion
  time over trailing bins of 2,000 tuples).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.quantiles import P2Quantile


class CompletionStats:
    """Per-tuple completion times and derived statistics."""

    def __init__(self, completions: np.ndarray, assignments: np.ndarray) -> None:
        completions = np.asarray(completions, dtype=np.float64)
        assignments = np.asarray(assignments, dtype=np.int64)
        if completions.shape != assignments.shape:
            raise ValueError("completions and assignments must align")
        if completions.size == 0:
            raise ValueError("need at least one completed tuple")
        if np.any(completions < 0):
            raise ValueError("completion times must be >= 0")
        self._completions = completions
        self._assignments = assignments

    @property
    def completions(self) -> np.ndarray:
        """Per-tuple completion times, stream order (read-only)."""
        view = self._completions.view()
        view.flags.writeable = False
        return view

    @property
    def assignments(self) -> np.ndarray:
        """Per-tuple destination instance (read-only)."""
        view = self._assignments.view()
        view.flags.writeable = False
        return view

    @property
    def m(self) -> int:
        """Number of tuples."""
        return self._completions.size

    @property
    def average_completion_time(self) -> float:
        """The paper's ``L`` metric."""
        return float(self._completions.mean())

    @property
    def total_completion_time(self) -> float:
        """Cumulated completion time (the numerator of ``L``)."""
        return float(self._completions.sum())

    def percentile(self, q: float, exact: bool = False) -> float:
        """Completion-time percentile (e.g. ``q=99`` for tail latency).

        Streams the completions through the O(1)-memory P² estimator by
        default — the same estimator the quality observatory runs online
        — so report percentiles and dashboard percentiles agree by
        construction.  ``exact=True`` is the fallback that selects
        ``np.percentile`` (full sort, linear interpolation) for tests
        and offline analysis.  The two paths are *not* bit-identical in
        general: P² maintains five markers by parabolic interpolation,
        so on adversarial inputs — notably duplicate-heavy streams,
        where many completions collapse onto few distinct values — the
        streaming estimate can sit between duplicated values where the
        exact percentile snaps onto one of them.  The deviation is
        bounded by the local value spacing (see
        ``test_percentile_duplicate_heavy_stream``); for small runs
        (five or fewer tuples) the P² path is exact anyway, since the
        estimator holds the whole sample.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if exact:
            return float(np.percentile(self._completions, q))
        if q == 0.0:
            return float(self._completions.min())
        if q == 100.0:
            return float(self._completions.max())
        estimator = P2Quantile(q / 100.0)
        estimator.observe_many(self._completions)
        return estimator.value

    @property
    def max_completion_time(self) -> float:
        """Worst per-tuple completion time."""
        return float(self._completions.max())

    def speedup_over(self, baseline: "CompletionStats") -> float:
        """``S_L = sum(l_baseline) / sum(l_self)`` (Section V-A)."""
        if baseline.m != self.m:
            raise ValueError(
                f"streams differ in length: baseline {baseline.m} vs {self.m}"
            )
        return baseline.total_completion_time / self.total_completion_time

    def instance_tuple_counts(self, k: int) -> np.ndarray:
        """Tuples routed to each instance."""
        return np.bincount(self._assignments, minlength=k)

    def time_series(self, bin_size: int = 2000) -> "TimeSeries":
        """Figure-10-style series: stats over consecutive bins of tuples."""
        if bin_size < 1:
            raise ValueError(f"bin_size must be >= 1, got {bin_size}")
        m = self.m
        edges = np.arange(0, m, bin_size)
        centers, mins, means, maxes = [], [], [], []
        for start in edges:
            window = self._completions[start:start + bin_size]
            if window.size == 0:  # pragma: no cover - unreachable by edges
                continue
            centers.append(start + window.size // 2)
            mins.append(float(window.min()))
            means.append(float(window.mean()))
            maxes.append(float(window.max()))
        return TimeSeries(
            index=np.array(centers, dtype=np.int64),
            minimum=np.array(mins),
            mean=np.array(means),
            maximum=np.array(maxes),
        )


@dataclass(frozen=True)
class TimeSeries:
    """Binned min/mean/max completion times along the stream."""

    index: np.ndarray
    minimum: np.ndarray
    mean: np.ndarray
    maximum: np.ndarray

    def __len__(self) -> int:
        return self.index.size


def aggregate_runs(values: list[float]) -> dict[str, float]:
    """Min / mean / max over repeated randomized runs (the paper reports
    "maximum, mean and minimum figures over the 100 executions")."""
    if not values:
        raise ValueError("need at least one run")
    array = np.asarray(values, dtype=np.float64)
    return {
        "min": float(array.min()),
        "mean": float(array.mean()),
        "max": float(array.max()),
    }
