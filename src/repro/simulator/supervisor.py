"""Worker supervision for the multi-process parallel data plane.

The parallel engine (:mod:`repro.simulator.parallel`) runs the shard
route loops in worker processes.  Before this module a crashed worker
was a hard ``RuntimeError`` for the whole run and a hung-but-alive
worker blocked the parent's ack wait forever.  The
:class:`WorkerSupervisor` turns both into routine, *recoverable*
events:

- **detection** — every dispatched segment carries a per-worker ack
  deadline; a worker that dies (process exit, external SIGKILL, an
  injected crash fault) or misses the deadline (GC pause, live-lock,
  an injected hang fault) is flagged;
- **kill + respawn** — the failed worker is terminated (escalating to
  ``kill()``), a fresh process is spawned from the frozen
  :class:`~repro.core.multisource.ShardWorkerSpec` after an
  exponential backoff, and the *same* segment is re-dispatched;
- **degraded mode** — after ``max_respawns`` kills, the worker's
  shards are routed inline by the parent for the rest of the run (or,
  under ``degraded_policy="raise"``, the failure is escalated).

Respawn-replay is safe **by construction**: workers route
speculatively against frozen shared-memory state (the parent writes
every input region before dispatch and workers only write their own
output regions), and the parent commits only merged prefixes.  An
unacked segment is therefore uncommitted, its arena inputs are still
exactly as dispatched, and re-routing it — on a fresh worker or in the
parent — replays the identical IEEE-754 operation sequence.  A run
that loses and respawns workers is **bit-identical** to an undisturbed
run, and hence to the sequential engines (gated by
``tests/simulator/test_supervision.py`` and
``python -m repro.experiments chaos --parallel``).

The supervisor is always in the loop: without an explicit
:class:`SupervisionConfig` the engine runs a *strict* policy
(``max_respawns=0``, ``degraded_policy="raise"``, a generous
:data:`DEFAULT_ACK_DEADLINE_S`), so even unsupervised runs surface a
hung worker as a deadline error instead of spinning forever.

All supervisor clocks are wall-clock (``perf_counter``) on the parent
side only; no deterministic quantity ever reads them, so the engine's
seed discipline is untouched.
"""

from __future__ import annotations

import multiprocessing.connection
import time
from dataclasses import dataclass
from time import perf_counter

from repro.telemetry.recorder import NULL_RECORDER

#: ack deadline (seconds per segment) when no SupervisionConfig is given —
#: generous enough for any honest segment, finite so a hung worker trips
#: an error instead of blocking the parent forever
DEFAULT_ACK_DEADLINE_S = 120.0

#: how long the supervisor's multiplexed ack wait sleeps between checks
_POLL_S = 0.05

#: what to do once a worker exhausts its respawn budget
DEGRADED_POLICIES = ("inline", "raise")


@dataclass(frozen=True)
class SupervisionConfig:
    """Policy knobs for :class:`WorkerSupervisor`.

    Parameters
    ----------
    ack_deadline_s:
        Per-segment ack deadline.  A worker that has not acked a
        dispatched segment within this many seconds is declared hung,
        killed, and (budget permitting) respawned.  The clock resets on
        every (re)dispatch.
    max_respawns:
        Kill + respawn budget *per worker*.  ``0`` disables healing:
        the first failure escalates straight to the degraded policy.
    backoff_base_s, backoff_factor, backoff_max_s:
        Exponential backoff before respawn attempt ``n``:
        ``min(backoff_base_s * backoff_factor**(n-1), backoff_max_s)``
        seconds.  Purely wall-clock; never affects results.
    degraded_policy:
        ``"inline"`` — after the respawn budget is spent, the parent
        routes the worker's shards itself for the rest of the run
        (bit-identical: the inline router replays the exact worker
        code path over the same arena).  ``"raise"`` — escalate the
        failure as a ``RuntimeError`` (the pre-supervision behaviour).
    spawn_grace_s:
        Extra allowance added to the ack deadline of the *first*
        segment each worker incarnation answers.  A freshly (re)spawned
        process still pays interpreter startup and imports — expensive
        under the ``spawn`` start method — and must not be misread as
        hung before it has ever acked.
    """

    ack_deadline_s: float = 30.0
    max_respawns: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 1.0
    degraded_policy: str = "inline"
    spawn_grace_s: float = 10.0

    def __post_init__(self) -> None:
        if self.ack_deadline_s <= 0.0:
            raise ValueError(
                f"ack_deadline_s must be > 0, got {self.ack_deadline_s}"
            )
        if self.max_respawns < 0:
            raise ValueError(
                f"max_respawns must be >= 0, got {self.max_respawns}"
            )
        if self.backoff_base_s < 0.0:
            raise ValueError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_max_s < self.backoff_base_s:
            raise ValueError(
                "backoff_max_s must be >= backoff_base_s, got "
                f"{self.backoff_max_s} < {self.backoff_base_s}"
            )
        if self.degraded_policy not in DEGRADED_POLICIES:
            raise ValueError(
                f"degraded_policy must be one of {DEGRADED_POLICIES}, "
                f"got {self.degraded_policy!r}"
            )
        if self.spawn_grace_s < 0.0:
            raise ValueError(
                f"spawn_grace_s must be >= 0, got {self.spawn_grace_s}"
            )

    @classmethod
    def strict(cls) -> "SupervisionConfig":
        """The implicit policy of unsupervised runs: detect, never heal.

        Reads :data:`DEFAULT_ACK_DEADLINE_S` at call time so tests can
        shrink the deadline without rebuilding configs.
        """
        return cls(
            ack_deadline_s=DEFAULT_ACK_DEADLINE_S,
            max_respawns=0,
            degraded_policy="raise",
        )

    def summary(self) -> dict:
        """Plain-dict form for run reports."""
        return {
            "ack_deadline_s": self.ack_deadline_s,
            "max_respawns": self.max_respawns,
            "backoff_base_s": self.backoff_base_s,
            "backoff_factor": self.backoff_factor,
            "backoff_max_s": self.backoff_max_s,
            "degraded_policy": self.degraded_policy,
            "spawn_grace_s": self.spawn_grace_s,
        }


class WorkerFailure(RuntimeError):
    """A worker failed and the supervision policy forbids healing it."""


class WorkerSupervisor:
    """Spawns, watches, heals, and retires shard-routing workers.

    The supervisor owns the worker processes and their pipes.  The
    engine drives it with one call per control-quiet segment
    (:meth:`route_segment`) and one at teardown (:meth:`shutdown`); it
    never touches the processes directly.

    Parameters
    ----------
    ctx:
        The ``multiprocessing`` context (start method already chosen).
    target:
        The worker entry point (``_worker_main``); called with
        ``(spec, layout, shm_name, shard_ids, conn,
        flight_every, lineage_every, worker_faults)``.
    spec, layout, shm_name:
        The frozen respawn recipe: everything a fresh worker needs to
        attach the arena and route, shipped by value.
    worker_shards:
        ``worker_shards[w]`` = shard ids owned by worker ``w``.
    flight_every:
        Flight-recorder sampling stride shipped to workers (0 = off).
    lineage_every:
        Lineage-tracer sampling stride shipped to workers (0 = off).
    config:
        The supervision policy; ``None`` selects
        :meth:`SupervisionConfig.strict` (detect-only).
    worker_faults:
        Scripted :class:`~repro.faults.plan.WorkerFault` events to ship
        into the workers (chaos testing).  Faults already fired are
        filtered out of a respawned worker's list so a replayed segment
        cannot re-crash deterministically forever.
    inline_router:
        ``inline_router(shard, start, end)`` routes one shard's slice
        in the parent — the degraded-mode fallback.  Must replay the
        worker code path exactly (the engine passes a closure over
        ``_route_shard``).
    injector:
        Optional :class:`~repro.faults.injector.FaultInjector` to book
        injected worker faults and respawns into.
    recorder:
        Telemetry recorder for lifecycle tracer events.
    flight:
        Optional :class:`~repro.telemetry.flightrecorder.FlightRecorder`;
        lifecycle events land in its (non-deterministic) worker-event
        side channel.
    """

    def __init__(
        self,
        *,
        ctx,
        target,
        spec,
        layout,
        shm_name: str,
        worker_shards: list[list[int]],
        flight_every: int,
        lineage_every: int = 0,
        config: "SupervisionConfig | None" = None,
        worker_faults: tuple = (),
        inline_router=None,
        injector=None,
        recorder=NULL_RECORDER,
        flight=None,
    ) -> None:
        self._ctx = ctx
        self._target = target
        self._spec = spec
        self._layout = layout
        self._shm_name = shm_name
        self._worker_shards = worker_shards
        self._flight_every = flight_every
        self._lineage_every = lineage_every
        self._enabled = config is not None
        self._config = config if config is not None else SupervisionConfig.strict()
        self._inline_router = inline_router
        self._injector = injector
        self._recorder = recorder if recorder is not None else NULL_RECORDER
        self._flight = flight

        n = len(worker_shards)
        self._n = n
        self._procs: list = [None] * n
        self._conns: list = [None] * n
        self._degraded = [False] * n
        self._respawns = [0] * n
        #: True until an incarnation's first ok ack — its next deadline
        #: carries the spawn grace on top of the ack deadline
        self._warming = [True] * n
        #: armed faults of each worker's *current incarnation*, keyed by
        #: segment — mirrors the dict the worker itself pops from
        self._armed: list[dict] = [
            {f.segment: f for f in worker_faults if f.worker == w}
            for w in range(n)
        ]
        self._segment_index = 0
        self._crashes_detected = 0
        self._hangs_detected = 0
        self._worker_errors = 0
        self._replayed_segments = 0
        self._inline_segments = 0
        self._faults_shipped = {"crash": 0, "hang": 0, "stall": 0}
        self._lifecycle: list[dict] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def config(self) -> SupervisionConfig:
        return self._config

    @property
    def segments_dispatched(self) -> int:
        return self._segment_index

    def start(self) -> None:
        """Spawn every worker (incarnation 0)."""
        for w in range(self._n):
            self._spawn(w)

    def _spawn(self, w: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        incarnation_faults = tuple(
            sorted(self._armed[w].values(), key=lambda f: f.segment)
        )
        process = self._ctx.Process(
            target=self._target,
            args=(
                self._spec,
                self._layout,
                self._shm_name,
                self._worker_shards[w],
                child_conn,
                self._flight_every,
                self._lineage_every,
                incarnation_faults,
            ),
            name=f"posg-shard-worker-{w}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._procs[w] = process
        self._conns[w] = parent_conn
        self._warming[w] = True

    def _kill(self, w: int) -> None:
        """Force one worker down: terminate, then escalate to kill."""
        process = self._procs[w]
        if process is None:
            return
        if process.is_alive():
            process.terminate()
            process.join(timeout=2)
            if process.is_alive():
                process.kill()
                process.join(timeout=5)
        else:
            process.join(timeout=1)
        conn = self._conns[w]
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        self._conns[w] = None

    def shutdown(self) -> None:
        """Teardown with escalation; never raises, never leaves zombies.

        Graceful first (the ``None`` sentinel), then ``terminate()``,
        then ``kill()`` for anything still alive — a hung or wedged
        worker cannot outlive an aborted run.
        """
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.send(None)
            except (OSError, BrokenPipeError):
                pass
        for process in self._procs:
            if process is None:
                continue
            process.join(timeout=5)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
            if process.is_alive():
                process.kill()
                process.join(timeout=5)
        for w, conn in enumerate(self._conns):
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
                self._conns[w] = None

    # ------------------------------------------------------------------
    # the per-segment drive
    # ------------------------------------------------------------------
    def route_segment(self, start: int, end: int) -> float:
        """Route ``[start, end)`` across all workers; heal as needed.

        Returns the wall-clock seconds the parent spent waiting
        (the engine's ``merge_stall`` contribution).  Raises
        :class:`WorkerFailure` only when a worker fails and the policy
        says ``raise`` (strict mode, or inline budget exhausted under
        ``degraded_policy="raise"``).
        """
        seg = self._segment_index
        self._segment_index += 1
        stall0 = perf_counter()
        deadline = self._config.ack_deadline_s
        pending: dict[int, float] = {}
        for w in range(self._n):
            if self._degraded[w]:
                self._route_inline(w, start, end)
            else:
                self._dispatch(w, start, end, seg)
                pending[w] = perf_counter() + deadline + (
                    self._config.spawn_grace_s if self._warming[w] else 0.0
                )
        while pending:
            ready = multiprocessing.connection.wait(
                [self._conns[w] for w in pending], timeout=_POLL_S
            )
            ready_set = set(ready)
            now = perf_counter()
            for w in sorted(pending):
                conn = self._conns[w]
                if conn in ready_set:
                    try:
                        reply = conn.recv()
                    except (EOFError, OSError):
                        self._heal(w, "crash", seg, start, end, pending)
                        continue
                    if reply[0] == "ok":
                        self._warming[w] = False
                        del pending[w]
                    else:  # ("error", text): in-worker exception
                        self._heal(
                            w, "error", seg, start, end, pending,
                            detail=reply[1],
                        )
                elif not self._procs[w].is_alive():
                    self._heal(w, "crash", seg, start, end, pending)
                elif now > pending[w]:
                    self._heal(w, "hang", seg, start, end, pending)
        return perf_counter() - stall0

    def _dispatch(self, w: int, start: int, end: int, seg: int) -> None:
        fault = self._armed[w].pop(seg, None)
        if fault is not None:
            # booked at dispatch: the fault *will* fire in the worker,
            # even when (e.g. a short hang) the parent can't detect it
            self._faults_shipped[fault.kind] += 1
            if self._injector is not None:
                self._injector.note_worker_fault(fault)
            self._event("worker_fault_shipped", w, seg, fault_kind=fault.kind)
        try:
            self._conns[w].send((start, end, seg))
        except (OSError, BrokenPipeError):
            # death between segments; the ack wait will heal it, but the
            # send itself must not take the run down
            pass

    def _route_inline(self, w: int, start: int, end: int) -> None:
        """Degraded fallback: the parent routes the worker's shards."""
        if self._inline_router is None:
            raise WorkerFailure(
                f"worker {w} is degraded but no inline router is available"
            )
        for shard in self._worker_shards[w]:
            self._inline_router(shard, start, end)
        self._inline_segments += 1

    def _heal(
        self,
        w: int,
        cause: str,
        seg: int,
        start: int,
        end: int,
        pending: dict,
        detail: str | None = None,
    ) -> None:
        """One worker failed this segment: kill, then respawn or degrade."""
        self._kill(w)
        exitcode = getattr(self._procs[w], "exitcode", None)
        if cause == "crash":
            self._crashes_detected += 1
        elif cause == "hang":
            self._hangs_detected += 1
        else:
            self._worker_errors += 1
        self._event(
            f"worker_{cause}_detected", w, seg,
            exitcode=exitcode,
            respawns_used=self._respawns[w],
        )
        # faults at or before the failed segment belong to the dead
        # incarnation; dropping them keeps a replayed segment from
        # re-firing the same scripted crash forever
        self._armed[w] = {
            s: f for s, f in self._armed[w].items() if s > seg
        }
        if self._respawns[w] < self._config.max_respawns:
            self._respawns[w] += 1
            backoff = min(
                self._config.backoff_base_s
                * self._config.backoff_factor ** (self._respawns[w] - 1),
                self._config.backoff_max_s,
            )
            if backoff > 0.0:
                time.sleep(backoff)
            self._spawn(w)
            if self._injector is not None:
                self._injector.note_worker_respawn(w)
            self._event(
                "worker_respawned", w, seg, attempt=self._respawns[w]
            )
            self._replayed_segments += 1
            self._dispatch(w, start, end, seg)
            # a fresh incarnation is always warming
            pending[w] = (
                perf_counter()
                + self._config.ack_deadline_s
                + self._config.spawn_grace_s
            )
            return
        # respawn budget spent
        pending.pop(w, None)
        if self._config.degraded_policy == "raise":
            message = (
                f"parallel worker {w} {cause} on segment {seg} "
                f"(exit code {exitcode}, "
                f"{self._respawns[w]}/{self._config.max_respawns} "
                "respawns used)"
            )
            if detail:
                message += f":\n{detail}"
            raise WorkerFailure(message)
        self._degraded[w] = True
        self._event("worker_degraded", w, seg)
        self._route_inline(w, start, end)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _event(self, kind: str, worker: int, segment: int, **extra) -> None:
        record = {"event": kind, "worker": worker, "segment": segment}
        record.update({k: v for k, v in extra.items() if v is not None})
        self._lifecycle.append(record)
        if self._recorder.enabled:
            self._recorder.tracer.emit(kind, worker=worker, segment=segment, **extra)
        if self._flight is not None:
            self._flight.record_worker_event(worker, kind, segment)

    @property
    def failures_detected(self) -> int:
        return self._crashes_detected + self._hangs_detected + self._worker_errors

    @property
    def degraded_workers(self) -> list[int]:
        return [w for w in range(self._n) if self._degraded[w]]

    def report(self) -> dict:
        """The run report's ``supervision`` block.

        ``recovered`` means every detected failure was healed by a
        respawn — the run finished at full worker strength.  A degraded
        run still produces bit-identical output, but the report flags
        it so operators know capacity was lost.
        """
        return {
            "enabled": self._enabled,
            "config": self._config.summary(),
            "workers": self._n,
            "segments": self._segment_index,
            "crashes_detected": self._crashes_detected,
            "hangs_detected": self._hangs_detected,
            "worker_errors": self._worker_errors,
            "respawns": list(self._respawns),
            "respawns_total": sum(self._respawns),
            "replayed_segments": self._replayed_segments,
            "degraded_workers": self.degraded_workers,
            "inline_segments": self._inline_segments,
            "injected_worker_faults": dict(self._faults_shipped),
            "lifecycle": list(self._lifecycle),
            "recovered": not any(self._degraded),
        }
