"""Event-driven reference implementation of the scheduling stage.

:class:`StageTopology` builds the paper's topology — source, scheduler
operator ``S``, ``k`` instances of operator ``O`` — as explicit processes
on the generic :class:`~repro.simulator.engine.Simulation` event loop.

It produces results identical (tuple-for-tuple) to the optimized
:func:`~repro.simulator.run.simulate_stream` fast path; the test suite
enforces the equivalence.  Use this implementation when extending the
topology (multiple stages, backpressure experiments); use the fast path
for the parameter sweeps.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.grouping import GroupingPolicy, InstanceAgent, POSGGrouping
from repro.core.messages import SyncRequest
from repro.core.scheduler import SchedulerState
from repro.simulator.engine import Simulation
from repro.simulator.metrics import CompletionStats
from repro.simulator.network import ConstantLatency, LatencyModel
from repro.simulator.run import (
    PolicyFactory,
    SimulationResult,
    _as_latency_list,
)
from repro.workloads.nonstationary import LoadShiftScenario
from repro.workloads.synthetic import Stream

#: event priorities — control deliveries beat data arrivals at equal time,
#: matching the fast path's "deliver every message due by now" semantics
PRIORITY_CONTROL = -1
PRIORITY_DATA = 0


@dataclass
class _InFlightTuple:
    """A data tuple travelling through the stage."""

    index: int
    item: int
    emitted_at: float
    sync_request: SyncRequest | None = None


class _InstanceProcess:
    """One operator instance: a FIFO queue and a busy/idle loop."""

    def __init__(
        self,
        instance_id: int,
        topology: "StageTopology",
        agent: InstanceAgent | None,
    ) -> None:
        self.instance_id = instance_id
        self.topology = topology
        self.agent = agent
        self.queue: deque[_InFlightTuple] = deque()
        self.busy = False

    def on_tuple(self, tup: _InFlightTuple) -> None:
        """A data tuple reached this instance's input queue."""
        self.queue.append(tup)
        if not self.busy:
            self._start_next()

    def _start_next(self) -> None:
        tup = self.queue.popleft()
        self.busy = True
        sim = self.topology.sim
        execution_time = self.topology.execution_time(tup.index, tup.item, self.instance_id)
        sim.after(execution_time, lambda: self._finish(tup, execution_time))

    def _finish(self, tup: _InFlightTuple, execution_time: float) -> None:
        sim = self.topology.sim
        self.topology.record_completion(tup, sim.now)
        if self.agent is not None:
            messages = self.agent.on_executed(tup.item, execution_time, tup.sync_request)
            for message in messages:
                self.topology.send_control(message)
        if self.queue:
            self._start_next()
        else:
            self.busy = False


class StageTopology:
    """Source -> scheduler -> ``k`` instances, on the event engine."""

    def __init__(
        self,
        k: int,
        policy: GroupingPolicy | PolicyFactory,
        scenario: LoadShiftScenario | None = None,
        data_latency: "LatencyModel | float | list" = 0.0,
        control_latency: LatencyModel | float = 1.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.scenario = scenario if scenario is not None else LoadShiftScenario.constant(k)
        if self.scenario.k < k:
            raise ValueError(
                f"scenario covers {self.scenario.k} instances but k={k} requested"
            )
        self._data_latency = _as_latency_list(data_latency, k)
        self._control_latency = (
            control_latency if isinstance(control_latency, LatencyModel)
            else ConstantLatency(float(control_latency))
        )
        self._policy_or_factory = policy
        self._rng = rng
        # bound at run() time
        self.sim = Simulation()
        self.policy: GroupingPolicy | None = None
        self._stream: Stream | None = None
        self._position = 0
        self._completions: np.ndarray | None = None
        self._assignments: np.ndarray | None = None
        self._completed = 0
        self._control_messages = 0
        self._control_bits = 0
        self._state_transitions: list[tuple[int, SchedulerState]] = []
        self._instances: list[_InstanceProcess] = []

    # ------------------------------------------------------------------
    # wiring helpers used by the processes
    # ------------------------------------------------------------------
    def execution_time(self, index: int, item: int, instance: int) -> float:
        """True execution time of a tuple on an instance (with multipliers)."""
        assert self._stream is not None
        return self._stream.time_of(item) * self.scenario.multiplier(instance, index)

    def record_completion(self, tup: _InFlightTuple, finish: float) -> None:
        assert self._completions is not None and self._assignments is not None
        self._completions[tup.index] = finish - tup.emitted_at
        self._completed += 1

    def send_control(self, message) -> None:
        """Route an instance's control message to the scheduler."""
        self._control_messages += 1
        self._control_bits += message.size_bits()
        delay = self._control_latency.sample()
        self.sim.after(
            delay, lambda: self._deliver_control(message), priority=PRIORITY_CONTROL
        )

    def _deliver_control(self, message) -> None:
        assert self.policy is not None
        self.policy.on_control(message)

    # ------------------------------------------------------------------
    # the scheduler process
    # ------------------------------------------------------------------
    def _on_source_tuple(self, index: int) -> None:
        assert self.policy is not None and self._stream is not None
        self._position = index
        item = int(self._stream.items[index])
        track = isinstance(self.policy, POSGGrouping)
        before = self.policy.state if track else None
        decision = self.policy.route(item)
        if track and self.policy.state is not before:
            self._state_transitions.append((index, self.policy.state))
        if decision.sync_request is not None:
            self._control_messages += 1
            self._control_bits += decision.sync_request.size_bits()
        assert self._assignments is not None
        self._assignments[index] = decision.instance
        tup = _InFlightTuple(
            index=index,
            item=item,
            emitted_at=self.sim.now,
            sync_request=decision.sync_request,
        )
        instance = self._instances[decision.instance]
        self.sim.after(
            self._data_latency[decision.instance].sample(),
            lambda: instance.on_tuple(tup),
            priority=PRIORITY_DATA,
        )

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def run(self, stream: Stream) -> SimulationResult:
        """Simulate the whole stream; returns the same result type as the
        fast path."""
        if self._stream is not None:
            raise RuntimeError("a StageTopology can only run one stream")
        self._stream = stream
        position = self  # oracle closes over the topology's position

        def oracle(item: int, instance: int) -> float:
            return stream.time_of(item) * self.scenario.multiplier(
                instance, position._position
            )

        policy = self._policy_or_factory
        if not isinstance(policy, GroupingPolicy):
            policy = policy(oracle)
        policy.setup(self.k, self._rng)
        self.policy = policy
        self._instances = [
            _InstanceProcess(i, self, policy.create_instance_agent(i))
            for i in range(self.k)
        ]
        m = stream.m
        self._completions = np.zeros(m, dtype=np.float64)
        self._assignments = np.zeros(m, dtype=np.int64)
        self._completed = 0
        # POSG state tracking starts from the initial state.
        self._state_transitions = []

        for index in range(m):
            arrival = float(stream.arrivals[index])
            self.sim.at(
                arrival,
                (lambda idx: lambda: self._on_source_tuple(idx))(index),
                priority=PRIORITY_DATA,
            )
        self.sim.run()
        if self._completed != m:  # pragma: no cover - invariant guard
            raise RuntimeError(
                f"simulation ended with {self._completed}/{m} tuples completed"
            )
        return SimulationResult(
            stats=CompletionStats(self._completions, self._assignments),
            policy=policy,
            state_transitions=self._state_transitions,
            control_messages=self._control_messages,
            control_bits=self._control_bits,
        )
