"""Fast direct simulation of the single scheduling stage.

This is the workhorse behind every simulated figure of the paper.  It
exploits the structure of the topology (one scheduler in front of ``k``
FIFO instances, constant-rate arrivals) to avoid a full event loop for
the data plane:

- tuples are processed in arrival order; routing a tuple to instance
  ``i`` sets ``start = max(arrival + data_latency, busy_until[i])`` and
  ``finish = start + w``, which is exactly FIFO non-preemptive service;
- control messages (matrices, sync replies) are generated when their
  carrying tuple *finishes executing* and delivered to the scheduler
  after a control-plane latency, through a small priority queue drained
  before every routing decision.

Correctness relies on one invariant: a control message's delivery time is
never earlier than its generating tuple's arrival time, so draining the
queue up to the current arrival timestamp observes every message that a
full event-driven simulation would have delivered.  The equivalence is
tested against :class:`repro.simulator.topology.StageTopology`.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.core.grouping import GroupingPolicy, POSGGrouping
from repro.core.scheduler import SchedulerState
from repro.simulator.metrics import CompletionStats
from repro.simulator.network import ConstantLatency, LatencyModel
from repro.workloads.nonstationary import LoadShiftScenario
from repro.workloads.synthetic import Stream

#: oracle signature handed to policy factories: (item, instance) -> true
#: execution time at the *current* stream position
Oracle = Callable[[int, int], float]
PolicyFactory = Callable[[Oracle], GroupingPolicy]


@dataclass
class SimulationResult:
    """Everything a run produced."""

    stats: CompletionStats
    policy: GroupingPolicy
    #: (tuple_index, new_state) whenever a POSG scheduler changed state
    state_transitions: list[tuple[int, SchedulerState]] = field(default_factory=list)
    control_messages: int = 0
    control_bits: int = 0
    #: optional backlog trace: (sample_index, per-instance pending work in
    #: ms at that arrival), produced when ``sample_queues_every`` is set
    queue_samples: "np.ndarray | None" = None
    queue_sample_indices: "np.ndarray | None" = None

    @property
    def average_completion_time(self) -> float:
        """The paper's ``L`` metric, in milliseconds."""
        return self.stats.average_completion_time

    def run_entry_index(self) -> int | None:
        """Stream position where the POSG scheduler first entered RUN."""
        for index, state in self.state_transitions:
            if state is SchedulerState.RUN:
                return index
        return None


def _as_latency(latency: LatencyModel | float) -> LatencyModel:
    if isinstance(latency, LatencyModel):
        return latency
    return ConstantLatency(float(latency))


def _as_latency_list(
    latency: "LatencyModel | float | list", k: int
) -> list[LatencyModel]:
    """Normalize a data-latency spec to one model per instance.

    Accepts a single model/number (shared by all instances) or a list of
    ``k`` models/numbers (heterogeneous network paths, used by the
    latency-aware scheduling extension).
    """
    if isinstance(latency, (list, tuple)):
        if len(latency) != k:
            raise ValueError(
                f"need one data latency per instance: got {len(latency)} for k={k}"
            )
        return [_as_latency(entry) for entry in latency]
    shared = _as_latency(latency)
    return [shared] * k


def simulate_stream(
    stream: Stream,
    policy: GroupingPolicy | PolicyFactory,
    k: int = 5,
    scenario: LoadShiftScenario | None = None,
    data_latency: "LatencyModel | float | list" = 0.0,
    control_latency: LatencyModel | float = 1.0,
    rng: np.random.Generator | None = None,
    sample_queues_every: int | None = None,
) -> SimulationResult:
    """Simulate one stream through one grouping policy.

    Parameters
    ----------
    stream:
        The materialized input stream (items, base times, arrivals).
    policy:
        A :class:`~repro.core.grouping.GroupingPolicy`, or a factory
        called with the simulation's oracle (for the Full Knowledge
        baseline, which needs exact execution times).
    k:
        Number of downstream operator instances.
    scenario:
        Per-instance execution-time multipliers; uniform instances when
        omitted.  The scenario must cover ``k`` instances.
    data_latency, control_latency:
        Network models for tuples and control messages, in milliseconds.
        ``data_latency`` additionally accepts a length-``k`` list for
        heterogeneous per-instance network paths.
    rng:
        Seeds the policy's internal randomness (hash functions, ...).
    sample_queues_every:
        When set, record every instance's pending work (milliseconds of
        backlog) at every N-th arrival; the trace lands in
        ``SimulationResult.queue_samples``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if scenario is None:
        scenario = LoadShiftScenario.constant(k)
    if scenario.k < k:
        raise ValueError(
            f"scenario covers {scenario.k} instances but k={k} requested"
        )
    data_lat = _as_latency_list(data_latency, k)
    control_lat = _as_latency(control_latency)

    # Oracle closure for Full Knowledge: reads the loop's current index.
    position = [0]

    def oracle(item: int, instance: int) -> float:
        return stream.time_of(item) * scenario.multiplier(instance, position[0])

    if not isinstance(policy, GroupingPolicy):
        policy = policy(oracle)
    policy.setup(k, rng)

    agents = [policy.create_instance_agent(instance) for instance in range(k)]
    has_agents = any(agent is not None for agent in agents)
    track_states = isinstance(policy, POSGGrouping)
    previous_state = policy.state if track_states else None

    items = stream.items
    base_times = stream.base_times
    arrivals = stream.arrivals
    m = stream.m

    busy_until = [0.0] * k
    completions = np.empty(m, dtype=np.float64)
    assignments = np.empty(m, dtype=np.int64)
    control_queue: list[tuple[float, int, object]] = []
    control_seq = 0
    control_messages = 0
    control_bits = 0
    state_transitions: list[tuple[int, SchedulerState]] = []
    if sample_queues_every is not None and sample_queues_every < 1:
        raise ValueError(
            f"sample_queues_every must be >= 1, got {sample_queues_every}"
        )
    queue_samples: list[list[float]] = []
    queue_sample_indices: list[int] = []

    for j in range(m):
        arrival = arrivals[j]
        position[0] = j
        if sample_queues_every is not None and j % sample_queues_every == 0:
            queue_sample_indices.append(j)
            queue_samples.append(
                [max(0.0, busy - arrival) for busy in busy_until]
            )

        # Deliver every control message due by now (see module docstring).
        while control_queue and control_queue[0][0] <= arrival:
            _, _, message = heapq.heappop(control_queue)
            policy.on_control(message)

        decision = policy.route(int(items[j]))
        instance = decision.instance
        if not 0 <= instance < k:
            raise ValueError(
                f"policy routed tuple {j} to invalid instance {instance}"
            )

        at_instance = arrival + data_lat[instance].sample()
        start = at_instance if at_instance > busy_until[instance] else busy_until[instance]
        execution_time = base_times[j] * scenario.multiplier(instance, j)
        finish = start + execution_time
        busy_until[instance] = finish
        completions[j] = finish - arrival
        assignments[j] = instance

        if has_agents and agents[instance] is not None:
            messages = agents[instance].on_executed(
                int(items[j]), execution_time, decision.sync_request
            )
            for message in messages:
                delivery = finish + control_lat.sample()
                heapq.heappush(control_queue, (delivery, control_seq, message))
                control_seq += 1
                control_messages += 1
                control_bits += message.size_bits()
        if decision.sync_request is not None:
            control_messages += 1
            control_bits += decision.sync_request.size_bits()

        if track_states:
            current_state = policy.state
            if current_state is not previous_state:
                state_transitions.append((j, current_state))
                previous_state = current_state

    return SimulationResult(
        stats=CompletionStats(completions, assignments),
        policy=policy,
        state_transitions=state_transitions,
        control_messages=control_messages,
        control_bits=control_bits,
        queue_samples=(
            np.asarray(queue_samples) if sample_queues_every is not None else None
        ),
        queue_sample_indices=(
            np.asarray(queue_sample_indices, dtype=np.int64)
            if sample_queues_every is not None
            else None
        ),
    )
