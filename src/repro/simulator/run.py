"""Fast direct simulation of the single scheduling stage.

This is the workhorse behind every simulated figure of the paper.  It
exploits the structure of the topology (one scheduler in front of ``k``
FIFO instances, constant-rate arrivals) to avoid a full event loop for
the data plane:

- tuples are processed in arrival order; routing a tuple to instance
  ``i`` sets ``start = max(arrival + data_latency, busy_until[i])`` and
  ``finish = start + w``, which is exactly FIFO non-preemptive service;
- control messages (matrices, sync replies) are generated when their
  carrying tuple *finishes executing* and delivered to the scheduler
  after a control-plane latency, through a small priority queue drained
  before every routing decision.

Correctness relies on one invariant: a control message's delivery time is
never earlier than its generating tuple's arrival time, so draining the
queue up to the current arrival timestamp observes every message that a
full event-driven simulation would have delivered.  The equivalence is
tested against :class:`repro.simulator.topology.StageTopology`.

Two engines implement these semantics:

- the **reference engine** (``chunk_size=0``) routes one tuple at a time
  through ``policy.route`` — simple, obviously correct, and slow;
- the **chunked engine** (default) processes the stream in
  control-quiet segments.  Scenario multipliers and latencies are
  hoisted out of the loop, POSG's greedy routing runs through the
  scheduler's pre-gathered block router
  (:meth:`~repro.core.scheduler.POSGScheduler.begin_block`), and
  instance-side sketch maintenance is folded in exact-order batches
  between FSM window boundaries.  Every floating-point operation matches
  the reference engine bit for bit — identical completions,
  assignments, state transitions, control traffic and queue samples —
  which ``tests/simulator/test_chunked_equivalence.py`` asserts.
"""

from __future__ import annotations

import bisect
import heapq
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.core.grouping import (
    FullKnowledgeGrouping,
    GroupingPolicy,
    POSGGrouping,
    RoundRobinGrouping,
)
from repro.core.scheduler import SchedulerState
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.simulator.metrics import CompletionStats
from repro.simulator.network import ConstantLatency, LatencyModel
from repro.telemetry.audit import AuditConfig, EstimatorAudit
from repro.telemetry.flightrecorder import FlightRecorder, FlightRecorderConfig
from repro.telemetry.lineage import LineageConfig, LineageTracer
from repro.telemetry.recorder import NULL_RECORDER
from repro.workloads.nonstationary import LoadShiftScenario
from repro.workloads.synthetic import Stream

#: oracle signature handed to policy factories: (item, instance) -> true
#: execution time at the *current* stream position
Oracle = Callable[[int, int], float]
PolicyFactory = Callable[[Oracle], GroupingPolicy]

_INFINITY = float("inf")


@dataclass
class SimulationResult:
    """Everything a run produced."""

    stats: CompletionStats
    policy: GroupingPolicy
    #: (tuple_index, new_state) whenever a POSG scheduler changed state
    state_transitions: list[tuple[int, SchedulerState]] = field(default_factory=list)
    control_messages: int = 0
    control_bits: int = 0
    #: optional backlog trace: (sample_index, per-instance pending work in
    #: ms at that arrival), produced when ``sample_queues_every`` is set
    queue_samples: "np.ndarray | None" = None
    queue_sample_indices: "np.ndarray | None" = None
    #: the fault injector that ran (``None`` for fault-free runs); holds
    #: the plan summary and the injected-fault counters
    faults: "FaultInjector | None" = None
    #: the estimator audit that sampled the run (``None`` when disabled);
    #: carries the streaming error quantiles and Theorem 4.3 tallies
    audit: "EstimatorAudit | None" = None
    #: the cross-shard flight recorder (``None`` when disabled); holds
    #: the per-shard causal timelines and sampled routing decisions
    flight: "FlightRecorder | None" = None
    #: the per-tuple lineage tracer (``None`` when disabled); holds the
    #: sampled span chains and the latency decomposition / SLO status
    lineage: "LineageTracer | None" = None
    #: parallel-engine accounting (``None`` for single-process runs):
    #: workers, start method, shard/worker tuple counts, segment and
    #: speculation tallies — see ``repro.simulator.parallel``
    parallel: "dict | None" = None

    @property
    def average_completion_time(self) -> float:
        """The paper's ``L`` metric, in milliseconds."""
        return self.stats.average_completion_time

    def run_entry_index(self) -> int | None:
        """Stream position where the POSG scheduler first entered RUN."""
        for index, state in self.state_transitions:
            if state is SchedulerState.RUN:
                return index
        return None


def _as_latency(latency: LatencyModel | float) -> LatencyModel:
    if isinstance(latency, LatencyModel):
        return latency
    return ConstantLatency(float(latency))


def _as_latency_list(
    latency: "LatencyModel | float | list", k: int
) -> list[LatencyModel]:
    """Normalize a data-latency spec to one model per instance.

    Accepts a single model/number (shared by all instances) or a list of
    ``k`` models/numbers (heterogeneous network paths, used by the
    latency-aware scheduling extension).
    """
    if isinstance(latency, (list, tuple)):
        if len(latency) != k:
            raise ValueError(
                f"need one data latency per instance: got {len(latency)} for k={k}"
            )
        return [_as_latency(entry) for entry in latency]
    shared = _as_latency(latency)
    return [shared] * k


def simulate_stream(
    stream: Stream,
    policy: GroupingPolicy | PolicyFactory,
    k: int = 5,
    scenario: LoadShiftScenario | None = None,
    data_latency: "LatencyModel | float | list" = 0.0,
    control_latency: LatencyModel | float = 1.0,
    rng: np.random.Generator | None = None,
    sample_queues_every: int | None = None,
    chunk_size: int = 2048,
    telemetry=None,
    faults: "FaultPlan | FaultInjector | None" = None,
    audit: "AuditConfig | EstimatorAudit | None" = None,
    flight: "FlightRecorderConfig | FlightRecorder | None" = None,
    lineage: "LineageConfig | LineageTracer | None" = None,
    profiler=None,
) -> SimulationResult:
    """Simulate one stream through one grouping policy.

    Parameters
    ----------
    stream:
        The materialized input stream (items, base times, arrivals).
    policy:
        A :class:`~repro.core.grouping.GroupingPolicy`, or a factory
        called with the simulation's oracle (for the Full Knowledge
        baseline, which needs exact execution times).
    k:
        Number of downstream operator instances.
    scenario:
        Per-instance execution-time multipliers; uniform instances when
        omitted.  The scenario must cover ``k`` instances.
    data_latency, control_latency:
        Network models for tuples and control messages, in milliseconds.
        ``data_latency`` additionally accepts a length-``k`` list for
        heterogeneous per-instance network paths.
    rng:
        Seeds the policy's internal randomness (hash functions, ...).
    sample_queues_every:
        When set, record every instance's pending work (milliseconds of
        backlog) at every N-th arrival; the trace lands in
        ``SimulationResult.queue_samples``.
    chunk_size:
        Tuples pre-gathered per control-quiet segment by the chunked
        engine.  ``0`` selects the per-tuple reference engine (slow;
        kept as the equivalence baseline).  Both engines produce
        bit-identical results.
    telemetry:
        Optional :class:`~repro.telemetry.recorder.TelemetryRecorder`.
        Run-level metrics (tuple counts, completion-time histogram,
        control traffic) are recorded once, *after* the loop, from the
        result arrays — identical under both engines by construction and
        free on the hot path.  To also capture scheduler/instance FSM
        events, construct the policy with the same recorder
        (``POSGGrouping(config, telemetry=recorder)``).
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan` (or a pre-built
        :class:`~repro.faults.injector.FaultInjector`) injecting seeded
        control-plane and instance faults.  An inactive plan is
        equivalent to no plan: the fault-free code paths run untouched,
        preserving bit-identical results.  With faults active both
        engines interpose at the same per-tuple points, so the run stays
        bit-identical across ``chunk_size`` settings.
    audit:
        Optional :class:`~repro.telemetry.audit.AuditConfig` (or a
        pre-built :class:`~repro.telemetry.audit.EstimatorAudit`)
        sampling every N-th routed tuple and comparing the scheduler's
        W/F estimate against the true execution time.  ``AuditConfig``
        requires a policy exposing a ``scheduler`` (POSG).  The audit
        only *reads* scheduler state at deterministic stream indices, so
        routing decisions and completions are bit-identical with the
        audit on or off, and — because both engines agree per tuple on
        ``(item, instance, execution_time)`` and the scheduler matrices
        are frozen between control deliveries — the sampled observations
        are bit-identical across engines.  The auditor lands in
        ``SimulationResult.audit``.
    flight:
        Optional
        :class:`~repro.telemetry.flightrecorder.FlightRecorderConfig`
        (or a pre-built
        :class:`~repro.telemetry.flightrecorder.FlightRecorder`)
        capturing causal per-shard timelines — sync requests/replies,
        delta folds, matrices broadcasts — plus every
        ``sample_every``-th routing decision with the owning shard's
        believed loads.  Requires a POSG-family policy.  The recorder
        only *reads* state at deterministic points, so results are
        bit-identical with it on or off, and the recorded timelines are
        bit-identical across all engines (the chunked engine routes
        flight-enabled runs through its per-tuple generic loop).  Lands
        in ``SimulationResult.flight``.
    lineage:
        Optional :class:`~repro.telemetry.lineage.LineageConfig` (or a
        pre-built :class:`~repro.telemetry.lineage.LineageTracer`)
        sampling every N-th tuple and recording its span chain —
        arrival, instance arrival, execution start/finish, the chosen
        instance with the scheduler's post-decision believed loads, and
        the instance's window-remaining count — from which the tracer
        derives the exact latency partition ``scheduling_delay +
        queue_wait + service_time == completion``.  Works with *any*
        policy (non-POSG policies record empty believed loads).  The
        tracer only *reads* engine state at deterministic stream
        indices, so results are bit-identical with it on or off, and the
        recorded timelines are bit-identical across all engines: the
        chunked engine replays sampled grid points inside its
        control-quiet segments (like the estimator audit) instead of
        dropping to the per-tuple loop.  Lands in
        ``SimulationResult.lineage``.
    profiler:
        Optional :class:`~repro.telemetry.profiler.PhaseProfiler`;
        engine phases (control/route/window_close/fold, plus
        hash/estimate inside the block router) are wrapped in spans
        under a root ``simulate`` span.  Purely additive timing — no
        effect on results.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if chunk_size < 0:
        raise ValueError(f"chunk_size must be >= 0, got {chunk_size}")
    if scenario is None:
        scenario = LoadShiftScenario.constant(k)
    if scenario.k < k:
        raise ValueError(
            f"scenario covers {scenario.k} instances but k={k} requested"
        )
    if sample_queues_every is not None and sample_queues_every < 1:
        raise ValueError(
            f"sample_queues_every must be >= 1, got {sample_queues_every}"
        )
    data_lat = _as_latency_list(data_latency, k)
    control_lat = _as_latency(control_latency)
    recorder = telemetry if telemetry is not None else NULL_RECORDER

    if isinstance(faults, FaultInjector):
        injector = faults if faults.active else None
    elif isinstance(faults, FaultPlan):
        injector = FaultInjector(faults, k=k, telemetry=recorder) if faults.active else None
    elif faults is None:
        injector = None
    else:
        raise TypeError(f"faults must be a FaultPlan or FaultInjector, got {faults!r}")

    if profiler is not None:
        profiler.start("simulate")
    try:
        if chunk_size == 0:
            result = _simulate_reference(
                stream, policy, k, scenario, data_lat, control_lat, rng,
                sample_queues_every, injector, audit, recorder, profiler,
                flight, lineage,
            )
        else:
            result = _simulate_chunked(
                stream, policy, k, scenario, data_lat, control_lat, rng,
                sample_queues_every, chunk_size, injector, audit, recorder,
                profiler, flight, lineage,
            )
    finally:
        if profiler is not None:
            profiler.stop()
    result.faults = injector
    if recorder.enabled:
        _record_run_telemetry(recorder, result, k)
    return result


def _record_run_telemetry(recorder, result: SimulationResult, k: int) -> None:
    """Fold one finished run into the recorder.

    Runs on the completed result arrays, so per-tuple and chunked engines
    record *identical* totals regardless of how the run was executed —
    the engines only have to agree on the result, which the equivalence
    suite already guarantees.
    """
    registry = recorder.registry
    stats = result.stats
    policy_name = getattr(result.policy, "name", "unknown")
    registry.counter(
        "sim_tuples_total", help="Tuples simulated end to end"
    ).inc(stats.m)
    registry.counter(
        "sim_control_messages_total", help="Control-plane messages exchanged"
    ).inc(result.control_messages)
    registry.counter(
        "sim_control_bits_total", help="Control-plane traffic in bits"
    ).inc(result.control_bits)
    registry.gauge(
        "sim_avg_completion_ms", help="Average per-tuple completion time (L)"
    ).set(stats.average_completion_time)
    registry.gauge(
        "sim_max_completion_ms", help="Worst per-tuple completion time"
    ).set(stats.max_completion_time)
    registry.histogram(
        "sim_completion_ms", help="Per-tuple completion times"
    ).observe_many(stats.completions)
    for instance, count in enumerate(stats.instance_tuple_counts(k)):
        registry.counter(
            "sim_instance_tuples_total",
            help="Tuples routed to each instance",
            labels={"instance": instance},
        ).inc(int(count))
    recorder.tracer.emit(
        "run_complete",
        policy=policy_name,
        m=stats.m,
        k=k,
        avg_completion_ms=stats.average_completion_time,
        control_messages=result.control_messages,
        control_bits=result.control_bits,
    )


def _prepare_audit(audit, policy, recorder) -> "EstimatorAudit | None":
    """Resolve the ``audit=`` argument once the policy exists.

    Called by the engines *after* factory resolution and ``setup`` so an
    :class:`AuditConfig` can bind to the policy's scheduler.  A pre-built
    :class:`EstimatorAudit` passes through untouched (callers wire its
    telemetry themselves).
    """
    if audit is None:
        return None
    if isinstance(audit, EstimatorAudit):
        return audit
    if isinstance(audit, AuditConfig):
        scheduler = getattr(policy, "scheduler", None)
        if scheduler is None:
            raise ValueError(
                "audit=AuditConfig(...) needs a policy exposing a scheduler "
                f"(POSG); policy {getattr(policy, 'name', policy)!r} has none"
            )
        return EstimatorAudit(scheduler, audit, telemetry=recorder)
    raise TypeError(
        f"audit must be an AuditConfig or EstimatorAudit, got {audit!r}"
    )


def _prepare_flight(flight, policy, recorder) -> "FlightRecorder | None":
    """Resolve the ``flight=`` argument once the policy exists.

    Called by the engines *after* factory resolution and ``setup`` so
    the recorder can bind to the policy's shard layout
    (``policy.attach_flight``).  A pre-built :class:`FlightRecorder`
    is bound here too; callers wire its telemetry themselves.
    """
    if flight is None:
        return None
    if isinstance(flight, FlightRecorder):
        recorder_flight = flight
    elif isinstance(flight, FlightRecorderConfig):
        recorder_flight = FlightRecorder(flight, telemetry=recorder)
    else:
        raise TypeError(
            f"flight must be a FlightRecorderConfig or FlightRecorder, got {flight!r}"
        )
    if not hasattr(policy, "attach_flight"):
        raise ValueError(
            "flight recording needs a POSG-family policy exposing "
            f"attach_flight; policy {getattr(policy, 'name', policy)!r} has none"
        )
    policy.attach_flight(recorder_flight)
    return recorder_flight


def _prepare_lineage(lineage, policy, recorder) -> "LineageTracer | None":
    """Resolve the ``lineage=`` argument once the policy exists.

    Called by the engines *after* factory resolution and ``setup`` so
    the tracer can bind to the policy's shard layout
    (``policy.attach_lineage``, provided by the ``GroupingPolicy`` base
    class — every policy is traceable).  A pre-built
    :class:`LineageTracer` is bound here too; callers wire its
    telemetry themselves.
    """
    if lineage is None:
        return None
    if isinstance(lineage, LineageTracer):
        tracer = lineage
    elif isinstance(lineage, LineageConfig):
        tracer = LineageTracer(lineage, telemetry=recorder)
    else:
        raise TypeError(
            f"lineage must be a LineageConfig or LineageTracer, got {lineage!r}"
        )
    policy.attach_lineage(tracer)
    return tracer


def _fire_due_crashes(
    injector: FaultInjector,
    crash_ptr: int,
    arrival: float,
    agents,
    busy_until,
) -> int:
    """Fire every scripted crash due at or before ``arrival``.

    The direct simulation has no event loop between arrivals, so the
    crash model is "pause + amnesia": the instance's tracker loses its
    in-memory state (``InstanceTracker.restart``) and the instance
    accepts no new work until the outage ends (``busy_until`` pushed to
    the restart time; tuples already routed there queue behind it, which
    is FIFO service resuming after the restart).
    """
    crashes = injector.crashes
    while crash_ptr < len(crashes) and crashes[crash_ptr].at_ms <= arrival:
        crash = crashes[crash_ptr]
        crash_ptr += 1
        agent = agents[crash.instance]
        tracker = getattr(agent, "tracker", None)
        if tracker is not None:
            tracker.restart()
        back_at = crash.at_ms + crash.outage_ms
        if busy_until[crash.instance] < back_at:
            busy_until[crash.instance] = back_at
        injector.note_crash(crash.instance, crash.at_ms)
        injector.note_restart(crash.instance, back_at)
    return crash_ptr


# ----------------------------------------------------------------------
# reference engine (per-tuple; the equivalence baseline)
# ----------------------------------------------------------------------
def _simulate_reference(
    stream: Stream,
    policy: GroupingPolicy | PolicyFactory,
    k: int,
    scenario,
    data_lat: list[LatencyModel],
    control_lat: LatencyModel,
    rng: np.random.Generator | None,
    sample_queues_every: int | None,
    injector: FaultInjector | None = None,
    audit=None,
    recorder=NULL_RECORDER,
    profiler=None,
    flight=None,
    lineage=None,
) -> SimulationResult:
    # Oracle closure for Full Knowledge: reads the loop's current index.
    position = [0]

    def oracle(item: int, instance: int) -> float:
        return stream.time_of(item) * scenario.multiplier(instance, position[0])

    if not isinstance(policy, GroupingPolicy):
        policy = policy(oracle)
    policy.setup(k, rng)
    auditor = _prepare_audit(audit, policy, recorder)
    recorder_flight = _prepare_flight(flight, policy, recorder)
    tracer = _prepare_lineage(lineage, policy, recorder)

    agents = [policy.create_instance_agent(instance) for instance in range(k)]
    has_agents = any(agent is not None for agent in agents)
    track_states = isinstance(policy, POSGGrouping)
    previous_state = policy.state if track_states else None

    items = stream.items
    base_times = stream.base_times
    arrivals = stream.arrivals
    m = stream.m

    busy_until = [0.0] * k
    completions = np.empty(m, dtype=np.float64)
    assignments = np.empty(m, dtype=np.int64)
    control_queue: list[tuple[float, int, object]] = []
    control_seq = 0
    control_messages = 0
    control_bits = 0
    state_transitions: list[tuple[int, SchedulerState]] = []
    queue_samples: list[list[float]] = []
    queue_sample_indices: list[int] = []
    crash_ptr = 0
    faulting = injector is not None
    # Audit sampling as an index comparison, mirroring the queue-sample
    # sentinel: never fires when disabled (next_audit == m).
    audit_every = auditor.sample_every if auditor is not None else 0
    next_audit = 0 if auditor is not None else m
    flight_every = recorder_flight.sample_every if recorder_flight is not None else 0
    next_flight = 0 if recorder_flight is not None else m
    lineage_every = tracer.sample_every if tracer is not None else 0
    next_lineage = 0 if tracer is not None else m

    for j in range(m):
        arrival = arrivals[j]
        position[0] = j
        if sample_queues_every is not None and j % sample_queues_every == 0:
            queue_sample_indices.append(j)
            queue_samples.append(
                [max(0.0, busy - arrival) for busy in busy_until]
            )
        if faulting:
            crash_ptr = _fire_due_crashes(
                injector, crash_ptr, arrival, agents, busy_until
            )

        # Deliver every control message due by now (see module
        # docstring) as one atomic batch: the policy validates the
        # whole batch before folding any reply.
        if control_queue and control_queue[0][0] <= arrival:
            if profiler is not None:
                profiler.start("control")
            batch = []
            while control_queue and control_queue[0][0] <= arrival:
                batch.append(heapq.heappop(control_queue)[2])
            policy.on_control_batch(batch)
            if profiler is not None:
                profiler.stop()

        if profiler is not None:
            profiler.start("route")
        decision = policy.route(int(items[j]))
        if profiler is not None:
            profiler.stop()
        instance = decision.instance
        if not 0 <= instance < k:
            raise ValueError(
                f"policy routed tuple {j} to invalid instance {instance}"
            )

        at_instance = arrival + data_lat[instance].sample()
        start = at_instance if at_instance > busy_until[instance] else busy_until[instance]
        execution_time = base_times[j] * scenario.multiplier(instance, j)
        sync_request = decision.sync_request
        if faulting:
            factor = injector.execution_factor(instance, arrival)
            if factor != 1.0:
                execution_time = execution_time * factor
            if sync_request is not None and injector.drop_request(sync_request):
                sync_request = None
        finish = start + execution_time
        busy_until[instance] = finish
        completions[j] = finish - arrival
        assignments[j] = instance
        if j == next_audit:
            auditor.observe(j, int(items[j]), instance, execution_time)
            next_audit += audit_every
        if j == next_flight:
            policy.record_flight_route(recorder_flight, j, instance)
            next_flight += flight_every
        if j == next_lineage:
            # Span clocks are captured *before* the instance agent folds
            # the tuple, so ``window_remaining`` counts this tuple (pre-
            # execution); the chunked segment replays reconstruct the
            # same pre-value.
            agent_tracker = getattr(agents[instance], "tracker", None)
            policy.record_lineage_route(
                tracer, j, instance, arrival, at_instance, start, finish,
                agent_tracker.window_remaining if agent_tracker is not None else 0,
            )
            next_lineage += lineage_every

        if has_agents and agents[instance] is not None:
            if profiler is not None:
                profiler.start("fold")
            messages = agents[instance].on_executed(
                int(items[j]), execution_time, sync_request
            )
            if profiler is not None:
                profiler.stop()
            for message in messages:
                delivery = finish + control_lat.sample()
                control_messages += 1
                control_bits += message.size_bits()
                if faulting:
                    for when in injector.deliver_times(message, delivery):
                        heapq.heappush(
                            control_queue, (when, control_seq, message)
                        )
                        control_seq += 1
                else:
                    heapq.heappush(control_queue, (delivery, control_seq, message))
                    control_seq += 1
        if decision.sync_request is not None:
            control_messages += 1
            control_bits += decision.sync_request.size_bits()

        if track_states:
            current_state = policy.state
            if current_state is not previous_state:
                state_transitions.append((j, current_state))
                previous_state = current_state

    return SimulationResult(
        stats=CompletionStats(completions, assignments),
        policy=policy,
        state_transitions=state_transitions,
        control_messages=control_messages,
        control_bits=control_bits,
        queue_samples=(
            np.asarray(queue_samples) if sample_queues_every is not None else None
        ),
        queue_sample_indices=(
            np.asarray(queue_sample_indices, dtype=np.int64)
            if sample_queues_every is not None
            else None
        ),
        audit=auditor,
        flight=recorder_flight,
        lineage=tracer,
    )


# ----------------------------------------------------------------------
# chunked engine (vectorized data plane)
# ----------------------------------------------------------------------
def _simulate_chunked(
    stream: Stream,
    policy: GroupingPolicy | PolicyFactory,
    k: int,
    scenario,
    data_lat: list[LatencyModel],
    control_lat: LatencyModel,
    rng: np.random.Generator | None,
    sample_queues_every: int | None,
    chunk_size: int,
    injector: FaultInjector | None = None,
    audit=None,
    recorder=NULL_RECORDER,
    profiler=None,
    flight=None,
    lineage=None,
) -> SimulationResult:
    m = stream.m
    items_array = np.ascontiguousarray(stream.items, dtype=np.int64)
    items = items_array.tolist()
    arrivals = stream.arrivals.tolist()
    base_times = stream.base_times.tolist()

    # Hoist the scenario out of the loop: per-instance execution-time
    # columns `base_times * multiplier` (elementwise numpy, identical
    # IEEE multiplies) when the scenario supports bulk evaluation.
    multiplier_lists: "list[list[float]] | None" = None
    execution_columns: "list[list[float]] | None" = None
    if hasattr(scenario, "multiplier_matrix"):
        multipliers = scenario.multiplier_matrix(m)
        multiplier_lists = multipliers.tolist()
        # A unit multiplier column is the base times themselves
        # (x * 1.0 == x exactly), so uniform instances share one list.
        execution_columns = [
            base_times
            if np.all(multipliers[:, instance] == 1.0)
            else (stream.base_times * multipliers[:, instance]).tolist()
            for instance in range(k)
        ]

    # Oracle closure for Full Knowledge: reads the loop's current index.
    position = [0]
    if multiplier_lists is not None:
        time_table = stream.time_table.tolist()

        def oracle(item: int, instance: int) -> float:
            return time_table[item] * multiplier_lists[position[0]][instance]

    else:

        def oracle(item: int, instance: int) -> float:
            return stream.time_of(item) * scenario.multiplier(instance, position[0])

    if not isinstance(policy, GroupingPolicy):
        policy = policy(oracle)
    policy.setup(k, rng)
    auditor = _prepare_audit(audit, policy, recorder)
    recorder_flight = _prepare_flight(flight, policy, recorder)
    tracer = _prepare_lineage(lineage, policy, recorder)

    agents = [policy.create_instance_agent(instance) for instance in range(k)]
    has_agents = any(agent is not None for agent in agents)
    track_states = isinstance(policy, POSGGrouping)

    # Constant data latencies are hoisted to plain floats (``sample`` is
    # side-effect free there); random models keep their per-tuple call
    # order so seeded draws match the reference engine.
    latency_values: "list[float] | None" = [
        model.value if isinstance(model, ConstantLatency) else None
        for model in data_lat
    ]
    if any(value is None for value in latency_values):
        latency_values = None

    state = _ChunkedState(
        k=k,
        items=items,
        arrivals=arrivals,
        arrivals_array=np.ascontiguousarray(stream.arrivals, dtype=np.float64),
        base_times=base_times,
        execution_columns=execution_columns,
        scenario=scenario,
        latency_values=latency_values,
        data_lat=data_lat,
        control_lat=control_lat,
        sample_queues_every=sample_queues_every,
        position=position,
    )

    # Fault injection and the recovery defenses interpose per tuple, so
    # they run through the hoisted generic loop: both engines then make
    # identical per-tuple calls (same injector rng draws, same defense
    # tick points) and faulted runs stay bit-identical across engines.
    block_safe = injector is None
    plain_run = auditor is None and profiler is None
    if type(policy) is POSGGrouping:
        # Flight recording routes through the per-tuple generic loop
        # (like fault injection): the recorder's believed-load samples
        # read scheduler C_hat right after each sampled submit, which
        # the segmented fast path only materializes at commit time.
        # Coordination (the two-choices probe is the only mechanism
        # alive under a single scheduler) also routes per tuple: the
        # segmented block scan replays the plain argmin only.
        if (
            block_safe
            and policy.scheduler.recovery is None
            and recorder_flight is None
            and policy.config.coordination is None
        ):
            _run_posg(state, policy, agents, chunk_size, auditor, profiler, tracer)
        else:
            _run_generic(
                state, policy, agents, has_agents, True, injector,
                auditor, profiler, recorder_flight, tracer,
            )
    elif (
        type(policy) is RoundRobinGrouping
        and not has_agents and block_safe and plain_run
    ):
        _run_round_robin(state, policy, tracer)
    elif (
        type(policy) is FullKnowledgeGrouping
        and not has_agents and block_safe and plain_run
    ):
        _run_full_knowledge(state, policy, tracer)
    else:
        _run_generic(
            state, policy, agents, has_agents, track_states, injector,
            auditor, profiler, recorder_flight, tracer,
        )

    return SimulationResult(
        stats=CompletionStats(
            np.asarray(state.completions, dtype=np.float64),
            np.asarray(state.assignments, dtype=np.int64),
        ),
        policy=policy,
        state_transitions=state.state_transitions,
        control_messages=state.control_messages,
        control_bits=state.control_bits,
        queue_samples=(
            np.asarray(state.queue_samples)
            if sample_queues_every is not None
            else None
        ),
        queue_sample_indices=(
            np.asarray(state.queue_sample_indices, dtype=np.int64)
            if sample_queues_every is not None
            else None
        ),
        audit=auditor,
        flight=recorder_flight,
        lineage=tracer,
    )


class _ChunkedState:
    """Mutable bookkeeping shared by the chunked engine's policy loops."""

    __slots__ = (
        "k", "items", "arrivals", "arrivals_array", "base_times",
        "execution_columns", "scenario", "latency_values", "data_lat",
        "control_lat", "sample_queues_every", "position", "busy_until",
        "completions", "assignments", "control_queue", "control_seq",
        "control_messages", "control_bits", "state_transitions",
        "queue_samples", "queue_sample_indices",
    )

    def __init__(self, **kwargs) -> None:
        for name, value in kwargs.items():
            setattr(self, name, value)
        self.busy_until = [0.0] * self.k
        self.completions: list[float] = []
        self.assignments: list[int] = []
        self.control_queue: list[tuple[float, int, object]] = []
        self.control_seq = 0
        self.control_messages = 0
        self.control_bits = 0
        self.state_transitions: list[tuple[int, SchedulerState]] = []
        self.queue_samples: list[list[float]] = []
        self.queue_sample_indices: list[int] = []

    def execution_time(self, instance: int, index: int) -> float:
        if self.execution_columns is not None:
            return self.execution_columns[instance][index]
        return self.base_times[index] * self.scenario.multiplier(instance, index)

    def arrival_at_instance(self, arrival: float, instance: int) -> float:
        if self.latency_values is not None:
            return arrival + self.latency_values[instance]
        return arrival + self.data_lat[instance].sample()


def _run_round_robin(
    state: _ChunkedState, policy: RoundRobinGrouping, lineage=None
) -> None:
    """Whole-stream inline loop for ASSG (no agents, no control plane)."""
    m = len(state.items)
    arrivals = state.arrivals
    busy = state.busy_until
    completions = state.completions
    assignments = state.assignments
    every = state.sample_queues_every
    execution_columns = state.execution_columns
    latency_values = state.latency_values
    k = state.k
    counter = policy._counter
    lineage_every = lineage.sample_every if lineage is not None else 0
    next_lineage = 0 if lineage is not None else m
    for j in range(m):
        arrival = arrivals[j]
        if every is not None and j % every == 0:
            state.queue_sample_indices.append(j)
            state.queue_samples.append(
                [max(0.0, b - arrival) for b in busy]
            )
        instance = counter % k
        counter += 1
        if latency_values is not None:
            at_instance = arrival + latency_values[instance]
        else:
            at_instance = arrival + state.data_lat[instance].sample()
        b = busy[instance]
        start = at_instance if at_instance > b else b
        if execution_columns is not None:
            execution_time = execution_columns[instance][j]
        else:
            execution_time = state.base_times[j] * state.scenario.multiplier(instance, j)
        finish = start + execution_time
        busy[instance] = finish
        completions.append(finish - arrival)
        assignments.append(instance)
        if j == next_lineage:
            policy.record_lineage_route(
                lineage, j, instance, arrival, at_instance, start, finish, 0,
            )
            next_lineage += lineage_every
    policy._counter = counter


def _run_full_knowledge(
    state: _ChunkedState, policy: FullKnowledgeGrouping, lineage=None
) -> None:
    """Whole-stream inline loop for the Full Knowledge baseline.

    The exact load vector lives in a plain-float list for the duration of
    the run (same IEEE additions, same first-minimum tie-breaking as the
    policy's ``np.argmin``) and is written back at the end.
    """
    m = len(state.items)
    items = state.items
    arrivals = state.arrivals
    busy = state.busy_until
    completions = state.completions
    assignments = state.assignments
    every = state.sample_queues_every
    execution_columns = state.execution_columns
    latency_values = state.latency_values
    position = state.position
    oracle = policy._oracle
    loads = policy._loads.tolist()
    k = state.k
    k_range = range(1, k)
    lineage_every = lineage.sample_every if lineage is not None else 0
    next_lineage = 0 if lineage is not None else m
    for j in range(m):
        arrival = arrivals[j]
        position[0] = j
        if every is not None and j % every == 0:
            state.queue_sample_indices.append(j)
            state.queue_samples.append(
                [max(0.0, b - arrival) for b in busy]
            )
        best = loads[0]
        instance = 0
        for i in k_range:
            value = loads[i]
            if value < best:
                best = value
                instance = i
        loads[instance] += oracle(items[j], instance)
        if latency_values is not None:
            at_instance = arrival + latency_values[instance]
        else:
            at_instance = arrival + state.data_lat[instance].sample()
        b = busy[instance]
        start = at_instance if at_instance > b else b
        if execution_columns is not None:
            execution_time = execution_columns[instance][j]
        else:
            execution_time = state.base_times[j] * state.scenario.multiplier(instance, j)
        finish = start + execution_time
        busy[instance] = finish
        completions.append(finish - arrival)
        assignments.append(instance)
        if j == next_lineage:
            policy.record_lineage_route(
                lineage, j, instance, arrival, at_instance, start, finish, 0,
            )
            next_lineage += lineage_every
    policy._loads[:] = loads


def _run_generic(
    state: _ChunkedState,
    policy: GroupingPolicy,
    agents,
    has_agents: bool,
    track_states: bool,
    injector: FaultInjector | None = None,
    auditor=None,
    profiler=None,
    flight=None,
    lineage=None,
) -> None:
    """Hoisted per-tuple loop for arbitrary policies (and POSG subclasses).

    Also the only chunked-engine loop that supports fault injection: it
    replays the reference engine's per-tuple order exactly, so the
    injector's random draws land at the same points under both engines.
    """
    m = len(state.items)
    items = state.items
    arrivals = state.arrivals
    busy = state.busy_until
    every = state.sample_queues_every
    control_queue = state.control_queue
    position = state.position
    previous_state = policy.state if track_states else None
    crash_ptr = 0
    faulting = injector is not None
    audit_every = auditor.sample_every if auditor is not None else 0
    next_audit = 0 if auditor is not None else m
    flight_every = flight.sample_every if flight is not None else 0
    next_flight = 0 if flight is not None else m
    lineage_every = lineage.sample_every if lineage is not None else 0
    next_lineage = 0 if lineage is not None else m
    for j in range(m):
        arrival = arrivals[j]
        position[0] = j
        if every is not None and j % every == 0:
            state.queue_sample_indices.append(j)
            state.queue_samples.append(
                [max(0.0, b - arrival) for b in busy]
            )
        if faulting:
            crash_ptr = _fire_due_crashes(
                injector, crash_ptr, arrival, agents, busy
            )
        if control_queue and control_queue[0][0] <= arrival:
            if profiler is not None:
                profiler.start("control")
            batch = []
            while control_queue and control_queue[0][0] <= arrival:
                batch.append(heapq.heappop(control_queue)[2])
            policy.on_control_batch(batch)
            if profiler is not None:
                profiler.stop()

        if profiler is not None:
            profiler.start("route")
        decision = policy.route(items[j])
        if profiler is not None:
            profiler.stop()
        instance = decision.instance
        if not 0 <= instance < state.k:
            raise ValueError(
                f"policy routed tuple {j} to invalid instance {instance}"
            )
        at_instance = state.arrival_at_instance(arrival, instance)
        b = busy[instance]
        start = at_instance if at_instance > b else b
        execution_time = state.execution_time(instance, j)
        sync_request = decision.sync_request
        if faulting:
            factor = injector.execution_factor(instance, arrival)
            if factor != 1.0:
                execution_time = execution_time * factor
            if sync_request is not None and injector.drop_request(sync_request):
                sync_request = None
        finish = start + execution_time
        busy[instance] = finish
        state.completions.append(finish - arrival)
        state.assignments.append(instance)
        if j == next_audit:
            auditor.observe(j, items[j], instance, execution_time)
            next_audit += audit_every
        if j == next_flight:
            policy.record_flight_route(flight, j, instance)
            next_flight += flight_every
        if j == next_lineage:
            agent_tracker = getattr(agents[instance], "tracker", None)
            policy.record_lineage_route(
                lineage, j, instance, arrival, at_instance, start, finish,
                agent_tracker.window_remaining if agent_tracker is not None else 0,
            )
            next_lineage += lineage_every

        if has_agents and agents[instance] is not None:
            if profiler is not None:
                profiler.start("fold")
            messages = agents[instance].on_executed(
                items[j], execution_time, sync_request
            )
            if profiler is not None:
                profiler.stop()
            for message in messages:
                delivery = finish + state.control_lat.sample()
                state.control_messages += 1
                state.control_bits += message.size_bits()
                if faulting:
                    for when in injector.deliver_times(message, delivery):
                        heapq.heappush(
                            control_queue, (when, state.control_seq, message)
                        )
                        state.control_seq += 1
                else:
                    heapq.heappush(
                        control_queue, (delivery, state.control_seq, message)
                    )
                    state.control_seq += 1
        if decision.sync_request is not None:
            state.control_messages += 1
            state.control_bits += decision.sync_request.size_bits()

        if track_states:
            current_state = policy.state
            if current_state is not previous_state:
                state.state_transitions.append((j, current_state))
                previous_state = current_state


def _run_posg(
    state: _ChunkedState,
    policy: POSGGrouping,
    agents,
    chunk_size: int,
    auditor=None,
    profiler=None,
    lineage=None,
) -> None:
    """POSG data plane: control-quiet fast segments + per-tuple fallback.

    Between control-message deliveries the scheduler's matrices are
    frozen, so per-chunk estimate columns are pre-gathered once
    (:meth:`POSGScheduler.begin_block`) and the segment runs as a tight
    scalar loop: the greedy pick is an inlined first-minimum scan over
    plain floats, execution times and instance-arrival times are hoisted
    columns, and instance-side sketch folds are batched between window
    boundaries (``InstanceTracker.execute_batch``).  The per-tuple
    control check disappears: arrivals are sorted, so the segment bound
    is a ``bisect`` on the earliest pending delivery, re-tightened
    whenever a window boundary emits new messages.  In SEND_ALL (tuples
    carry sync requests) the engine falls back to the reference per-tuple
    step, preserving delivery order and FSM semantics exactly.
    """
    m = len(state.items)
    items = state.items
    arrivals = state.arrivals
    busy = state.busy_until
    finishes: list[float] = []
    assignments = state.assignments
    every = state.sample_queues_every
    control_queue = state.control_queue
    control_lat = state.control_lat
    execution_columns = state.execution_columns
    latency_values = state.latency_values
    scheduler = policy.scheduler
    trackers = [agent.tracker for agent in agents]
    window_size = policy.config.window_size
    previous_state = policy.state
    k = state.k
    k_range = range(1, k)

    # With one constant latency shared by every instance the per-tuple
    # instance-arrival time does not depend on the routing decision, so
    # the whole column is precomputed (identical elementwise adds).
    at_column: "list[float] | None" = None
    if latency_values is not None and len(set(latency_values)) == 1:
        if latency_values[0] == 0.0:
            # x + 0.0 == x for the non-negative arrival times, so the
            # zero-latency column is the arrival list itself.
            at_column = arrivals
        else:
            at_column = (state.arrivals_array + latency_values[0]).tolist()

    items_array = np.asarray(items, dtype=np.int64)
    queue_samples = state.queue_samples
    queue_sample_indices = state.queue_sample_indices
    # Queue sampling as an index comparison instead of a per-tuple modulo;
    # j visits 0..m-1 in order, so this replays ``j % every == 0``.
    next_sample = 0 if every is not None else m
    # Audit sampling uses the same sentinel trick: when disabled the
    # compare never fires, keeping the fast segments' per-tuple cost flat.
    audit_every = auditor.sample_every if auditor is not None else 0
    audit_observe = auditor.observe if auditor is not None else None
    next_audit = 0 if auditor is not None else m
    # Lineage samples are replayed at their grid indices from segment
    # locals (like audit samples): the believed loads are the block
    # router's post-add ``c`` values — the exact floats ``commit`` folds
    # back into ``C_hat``, so the reference engine's post-submit
    # ``C_hat`` reads match bit for bit.  ``_run_posg`` only serves the
    # single-scheduler ``POSGGrouping`` (exact type check in the
    # dispatcher), so samples always land on shard 0.
    lineage_every = lineage.sample_every if lineage is not None else 0
    lineage_record = lineage.record_sample if lineage is not None else None
    next_lineage = 0 if lineage is not None else m

    # Instance-side batching state persists across segments: tuples are
    # folded lazily, right before anything inspects the tracker (a window
    # boundary, a SEND_ALL execute, or the end of the run).  The batches
    # are cleared in place so the specialized loop can hold aliases.
    pending_items: list[list[int]] = [[] for _ in range(k)]
    pending_times: list[list[float]] = [[] for _ in range(k)]
    window_left = [tracker.window_remaining for tracker in trackers]

    def _window_boundary(
        instance: int,
        item: int,
        execution_time: float,
        finish: float,
        lo: int,
        next_due: float,
        end: int,
    ) -> tuple[float, int]:
        """Flush the batched prefix, run the boundary tuple through the
        FSM (Figure 2), enqueue its messages, and re-tighten the segment
        bound if a delivery now lands before the previous horizon."""
        tracker = trackers[instance]
        batch = pending_items[instance]
        if profiler is not None:
            profiler.start("window_close")
        if batch:
            if profiler is not None:
                profiler.start("fold")
            tracker.execute_batch(batch, pending_times[instance])
            if profiler is not None:
                profiler.stop()
            batch.clear()
            pending_times[instance].clear()
        messages = tracker.execute(item, execution_time, None)
        for message in messages:
            delivery = finish + control_lat.sample()
            heapq.heappush(
                control_queue, (delivery, state.control_seq, message)
            )
            state.control_seq += 1
            state.control_messages += 1
            state.control_bits += message.size_bits()
        if control_queue and control_queue[0][0] < next_due:
            next_due = control_queue[0][0]
            end = bisect.bisect_left(arrivals, next_due, lo, end)
        if profiler is not None:
            profiler.stop()
        return next_due, end

    j = 0
    while j < m:
        arrival = arrivals[j]
        if control_queue and control_queue[0][0] <= arrival:
            if profiler is not None:
                profiler.start("control")
            batch = []
            while control_queue and control_queue[0][0] <= arrival:
                batch.append(heapq.heappop(control_queue)[2])
            policy.on_control_batch(batch)
            if profiler is not None:
                profiler.stop()

        if scheduler.state is not SchedulerState.SEND_ALL:
            # Control-quiet fast segment.  After the drain every pending
            # delivery is strictly later than this arrival, so the
            # segment covers at least one tuple.
            if control_queue:
                next_due = control_queue[0][0]
                end = bisect.bisect_left(
                    arrivals, next_due, j + 1, min(j + chunk_size, m)
                )
            else:
                next_due = _INFINITY
                end = min(j + chunk_size, m)
            block = scheduler.begin_block(items_array[j:end], profiler=profiler)
            # Drain-induced transition: the reference engine records it at
            # the index of the next routed tuple, which the segment routes.
            current_state = scheduler.state
            if current_state is not previous_state:
                state.state_transitions.append((j, current_state))
                previous_state = current_state
            estimates = block._estimates
            rr = block._rr
            hints = block._hints
            debt = block._debt
            c = block._c
            pos = 0
            plain = (
                estimates is not None
                and hints is None
                and at_column is not None
                and execution_columns is not None
            )
            if plain and k == 5:
                # Dominant mode (greedy routing, shared constant latency,
                # bulk scenario) at the paper's k = 5: the scan state
                # lives in unrolled locals, so the per-tuple body is a
                # handful of float compares and list reads — no method
                # calls and no container indexing on the scan itself.
                e0, e1, e2, e3, e4 = estimates
                x0, x1, x2, x3, x4 = execution_columns
                c0, c1, c2, c3, c4 = c
                b0, b1, b2, b3, b4 = busy
                w0, w1, w2, w3, w4 = window_left
                pi0, pi1, pi2, pi3, pi4 = pending_items
                pt0, pt1, pt2, pt3, pt4 = pending_times
                at_col = at_column
                fin_append = finishes.append
                asg_append = assignments.append
                if profiler is not None:
                    profiler.start("route")
                while j < end:
                    if j == next_sample:
                        ar = arrivals[j]
                        queue_sample_indices.append(j)
                        queue_samples.append([
                            max(0.0, b0 - ar),
                            max(0.0, b1 - ar),
                            max(0.0, b2 - ar),
                            max(0.0, b3 - ar),
                            max(0.0, b4 - ar),
                        ])
                        next_sample += every
                    # First-minimum scan (same tie-breaking as argmin).
                    best = c0
                    instance = 0
                    if c1 < best:
                        best = c1
                        instance = 1
                    if c2 < best:
                        best = c2
                        instance = 2
                    if c3 < best:
                        best = c3
                        instance = 3
                    if c4 < best:
                        instance = 4
                    at_instance = at_col[j]
                    if instance == 0:
                        c0 += e0[pos]
                        b = b0
                        if at_instance > b:
                            b = at_instance
                        execution_time = x0[j]
                        finish = b + execution_time
                        b0 = finish
                        fin_append(finish)
                        asg_append(0)
                        if w0 == 1:
                            next_due, end = _window_boundary(
                                0, items[j], execution_time, finish,
                                j + 1, next_due, end,
                            )
                            w0 = window_size
                        else:
                            w0 -= 1
                            pi0.append(items[j])
                            pt0.append(execution_time)
                    elif instance == 1:
                        c1 += e1[pos]
                        b = b1
                        if at_instance > b:
                            b = at_instance
                        execution_time = x1[j]
                        finish = b + execution_time
                        b1 = finish
                        fin_append(finish)
                        asg_append(1)
                        if w1 == 1:
                            next_due, end = _window_boundary(
                                1, items[j], execution_time, finish,
                                j + 1, next_due, end,
                            )
                            w1 = window_size
                        else:
                            w1 -= 1
                            pi1.append(items[j])
                            pt1.append(execution_time)
                    elif instance == 2:
                        c2 += e2[pos]
                        b = b2
                        if at_instance > b:
                            b = at_instance
                        execution_time = x2[j]
                        finish = b + execution_time
                        b2 = finish
                        fin_append(finish)
                        asg_append(2)
                        if w2 == 1:
                            next_due, end = _window_boundary(
                                2, items[j], execution_time, finish,
                                j + 1, next_due, end,
                            )
                            w2 = window_size
                        else:
                            w2 -= 1
                            pi2.append(items[j])
                            pt2.append(execution_time)
                    elif instance == 3:
                        c3 += e3[pos]
                        b = b3
                        if at_instance > b:
                            b = at_instance
                        execution_time = x3[j]
                        finish = b + execution_time
                        b3 = finish
                        fin_append(finish)
                        asg_append(3)
                        if w3 == 1:
                            next_due, end = _window_boundary(
                                3, items[j], execution_time, finish,
                                j + 1, next_due, end,
                            )
                            w3 = window_size
                        else:
                            w3 -= 1
                            pi3.append(items[j])
                            pt3.append(execution_time)
                    else:
                        c4 += e4[pos]
                        b = b4
                        if at_instance > b:
                            b = at_instance
                        execution_time = x4[j]
                        finish = b + execution_time
                        b4 = finish
                        fin_append(finish)
                        asg_append(4)
                        if w4 == 1:
                            next_due, end = _window_boundary(
                                4, items[j], execution_time, finish,
                                j + 1, next_due, end,
                            )
                            w4 = window_size
                        else:
                            w4 -= 1
                            pi4.append(items[j])
                            pt4.append(execution_time)
                    if j == next_audit:
                        audit_observe(j, items[j], instance, execution_time)
                        next_audit += audit_every
                    if j == next_lineage:
                        # ``b`` is this tuple's start clock; the chosen
                        # instance's window counter is already post-
                        # update, so the pre-execution value is either
                        # the boundary (post == window_size -> 1) or
                        # post + 1.
                        wpost = (w0, w1, w2, w3, w4)[instance]
                        lineage_record(
                            0, j, instance, (c0, c1, c2, c3, c4),
                            arrivals[j], at_instance, b, finish,
                            1 if wpost == window_size else wpost + 1,
                        )
                        next_lineage += lineage_every
                    pos += 1
                    j += 1
                c[0] = c0
                c[1] = c1
                c[2] = c2
                c[3] = c3
                c[4] = c4
                busy[0] = b0
                busy[1] = b1
                busy[2] = b2
                busy[3] = b3
                busy[4] = b4
                window_left[0] = w0
                window_left[1] = w1
                window_left[2] = w2
                window_left[3] = w3
                window_left[4] = w4
                block._rr = rr
                block._pos = pos
                block.commit()
                if profiler is not None:
                    profiler.stop()
                continue
            if (
                estimates is None
                and at_column is not None
                and execution_columns is not None
            ):
                # ROUND_ROBIN segments: the routing sequence is cyclic and
                # data-independent, so the segment de-interleaves into k
                # per-instance busy chains over strided slices.  Each
                # chain only reads its own tuples, so the per-instance
                # float sequence (and every finish time) is bit-identical
                # to the interleaved reference loop; window boundaries are
                # located up front from ``window_left`` and the boundary
                # tuple itself runs through the reference step.  Audit
                # samples are replayed from the de-interleaved arrays
                # after each chunk: matrices are frozen inside the
                # control-quiet segment, so the estimates the auditor
                # reads match the reference engine's per-tuple ordering
                # bit for bit.
                if profiler is not None:
                    profiler.start("route")
                while True:
                    nb = end
                    for i in range(k):
                        bidx = j + (i - rr) % k + (window_left[i] - 1) * k
                        if bidx < nb:
                            nb = bidx
                    safe_end = nb
                    if safe_end > j:
                        count = safe_end - j
                        seg_fin = [0.0] * count
                        seg_asg = [0] * count
                        sampling = next_sample < safe_end
                        lin_here = next_lineage < safe_end
                        collect = sampling or lin_here
                        start_busy = busy[:] if collect else None
                        base_wl = window_left[:] if lin_here else None
                        # ROUND_ROBIN blocks carry no pre-gathered ``_c``
                        # (no estimates yet); the frozen C_hat itself is
                        # what the reference engine's post-submit read
                        # observes.
                        lin_bel = (
                            scheduler._c_hat.tolist() if lin_here else None
                        )
                        chains: list[list[float]] = []
                        for i in range(k):
                            off = (i - rr) % k
                            lo = j + off
                            x_slice = execution_columns[i][lo:safe_end:k]
                            n_i = len(x_slice)
                            fl: list[float] = []
                            if n_i:
                                b = busy[i]
                                fa = fl.append
                                for at, w in zip(
                                    at_column[lo:safe_end:k], x_slice
                                ):
                                    if at > b:
                                        b = at
                                    b += w
                                    fa(b)
                                busy[i] = b
                                seg_fin[off::k] = fl
                                seg_asg[off::k] = [i] * n_i
                                pending_items[i].extend(items[lo:safe_end:k])
                                pending_times[i].extend(x_slice)
                                window_left[i] -= n_i
                            if collect:
                                chains.append(fl)
                        finishes.extend(seg_fin)
                        assignments.extend(seg_asg)
                        # Backlog samples falling inside the range read the
                        # chain value just before the sampled arrival.
                        while next_sample < safe_end:
                            s = next_sample
                            ar = arrivals[s]
                            sample = []
                            for i in range(k):
                                first = j + (i - rr) % k
                                cnt = 0 if s <= first else (s - first + k - 1) // k
                                bi = start_busy[i] if cnt == 0 else chains[i][cnt - 1]
                                sample.append(max(0.0, bi - ar))
                            queue_sample_indices.append(s)
                            queue_samples.append(sample)
                            next_sample += every
                        # Lineage samples replay from the de-interleaved
                        # chains: the sampled tuple's start clock is the
                        # same max(at, previous finish) the chain loop
                        # computed, its finish is the chain value itself,
                        # and C_hat is frozen for the whole ROUND_ROBIN
                        # segment.
                        while next_lineage < safe_end:
                            s = next_lineage
                            i = seg_asg[s - j]
                            first = j + (i - rr) % k
                            cnt = (s - first) // k
                            prev_b = (
                                start_busy[i] if cnt == 0 else chains[i][cnt - 1]
                            )
                            at = at_column[s]
                            lineage_record(
                                0, s, i, lin_bel, arrivals[s], at,
                                at if at > prev_b else prev_b,
                                chains[i][cnt], base_wl[i] - cnt,
                            )
                            next_lineage += lineage_every
                        while next_audit < safe_end:
                            s = next_audit
                            instance = seg_asg[s - j]
                            audit_observe(
                                s, items[s], instance,
                                execution_columns[instance][s],
                            )
                            next_audit += audit_every
                        pos += count
                        rr += count
                        j = safe_end
                    if j >= end:
                        break
                    # Window-boundary tuple: reference per-tuple step.
                    if j == next_sample:
                        ar = arrivals[j]
                        queue_sample_indices.append(j)
                        queue_samples.append([max(0.0, b - ar) for b in busy])
                        next_sample += every
                    instance = rr % k
                    rr += 1
                    pos += 1
                    at_instance = at_column[j]
                    b = busy[instance]
                    if at_instance > b:
                        b = at_instance
                    execution_time = execution_columns[instance][j]
                    finish = b + execution_time
                    busy[instance] = finish
                    finishes.append(finish)
                    assignments.append(instance)
                    if j == next_lineage:
                        lineage_record(
                            0, j, instance, scheduler._c_hat.tolist(),
                            arrivals[j], at_instance, b, finish,
                            window_left[instance],
                        )
                        next_lineage += lineage_every
                    wl = window_left[instance]
                    if wl == 1:
                        next_due, end = _window_boundary(
                            instance, items[j], execution_time, finish,
                            j + 1, next_due, end,
                        )
                        window_left[instance] = window_size
                    else:
                        pending_items[instance].append(items[j])
                        pending_times[instance].append(execution_time)
                        window_left[instance] = wl - 1
                    if j == next_audit:
                        audit_observe(j, items[j], instance, execution_time)
                        next_audit += audit_every
                    j += 1
                block._rr = rr
                block._pos = pos
                block.commit()
                if profiler is not None:
                    profiler.stop()
                continue
            if plain:
                # Greedy routing at instance counts other than the
                # unrolled k = 5: the first-minimum scan becomes a
                # numpy argmin over the C_hat vector (``argmin``
                # returns the *first* minimum, so tie-breaking is
                # unchanged) and the estimate columns are stacked once
                # per segment into one 2-D array.  Scalar float64
                # adds on the array match the plain-float adds of the
                # scalar scan bit for bit, so k > 5 keeps the fast
                # path instead of dropping to the per-element list
                # scan.
                c_arr = np.asarray(c, dtype=np.float64)
                est_arr = np.asarray(estimates, dtype=np.float64)
                at_col = at_column
                argmin = np.argmin
                fin_append = finishes.append
                asg_append = assignments.append
                if profiler is not None:
                    profiler.start("route")
                while j < end:
                    if j == next_sample:
                        ar = arrivals[j]
                        queue_sample_indices.append(j)
                        queue_samples.append(
                            [max(0.0, b - ar) for b in busy]
                        )
                        next_sample += every
                    instance = int(argmin(c_arr))
                    c_arr[instance] += est_arr[instance, pos]
                    pos += 1
                    at_instance = at_col[j]
                    b = busy[instance]
                    if at_instance > b:
                        b = at_instance
                    execution_time = execution_columns[instance][j]
                    finish = b + execution_time
                    busy[instance] = finish
                    fin_append(finish)
                    asg_append(instance)
                    if j == next_audit:
                        audit_observe(j, items[j], instance, execution_time)
                        next_audit += audit_every
                    if j == next_lineage:
                        lineage_record(
                            0, j, instance, c_arr.tolist(), arrivals[j],
                            at_instance, b, finish, window_left[instance],
                        )
                        next_lineage += lineage_every
                    wl = window_left[instance]
                    if wl == 1:
                        next_due, end = _window_boundary(
                            instance, items[j], execution_time, finish,
                            j + 1, next_due, end,
                        )
                        window_left[instance] = window_size
                    else:
                        pending_items[instance].append(items[j])
                        pending_times[instance].append(execution_time)
                        window_left[instance] = wl - 1
                    j += 1
                # ``commit`` copies ``_c`` into the scheduler's C_hat
                # via slice assignment, which accepts the ndarray.
                block._c = c_arr
                block._rr = rr
                block._pos = pos
                block.commit()
                if profiler is not None:
                    profiler.stop()
                continue
            if profiler is not None:
                profiler.start("route")
            while j < end:
                if j == next_sample:
                    arrival = arrivals[j]
                    queue_sample_indices.append(j)
                    queue_samples.append(
                        [max(0.0, b - arrival) for b in busy]
                    )
                    next_sample += every
                if plain:
                    # Dominant mode at other instance counts: inlined
                    # scan over the pre-gathered columns.
                    best = c[0]
                    instance = 0
                    for i in k_range:
                        value = c[i]
                        if value < best:
                            best = value
                            instance = i
                    c[instance] += estimates[instance][pos]
                    pos += 1
                    at_instance = at_column[j]
                    execution_time = execution_columns[instance][j]
                else:
                    if estimates is None:
                        instance = rr % k
                        rr += 1
                    elif hints is None:
                        best = c[0]
                        instance = 0
                        for i in k_range:
                            value = c[i]
                            if value < best:
                                best = value
                                instance = i
                        c[instance] += estimates[instance][pos]
                    else:
                        best = (c[0] + debt[0]) + hints[0]
                        instance = 0
                        for i in k_range:
                            value = (c[i] + debt[i]) + hints[i]
                            if value < best:
                                best = value
                                instance = i
                        debt[instance] += hints[instance]
                        c[instance] += estimates[instance][pos]
                    pos += 1
                    if at_column is not None:
                        at_instance = at_column[j]
                    elif latency_values is not None:
                        at_instance = arrivals[j] + latency_values[instance]
                    else:
                        at_instance = arrivals[j] + state.data_lat[instance].sample()
                    if execution_columns is not None:
                        execution_time = execution_columns[instance][j]
                    else:
                        execution_time = state.base_times[j] * state.scenario.multiplier(instance, j)
                b = busy[instance]
                if at_instance > b:
                    b = at_instance
                finish = b + execution_time
                busy[instance] = finish
                finishes.append(finish)
                assignments.append(instance)
                if j == next_audit:
                    audit_observe(j, items[j], instance, execution_time)
                    next_audit += audit_every
                if j == next_lineage:
                    lineage_record(
                        0, j, instance,
                        c if c is not None else scheduler._c_hat.tolist(),
                        arrivals[j], at_instance, b, finish,
                        window_left[instance],
                    )
                    next_lineage += lineage_every

                wl = window_left[instance]
                if wl == 1:
                    next_due, end = _window_boundary(
                        instance, items[j], execution_time, finish,
                        j + 1, next_due, end,
                    )
                    window_left[instance] = window_size
                else:
                    pending_items[instance].append(items[j])
                    pending_times[instance].append(execution_time)
                    window_left[instance] = wl - 1
                j += 1
            block._rr = rr
            block._pos = pos
            block.commit()
            if profiler is not None:
                profiler.stop()
            continue

        # SEND_ALL (sync requests piggy-back on tuples): reference step.
        if j == next_sample:
            queue_sample_indices.append(j)
            queue_samples.append([max(0.0, b - arrival) for b in busy])
            next_sample += every
        if profiler is not None:
            profiler.start("route")
        decision = policy.route(items[j])
        if profiler is not None:
            profiler.stop()
        instance = decision.instance
        at_instance = state.arrival_at_instance(arrival, instance)
        b = busy[instance]
        start = at_instance if at_instance > b else b
        execution_time = state.execution_time(instance, j)
        finish = start + execution_time
        busy[instance] = finish
        finishes.append(finish)
        assignments.append(instance)
        if j == next_audit:
            audit_observe(j, items[j], instance, execution_time)
            next_audit += audit_every
        if j == next_lineage:
            # SEND_ALL routes through a real ``submit``, so the policy
            # hook reads the live post-submit C_hat; ``window_left``
            # still holds the pre-execution count (the tracker updates
            # below).
            policy.record_lineage_route(
                lineage, j, instance, arrival, at_instance, start, finish,
                window_left[instance],
            )
            next_lineage += lineage_every

        if profiler is not None:
            profiler.start("fold")
        if pending_items[instance]:
            trackers[instance].execute_batch(
                pending_items[instance], pending_times[instance]
            )
            pending_items[instance].clear()
            pending_times[instance].clear()
        messages = trackers[instance].execute(
            items[j], execution_time, decision.sync_request
        )
        window_left[instance] = trackers[instance].window_remaining
        if profiler is not None:
            profiler.stop()
        for message in messages:
            delivery = finish + control_lat.sample()
            heapq.heappush(control_queue, (delivery, state.control_seq, message))
            state.control_seq += 1
            state.control_messages += 1
            state.control_bits += message.size_bits()
        if decision.sync_request is not None:
            state.control_messages += 1
            state.control_bits += decision.sync_request.size_bits()

        current_state = policy.state
        if current_state is not previous_state:
            state.state_transitions.append((j, current_state))
            previous_state = current_state
        j += 1

    # Fold the tail batches so the trackers' state (C_op, counters) ends
    # exactly where the per-tuple engine would leave it.
    for instance in range(k):
        if pending_items[instance]:
            if profiler is not None:
                profiler.start("fold")
            trackers[instance].execute_batch(
                pending_items[instance], pending_times[instance]
            )
            if profiler is not None:
                profiler.stop()

    # completions[j] = finish - arrival, deferred as one elementwise pass
    # (same IEEE subtraction as the per-tuple form).
    state.completions = np.asarray(finishes, dtype=np.float64) - state.arrivals_array
