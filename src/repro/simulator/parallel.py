"""Multi-process parallel data plane for the sharded POSG policy.

The chunked engine (:mod:`repro.simulator.run`) peaks near one million
tuples/second on a single core, and the per-layer benchmarks show the
sequential route loop — not the hashing or sketch kernels — is the
wall.  This module parallelizes the route loop across the ``s`` shard
schedulers of :class:`~repro.core.multisource.MultiSourcePOSGGrouping`:
tuple ``i`` is routed by shard ``i mod s``, so within a *control-quiet
segment* (no control-message delivery, no FSM transition) each shard's
routing decisions depend only on its own frozen ``C_hat`` and stored
``(F, W)`` matrices and its own cursor-interleaved subsequence of the
block — ``s`` embarrassingly parallel greedy scans.

Architecture
------------
- **Shared-memory arena** (:class:`ShardArena`): one
  ``multiprocessing.shared_memory`` block with an explicit dtype/stride
  layout holding the stream items plus, per shard, the mutable routing
  state (FSM mode, round-robin counter, ``C_hat``, the stored ``F``/``W``
  matrices with their total weights and ``_pairs`` iteration order) and
  the per-segment output regions (assigned instance, estimate used, and
  the shard's post-segment ``C_hat``).
- **Workers**: long-lived processes, each owning a fixed subset of
  shards.  A worker never holds live scheduler objects; it rebuilds the
  (picklable) hash family from
  :meth:`~repro.core.multisource.MultiSourcePOSGGrouping.worker_spec`
  once, wraps the shared matrices in view-backed
  :class:`~repro.core.matrices.FWPair` objects, and replays the chunked
  engine's estimate gathering (:meth:`FWPair.estimate_many_at` over the
  family's bucket cache) and first-minimum greedy scan over its slice —
  the exact float operations of the sequential block router, in the
  exact per-shard order.
- **Deterministic merge**: the parent interleaves the per-shard
  decision streams back into arrival order (positions ``i mod s`` are
  shard ``i``'s, so the merge is a strided scatter — a deterministic
  ``k``-way merge on stream position) and then replays everything that
  depends on the *merged* order sequentially: per-instance busy chains
  and finish times, instance-side sketch folds and window boundaries,
  control-message generation/delivery, fault injection, queue samples
  and audit observations.  Window-boundary messages re-tighten the
  segment bound exactly as in the sequential engine; routed tuples past
  the tightened bound are *speculative* and are discarded, with each
  shard's ``C_hat`` recomputed by replaying the committed prefix's adds
  in order.

Determinism ("seed discipline")
-------------------------------
Workers perform **no** random draws and **no** time reads: the hash
family is drawn once in the parent (from the caller's ``rng``) and
shipped by value; bucket caches rebuild deterministically from the
family parameters; every RNG consumer (latency models, fault injector)
runs in the parent in per-tuple stream order.  Worker floats are plain
IEEE-754 double ops on the same values in the same order as the
sequential engine, so the run is **bit-identical** to
``simulate_stream`` for fixed seeds — completions, assignments, FSM
transitions, control traffic, queue samples, fault report and audit
report — which ``tests/simulator/test_parallel_equivalence.py`` sweeps
across workers × shards × faults × audit.

When any shard is in SEND_ALL (tuples piggy-back sync requests), the
engine falls back to the sequential per-tuple reference step for that
tuple, preserving delivery order and FSM semantics exactly.

Not supported (raises ``ValueError``): recovery defenses (per-tuple
watchdog ticks), latency hints, non-constant data-latency models, and
scenarios without bulk ``multiplier_matrix`` evaluation.  All of these
run through :func:`~repro.simulator.run.simulate_stream`.
"""

from __future__ import annotations

import bisect
import heapq
import multiprocessing
import os
from multiprocessing import shared_memory
from time import perf_counter, sleep

import numpy as np

from repro.core.matrices import FWPair
from repro.core.messages import MatricesMessage
from repro.core.multisource import MultiSourcePOSGGrouping, ShardWorkerSpec
from repro.core.scheduler import SchedulerState
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.simulator.metrics import CompletionStats
from repro.simulator.network import ConstantLatency, LatencyModel
from repro.simulator.run import (
    _INFINITY,
    SimulationResult,
    _as_latency,
    _as_latency_list,
    _fire_due_crashes,
    _prepare_audit,
    _prepare_flight,
    _prepare_lineage,
    _record_run_telemetry,
)
from repro.simulator.supervisor import SupervisionConfig, WorkerSupervisor
from repro.sketches.bucket_cache import get_bucket_cache
from repro.sketches.hashing import TwoUniversalHashFamily
from repro.telemetry.recorder import NULL_RECORDER
from repro.workloads.synthetic import Stream

#: FSM mode codes in the arena's per-shard control record
_MODE_ROUND_ROBIN = 0
_MODE_GREEDY = 1

#: exit code of a worker taken down by an injected crash fault
_WORKER_CRASH_EXIT = 70

#: per-shard control record:
#: [mode, rr_counter, pair_count, out_count, flight_count, lineage_count]
_CTRL_FIELDS = 6

_F64 = np.dtype(np.float64)
_I64 = np.dtype(np.int64)


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach an existing block without telling the resource tracker.

    CPython < 3.13 registers shared-memory *attachments* with the
    resource tracker as if they were creations, and every worker — fork
    or spawn — shares the parent's tracker process (spawn ships the
    tracker fd in its preparation data).  The tracker's cache is a
    *set*, so concurrent register/unregister pairs from several workers
    collapse and the excess unregisters surface as ``KeyError`` noise
    on stderr.  Suppressing the registration at attach time keeps the
    parent — which created the block and will unlink it — the only
    process the tracker ever hears about, which is also exactly the
    process whose abnormal death should trigger the tracker's cleanup.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def register(rname, rtype):  # pragma: no cover - trivial shim
        if rtype != "shared_memory":
            original(rname, rtype)

    resource_tracker.register = register
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class ShardArena:
    """Explicit-layout shared-memory arena for the parallel data plane.

    One ``SharedMemory`` block, partitioned into 8-byte-aligned
    C-contiguous regions (all ``float64``/``int64``, so alignment is
    automatic):

    ========  ==================  =======================================
    region    dtype / shape       contents
    ========  ==================  =======================================
    items     int64[m]            the stream's items (written once)
    ctrl      int64[s, 6]         per shard: mode, rr_counter,
                                  pair_count, out_count, flight_count,
                                  lineage_count
    c_hat     float64[s, k]       per shard: C_hat at segment start
    order     int64[s, k]         per shard: ``_pairs`` iteration order
                                  (first ``pair_count`` slots valid)
    valid     int64[s, k]         per shard: 1 if instance has matrices
    totals    float64[s, k, 2]    per shard/instance: (freq, work)
                                  sketch total weights
    freq      float64[s, k, r, c] per shard/instance: F matrix
    work      float64[s, k, r, c] per shard/instance: W matrix
    out_inst  int64[s, cap]       per shard: routed instance per slice
                                  position (worker output)
    out_est   float64[s, cap]     per shard: estimate added to C_hat
                                  per slice position (worker output)
    c_final   float64[s, k]       per shard: C_hat after the full
                                  speculative slice (worker output)
    fl_idx    int64[s, fcap]      per shard: global stream index of each
                                  flight route sample (worker output)
    fl_bel    float64[s, fcap, k] per shard: believed per-instance loads
                                  at each flight sample (worker output)
    ln_idx    int64[s, lcap]      per shard: global stream index of each
                                  lineage sample (worker output)
    ln_bel    float64[s, lcap, k] per shard: believed per-instance loads
                                  at each lineage sample (worker output)
    gl_est    float64[s * cap]    the segment's estimate stream in
                                  *global* arrival order (coupled-router
                                  output, used only when cross-shard
                                  gossip is on): slot ``p - start``
                                  holds the estimate tuple ``p``'s owner
                                  added — the value gossiped to every
                                  sibling — so a truncated commit can
                                  replay the committed prefix's adds
                                  into all shards at once
    wk_busy   float64[s]          per shard: cumulative routing seconds
                                  (wall-clock telemetry, never read by
                                  any deterministic path)
    ========  ==================  =======================================

    ``cap`` bounds a shard's slice of one segment:
    ``ceil(chunk_size / s)`` (the parent never dispatches more).
    ``fcap``/``lcap`` bound the flight-recorder and lineage-tracer
    rings: the samples one shard slice can emit at the effective
    sampling stride (1 when the subsystem is off, keeping the region
    negligible).  The parent creates the block; workers attach by name.
    Both sides build numpy views with explicit offset/shape/strides
    over ``shm.buf``, so layout is an invariant of the eight integers
    ``(s, k, rows, cols, m, cap, fcap, lcap)`` and never inferred.
    """

    def __init__(
        self,
        sources: int,
        k: int,
        rows: int,
        cols: int,
        m: int,
        cap: int,
        fcap: int = 1,
        lcap: int = 1,
        name: str | None = None,
    ) -> None:
        self.sources = sources
        self.k = k
        self.rows = rows
        self.cols = cols
        self.m = m
        self.cap = cap
        self.fcap = fcap
        self.lcap = lcap

        cell = rows * cols
        offset = 0

        def region(count: int, itemsize: int = 8) -> tuple[int, int]:
            nonlocal offset
            start = offset
            offset += count * itemsize
            return start, count

        items_at, _ = region(m)
        ctrl_at, _ = region(sources * _CTRL_FIELDS)
        c_hat_at, _ = region(sources * k)
        order_at, _ = region(sources * k)
        valid_at, _ = region(sources * k)
        totals_at, _ = region(sources * k * 2)
        freq_at, _ = region(sources * k * cell)
        work_at, _ = region(sources * k * cell)
        out_inst_at, _ = region(sources * cap)
        out_est_at, _ = region(sources * cap)
        c_final_at, _ = region(sources * k)
        fl_idx_at, _ = region(sources * fcap)
        fl_bel_at, _ = region(sources * fcap * k)
        ln_idx_at, _ = region(sources * lcap)
        ln_bel_at, _ = region(sources * lcap * k)
        gl_est_at, _ = region(sources * cap)
        wk_busy_at, _ = region(sources)
        self.nbytes = offset

        if name is None:
            self.shm = shared_memory.SharedMemory(create=True, size=self.nbytes)
            self.owner = True
        else:
            self.shm = _attach_untracked(name)
            self.owner = False

        buf = self.shm.buf

        def view(at: int, shape: tuple[int, ...], dtype) -> np.ndarray:
            return np.ndarray(shape, dtype=dtype, buffer=buf, offset=at)

        self.items = view(items_at, (m,), _I64)
        self.ctrl = view(ctrl_at, (sources, _CTRL_FIELDS), _I64)
        self.c_hat = view(c_hat_at, (sources, k), _F64)
        self.order = view(order_at, (sources, k), _I64)
        self.valid = view(valid_at, (sources, k), _I64)
        self.totals = view(totals_at, (sources, k, 2), _F64)
        self.freq = view(freq_at, (sources, k, rows, cols), _F64)
        self.work = view(work_at, (sources, k, rows, cols), _F64)
        self.out_inst = view(out_inst_at, (sources, cap), _I64)
        self.out_est = view(out_est_at, (sources, cap), _F64)
        self.c_final = view(c_final_at, (sources, k), _F64)
        self.fl_idx = view(fl_idx_at, (sources, fcap), _I64)
        self.fl_bel = view(fl_bel_at, (sources, fcap, k), _F64)
        self.ln_idx = view(ln_idx_at, (sources, lcap), _I64)
        self.ln_bel = view(ln_bel_at, (sources, lcap, k), _F64)
        self.gl_est = view(gl_est_at, (sources * cap,), _F64)
        self.wk_busy = view(wk_busy_at, (sources,), _F64)

    @property
    def name(self) -> str:
        return self.shm.name

    def layout(self) -> tuple[int, int, int, int, int, int, int, int]:
        """The eight integers a worker needs to attach with identical views."""
        return (
            self.sources, self.k, self.rows, self.cols,
            self.m, self.cap, self.fcap, self.lcap,
        )

    def close(self) -> None:
        """Drop this process's views and mapping (owner keeps the block)."""
        # release ndarray references into shm.buf before closing the map
        for attr in (
            "items", "ctrl", "c_hat", "order", "valid", "totals",
            "freq", "work", "out_inst", "out_est", "c_final",
            "fl_idx", "fl_bel", "ln_idx", "ln_bel", "gl_est", "wk_busy",
        ):
            if hasattr(self, attr):
                delattr(self, attr)
        self.shm.close()

    def unlink(self) -> None:
        """Free the underlying block (owner only, after close).

        Idempotent: a block already gone (double unlink, or an external
        cleanup racing an aborted run's teardown) is not an error.
        """
        if self.owner:
            try:
                self.shm.unlink()
            except FileNotFoundError:
                pass


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _attach_pair_views(family, arena: ShardArena, shard: int) -> list[FWPair]:
    """View-backed ``FWPair`` per instance over the shard's shared F/W.

    The pairs reuse the production estimate kernel
    (:meth:`FWPair.estimate_many_at`), so worker estimates are the same
    code path — hence the same bits — as the sequential scheduler's
    block gathering.  Total weights are refreshed from the arena before
    every segment (they drive the never-observed global-mean fallback).
    """
    pairs = []
    for instance in range(arena.k):
        pair = FWPair(family)
        pair.freq._matrix = arena.freq[shard][instance]
        pair.work._matrix = arena.work[shard][instance]
        pairs.append(pair)
    return pairs


def _flight_first_pos(first: int, sources: int, every: int) -> int:
    """Smallest slice position ``pos`` with ``(first + pos*s) % every == 0``.

    The shard's slice covers global positions ``first + pos*s``; flight
    samples fire at global multiples of ``every``.  Because the
    recorder's effective stride is coprime with ``s`` (see
    ``FlightRecorder.bind``), the congruence always has a solution in
    ``[0, every)`` and subsequent samples are exactly ``every`` slice
    positions apart.
    """
    return (-first * pow(sources, -1, every)) % every


def _route_shard(
    arena: ShardArena,
    shard: int,
    pairs: list[FWPair],
    cache,
    pooled: bool,
    start: int,
    end: int,
    flight_every: int = 0,
    lineage_every: int = 0,
    two_choices: bool = False,
) -> None:
    """Route shard ``shard``'s slice of the segment ``[start, end)``.

    Replays the sequential engine exactly: bucket columns once per
    slice, per-instance estimate columns via the same pooled /
    per-instance gathering as ``POSGScheduler._gather_columns``, then
    the first-minimum greedy scan (same tie-breaking as ``np.argmin``)
    over plain Python floats.  With ``two_choices`` the scan layers the
    scheduler's deterministic two-choices probe on top: the item-keyed
    alternate candidate wins when its believed post-add load is
    strictly lower (same float comparison as ``POSGScheduler.submit``).

    With ``flight_every > 0`` the worker additionally emits flight
    route samples into the shard's ``fl_idx``/``fl_bel`` ring: the
    global index of every sampled position and the shard's believed
    per-instance loads right after the pick (the post-add ``c`` — the
    same bits the sequential engines record from
    ``scheduler._c_hat.tolist()``).  ``lineage_every > 0`` does the
    same for lineage samples into ``ln_idx``/``ln_bel`` (the parent
    joins these believed rows with merge-computed clocks at commit).
    """
    sources = arena.sources
    k = arena.k
    ctrl = arena.ctrl[shard]
    first = start + ((shard - start) % sources)
    if first >= end:
        ctrl[3] = 0
        ctrl[4] = 0
        ctrl[5] = 0
        return
    n = (end - first + sources - 1) // sources

    if int(ctrl[0]) == _MODE_ROUND_ROBIN:
        rr = int(ctrl[1])
        out = arena.out_inst[shard]
        np.mod(
            np.arange(rr, rr + n, dtype=np.int64), k, out=out[:n]
        )
        ctrl[3] = n
        nf = 0
        if flight_every:
            # ROUND_ROBIN never touches C_hat, so every sample in the
            # slice believes the frozen segment-start snapshot.
            pos0 = _flight_first_pos(first, sources, flight_every)
            if pos0 < n:
                nf = (n - pos0 + flight_every - 1) // flight_every
                sampled = np.arange(pos0, n, flight_every, dtype=np.int64)
                arena.fl_idx[shard][:nf] = first + sampled * sources
                arena.fl_bel[shard][:nf] = arena.c_hat[shard]
        ctrl[4] = nf
        nl = 0
        if lineage_every:
            pos0 = _flight_first_pos(first, sources, lineage_every)
            if pos0 < n:
                nl = (n - pos0 + lineage_every - 1) // lineage_every
                sampled = np.arange(pos0, n, lineage_every, dtype=np.int64)
                arena.ln_idx[shard][:nl] = first + sampled * sources
                arena.ln_bel[shard][:nl] = arena.c_hat[shard]
        ctrl[5] = nl
        return

    sub = arena.items[first:end:sources]
    buckets = cache.columns_many(np.ascontiguousarray(sub))
    pair_count = int(ctrl[2])
    totals = arena.totals[shard]
    order = arena.order[shard]
    valid = arena.valid[shard]
    for instance in range(k):
        if valid[instance]:
            pair = pairs[instance]
            pair.freq._total_weight = float(totals[instance, 0])
            pair.work._total_weight = float(totals[instance, 1])

    if pooled and pair_count:
        total = np.zeros(n, dtype=np.float64)
        for slot in range(pair_count):
            total = total + pairs[int(order[slot])].estimate_many_at(buckets)
        pooled_column = (total / pair_count).tolist()
        columns = [pooled_column] * k
    else:
        zeros = None
        columns = []
        for instance in range(k):
            if valid[instance]:
                columns.append(pairs[instance].estimate_many_at(buckets).tolist())
            else:
                if zeros is None:
                    zeros = [0.0] * n
                columns.append(zeros)

    c = arena.c_hat[shard].tolist()
    inst_out: list[int] = []
    est_out: list[float] = []
    inst_append = inst_out.append
    est_append = est_out.append
    k_range = range(1, k)
    two_choices = two_choices and k > 1
    sub_items = sub.tolist() if two_choices else None
    if flight_every:
        next_fs = _flight_first_pos(first, sources, flight_every)
    else:
        next_fs = n  # sentinel: one always-false int compare per tuple
    if lineage_every:
        next_ls = _flight_first_pos(first, sources, lineage_every)
    else:
        next_ls = n
    nf = 0
    nl = 0
    fl_idx_row = arena.fl_idx[shard]
    fl_bel_row = arena.fl_bel[shard]
    ln_idx_row = arena.ln_idx[shard]
    ln_bel_row = arena.ln_bel[shard]
    for pos in range(n):
        best = c[0]
        instance = 0
        for i in k_range:
            value = c[i]
            if value < best:
                best = value
                instance = i
        est = columns[instance][pos]
        if two_choices:
            alt = sub_items[pos] % k
            if alt == instance:
                alt = alt + 1 if alt + 1 < k else 0
            alt_est = columns[alt][pos]
            if c[alt] + alt_est < c[instance] + est:
                instance = alt
                est = alt_est
        c[instance] += est
        inst_append(instance)
        est_append(est)
        if pos == next_fs:
            fl_idx_row[nf] = first + pos * sources
            fl_bel_row[nf] = c
            nf += 1
            next_fs += flight_every
        if pos == next_ls:
            ln_idx_row[nl] = first + pos * sources
            ln_bel_row[nl] = c
            nl += 1
            next_ls += lineage_every
    arena.out_inst[shard][:n] = inst_out
    arena.out_est[shard][:n] = est_out
    arena.c_final[shard][:] = c
    ctrl[3] = n
    ctrl[4] = nf
    ctrl[5] = nl


def _route_segment_coupled(
    arena: ShardArena,
    start: int,
    end: int,
    pairs_by_shard: dict[int, list[FWPair]],
    cache,
    pooled: bool,
    two_choices: bool,
    flight_every: int = 0,
    lineage_every: int = 0,
) -> None:
    """Route one segment across *all* shards in-parent, gossip-coupled.

    With cross-shard gossip on
    (:class:`~repro.core.config.CoordinationConfig`), shard ``sigma``'s
    greedy pick at stream position ``p`` depends on every estimate any
    shard added at positions ``< p`` — the shard scans are no longer
    embarrassingly parallel, so gossiping segments cannot be dispatched
    to workers.  This router walks the segment once in global arrival
    order, maintaining every shard's believed ``C_hat`` simultaneously
    and applying each nonzero estimate to all of them: the exact
    per-tuple float sequence of the sequential engines with gossip on.

    Outputs land in the same arena regions the workers fill
    (``out_inst``/``out_est``/``c_final``, the flight/lineage believed
    rings, the per-shard ``ctrl`` counts), plus ``gl_est`` — the
    estimate stream in global order — which the gossip-aware commit
    replays prefix-only when the segment is truncated.  Billing
    (gossip digests per stride) is deliberately *not* done here: it
    never feeds back into routing, so the parent replays it at commit
    via :meth:`MultiSourcePOSGGrouping.commit_gossip` over the
    committed prefix only.
    """
    sources = arena.sources
    k = arena.k
    two_choices = two_choices and k > 1
    n_by_shard = [0] * sources
    rr_mode = [False] * sources
    rr_base = [0] * sources
    columns_by_shard: list = [None] * sources
    items_by_shard: list = [None] * sources
    c_by_shard: list[list[float]] = []
    for shard in range(sources):
        ctrl = arena.ctrl[shard]
        first = start + ((shard - start) % sources)
        n = 0 if first >= end else (end - first + sources - 1) // sources
        n_by_shard[shard] = n
        rr_mode[shard] = int(ctrl[0]) == _MODE_ROUND_ROBIN
        rr_base[shard] = int(ctrl[1])
        c_by_shard.append(arena.c_hat[shard].tolist())
        if n == 0 or rr_mode[shard]:
            continue
        # Per-shard estimate columns: the identical gathering as
        # `_route_shard` (same bucket cache, same pooled/per-instance
        # split, zeros for never-synced instances).
        sub = arena.items[first:end:sources]
        buckets = cache.columns_many(np.ascontiguousarray(sub))
        pairs = pairs_by_shard[shard]
        pair_count = int(ctrl[2])
        totals = arena.totals[shard]
        order = arena.order[shard]
        valid = arena.valid[shard]
        for instance in range(k):
            if valid[instance]:
                pair = pairs[instance]
                pair.freq._total_weight = float(totals[instance, 0])
                pair.work._total_weight = float(totals[instance, 1])
        if pooled and pair_count:
            total = np.zeros(n, dtype=np.float64)
            for slot in range(pair_count):
                total = total + pairs[int(order[slot])].estimate_many_at(
                    buckets
                )
            pooled_column = (total / pair_count).tolist()
            columns = [pooled_column] * k
        else:
            zeros = None
            columns = []
            for instance in range(k):
                if valid[instance]:
                    columns.append(
                        pairs[instance].estimate_many_at(buckets).tolist()
                    )
                else:
                    if zeros is None:
                        zeros = [0.0] * n
                    columns.append(zeros)
        columns_by_shard[shard] = columns
        if two_choices:
            items_by_shard[shard] = sub.tolist()

    inst_by_shard: list[list[int]] = [[] for _ in range(sources)]
    est_by_shard: list[list[float]] = [[] for _ in range(sources)]
    nf = [0] * sources
    nl = [0] * sources
    pos = [0] * sources
    gl_est = arena.gl_est
    k_range = range(1, k)
    for p in range(start, end):
        shard = p % sources
        c = c_by_shard[shard]
        position = pos[shard]
        pos[shard] = position + 1
        if rr_mode[shard]:
            instance = (rr_base[shard] + position) % k
            est = 0.0
        else:
            best = c[0]
            instance = 0
            for i in k_range:
                value = c[i]
                if value < best:
                    best = value
                    instance = i
            columns = columns_by_shard[shard]
            est = columns[instance][position]
            if two_choices:
                alt = items_by_shard[shard][position] % k
                if alt == instance:
                    alt = alt + 1 if alt + 1 < k else 0
                alt_est = columns[alt][position]
                if c[alt] + alt_est < c[instance] + est:
                    instance = alt
                    est = alt_est
            c[instance] += est
            if est != 0.0:
                # Local delta gossip: every sibling's belief absorbs the
                # owner's add before the next tuple routes (positions are
                # walked in global order, so sibling picks at p' > p see
                # it — the sequential `route()` order exactly).
                for sib in range(sources):
                    if sib != shard:
                        c_by_shard[sib][instance] += est
        inst_by_shard[shard].append(instance)
        est_by_shard[shard].append(est)
        gl_est[p - start] = est
        if flight_every and p % flight_every == 0:
            row = nf[shard]
            arena.fl_idx[shard][row] = p
            arena.fl_bel[shard][row] = c
            nf[shard] += 1
        if lineage_every and p % lineage_every == 0:
            row = nl[shard]
            arena.ln_idx[shard][row] = p
            arena.ln_bel[shard][row] = c
            nl[shard] += 1
    for shard in range(sources):
        n = n_by_shard[shard]
        ctrl = arena.ctrl[shard]
        if n:
            arena.out_inst[shard][:n] = inst_by_shard[shard]
            arena.out_est[shard][:n] = est_by_shard[shard]
        # Written for every shard: with gossip, a shard that routed
        # nothing this segment still absorbed sibling adds.
        arena.c_final[shard][:] = c_by_shard[shard]
        ctrl[3] = n
        ctrl[4] = nf[shard]
        ctrl[5] = nl[shard]


def _worker_main(
    spec: ShardWorkerSpec,
    layout: tuple[int, int, int, int, int, int, int, int],
    shm_name: str,
    shard_ids: list[int],
    conn,
    flight_every: int = 0,
    lineage_every: int = 0,
    worker_faults: tuple = (),
) -> None:
    """Worker loop: attach the arena, route dispatched segments forever.

    Messages on ``conn``: ``(start, end, seg)`` dispatches one segment
    (the worker routes every shard it owns and acks ``("ok", seg)``),
    ``None`` shuts down.  Any exception is reported back as
    ``("error", text)``.

    ``worker_faults`` are scripted
    :class:`~repro.faults.plan.WorkerFault` events for chaos testing,
    keyed by the *global* segment index the parent stamps on every
    dispatch: ``crash`` hard-exits the process (``os._exit``, like a
    SIGKILL — no cleanup, no ack), ``hang`` sleeps ``hang_ms`` before
    routing (tripping the supervisor's ack deadline when long enough),
    and ``stall`` persistently inflates every later segment's wall
    clock by ``stall_factor``.  All three disturb only *when* the
    worker acks, never *what* it writes — routed bytes stay identical.

    Each shard's routing wall-clock accumulates into the arena's
    ``wk_busy`` region — pure telemetry (the parent folds it into the
    run report's per-worker phase spans) that no deterministic path
    ever reads, so the "workers perform no time reads" seed discipline
    holds for every value that can influence a result.
    """
    arena = None
    try:
        arena = ShardArena(*layout, name=shm_name)
        family = TwoUniversalHashFamily.from_dict(spec.hashes)
        cache = get_bucket_cache(family)
        pairs = {
            shard: _attach_pair_views(family, arena, shard)
            for shard in shard_ids
        }
        pooled = spec.pooled_estimates
        faults_by_segment = {fault.segment: fault for fault in worker_faults}
        stall_factor = 1.0
        while True:
            task = conn.recv()
            if task is None:
                break
            start, end, seg = task
            fault = faults_by_segment.pop(seg, None)
            if fault is not None:
                if fault.kind == "crash":
                    os._exit(_WORKER_CRASH_EXIT)
                if fault.kind == "hang":
                    sleep(fault.hang_ms / 1000.0)
                elif fault.kind == "stall":
                    stall_factor = fault.stall_factor
            t_seg = perf_counter()
            for shard in shard_ids:
                t0 = perf_counter()
                _route_shard(
                    arena, shard, pairs[shard], cache, pooled,
                    start, end, flight_every, lineage_every,
                    spec.two_choices,
                )
                arena.wk_busy[shard] += perf_counter() - t0
            if stall_factor > 1.0:
                sleep((stall_factor - 1.0) * (perf_counter() - t_seg))
            conn.send(("ok", seg))
    except (EOFError, KeyboardInterrupt):  # parent went away
        pass
    except Exception as error:  # surface worker failures to the parent
        import traceback

        try:
            conn.send(("error", f"{error!r}\n{traceback.format_exc()}"))
        except (OSError, EOFError, BrokenPipeError):
            pass
    finally:
        if arena is not None:
            # drop matrix views held by the FWPair wrappers first
            try:
                del pairs
            except NameError:
                pass
            arena.close()
        conn.close()


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
def default_worker_count(sources: int) -> int:
    """Workers to use when the caller does not say: ``min(s, cores)``."""
    return max(1, min(sources, os.cpu_count() or 1))


def simulate_stream_parallel(
    stream: Stream,
    policy: MultiSourcePOSGGrouping,
    workers: int | None = None,
    k: int = 5,
    scenario=None,
    data_latency: "LatencyModel | float | list" = 0.0,
    control_latency: "LatencyModel | float" = 1.0,
    rng: np.random.Generator | None = None,
    sample_queues_every: int | None = None,
    chunk_size: int = 2048,
    telemetry=None,
    faults: "FaultPlan | FaultInjector | None" = None,
    audit=None,
    flight=None,
    lineage=None,
    profiler=None,
    start_method: str | None = None,
    supervision: "SupervisionConfig | None" = None,
) -> SimulationResult:
    """Simulate one stream with the shard route loops in worker processes.

    Drop-in for :func:`~repro.simulator.run.simulate_stream` on a
    :class:`~repro.core.multisource.MultiSourcePOSGGrouping` policy —
    bit-identical results for fixed seeds (see the module docstring for
    why), with the greedy scans of control-quiet segments executed by
    ``workers`` processes over shared memory.

    Extra parameters beyond ``simulate_stream``:

    workers:
        Worker processes to spawn; clamped to the shard count ``s``
        (``workers=4`` over ``s=1`` runs one worker).  Defaults to
        ``min(s, os.cpu_count())``.
    start_method:
        Multiprocessing start method (``"fork"``/``"spawn"``/...).
        Defaults to ``fork`` where available (cheap worker startup),
        falling back to the platform default; the worker bootstrap is
        picklable, so any method works.
    flight:
        As in ``simulate_stream``: a ``FlightRecorderConfig`` or
        pre-built ``FlightRecorder``.  Workers emit route samples into
        per-shard shared-memory rings; the parent merges them back in
        reference event order at segment commit, so the recorded
        timelines are bit-identical to both sequential engines.
    lineage:
        As in ``simulate_stream``: a ``LineageConfig`` or pre-built
        ``LineageTracer``.  Workers emit the believed-load half of each
        sampled span into per-shard rings; the parent derives the
        sample's clocks during the deterministic merge and joins the
        two halves at segment commit, so recorded lineage timelines
        are bit-identical to both sequential engines.
    chunk_size:
        As in ``simulate_stream`` but must be >= 1 (there is no
        per-tuple parallel engine).
    supervision:
        A :class:`~repro.simulator.supervisor.SupervisionConfig`
        enabling self-healing: crashed or deadline-missing workers are
        killed and respawned from the frozen worker spec with the
        failed segment replayed (bit-identical — see the supervisor
        module docstring), degrading to in-parent routing after the
        respawn budget.  ``None`` (default) runs the strict policy:
        failures still *detected* (including hangs, via a generous ack
        deadline) but never healed — the run raises, as before.
        Scripted :class:`~repro.faults.plan.WorkerFault` events in the
        fault plan are shipped into the workers either way.

    Raises ``ValueError`` for configurations the parallel engine does
    not support (recovery defenses, latency hints, non-constant data
    latencies, scenarios without ``multiplier_matrix``) — run those
    through ``simulate_stream``.
    """
    if not isinstance(policy, MultiSourcePOSGGrouping):
        raise TypeError(
            "simulate_stream_parallel needs a MultiSourcePOSGGrouping "
            f"policy (got {getattr(policy, 'name', policy)!r}); wrap a "
            "single-scheduler deployment as MultiSourcePOSGGrouping(1, ...)"
        )
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if chunk_size < 1:
        raise ValueError(
            f"chunk_size must be >= 1 for the parallel engine, got {chunk_size}"
        )
    if scenario is None:
        from repro.workloads.nonstationary import LoadShiftScenario

        scenario = LoadShiftScenario.constant(k)
    if scenario.k < k:
        raise ValueError(
            f"scenario covers {scenario.k} instances but k={k} requested"
        )
    if not hasattr(scenario, "multiplier_matrix"):
        raise ValueError(
            "the parallel engine needs a scenario with bulk "
            "multiplier_matrix evaluation"
        )
    if sample_queues_every is not None and sample_queues_every < 1:
        raise ValueError(
            f"sample_queues_every must be >= 1, got {sample_queues_every}"
        )
    if policy.config.recovery is not None:
        raise ValueError(
            "recovery defenses tick per routed tuple; the parallel engine "
            "does not support them — use simulate_stream"
        )
    data_lat = _as_latency_list(data_latency, k)
    if not all(isinstance(model, ConstantLatency) for model in data_lat):
        raise ValueError(
            "the parallel engine supports constant data latencies only "
            "(random models draw per tuple in stream order)"
        )
    control_lat = _as_latency(control_latency)
    recorder = telemetry if telemetry is not None else NULL_RECORDER

    if isinstance(faults, FaultInjector):
        injector = faults if faults.active else None
    elif isinstance(faults, FaultPlan):
        injector = (
            FaultInjector(faults, k=k, telemetry=recorder)
            if faults.active
            else None
        )
    elif faults is None:
        injector = None
    else:
        raise TypeError(
            f"faults must be a FaultPlan or FaultInjector, got {faults!r}"
        )

    if workers is None:
        workers = default_worker_count(policy.sources)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")

    if profiler is not None:
        profiler.start("simulate")
    try:
        result = _simulate_parallel(
            stream, policy, int(workers), k, scenario, data_lat, control_lat,
            rng, sample_queues_every, chunk_size, injector, audit, flight,
            lineage, recorder, profiler, start_method, supervision,
        )
    finally:
        if profiler is not None:
            profiler.stop()
    result.faults = injector
    if recorder.enabled:
        _record_run_telemetry(recorder, result, k)
        _record_parallel_telemetry(recorder, result)
    return result


def _record_parallel_telemetry(recorder, result: SimulationResult) -> None:
    """Fold the engine's own counters into the run's report.

    Additive to :func:`_record_run_telemetry` (which records the same
    run-level metrics as the sequential engines): per-worker routed
    tuples plus segment/speculation accounting, so one RunReport carries
    the whole parallel run.
    """
    info = result.parallel or {}
    registry = recorder.registry
    registry.counter(
        "sim_parallel_segments_total",
        help="Control-quiet segments dispatched to workers",
    ).inc(info.get("segments", 0))
    registry.counter(
        "sim_parallel_fallback_tuples_total",
        help="Tuples routed through the sequential SEND_ALL fallback",
    ).inc(info.get("fallback_tuples", 0))
    registry.counter(
        "sim_parallel_discarded_tuples_total",
        help="Speculatively routed tuples discarded at segment re-tightening",
    ).inc(info.get("discarded_speculative_tuples", 0))
    for worker, tuples in enumerate(info.get("worker_tuples", ())):
        registry.counter(
            "sim_parallel_worker_tuples_total",
            help="Tuples committed per worker process",
            labels={"worker": worker},
        ).inc(int(tuples))
    for worker, seconds in enumerate(info.get("worker_busy_seconds", ())):
        registry.gauge(
            "sim_parallel_worker_busy_seconds",
            help="Wall-clock seconds each worker spent routing shard slices",
            labels={"worker": worker},
        ).set(float(seconds))
    registry.gauge(
        "sim_parallel_merge_stall_seconds",
        help="Wall-clock seconds the parent spent waiting on worker acks",
    ).set(float(info.get("merge_stall_seconds", 0.0)))
    sup = info.get("supervision") or {}
    registry.counter(
        "posg_supervisor_crashes_detected_total",
        help="Worker process deaths detected by the supervisor",
    ).inc(sup.get("crashes_detected", 0))
    registry.counter(
        "posg_supervisor_hangs_detected_total",
        help="Worker ack-deadline misses detected by the supervisor",
    ).inc(sup.get("hangs_detected", 0))
    registry.counter(
        "posg_supervisor_worker_errors_total",
        help="In-worker exceptions surfaced to the supervisor",
    ).inc(sup.get("worker_errors", 0))
    registry.counter(
        "posg_supervisor_respawns_total",
        help="Workers killed and respawned by the supervisor",
    ).inc(sup.get("respawns_total", 0))
    registry.counter(
        "posg_supervisor_replayed_segments_total",
        help="Failed segments replayed on a respawned worker",
    ).inc(sup.get("replayed_segments", 0))
    registry.counter(
        "posg_supervisor_inline_segments_total",
        help="Segments routed in-parent for degraded workers",
    ).inc(sup.get("inline_segments", 0))
    registry.gauge(
        "posg_supervisor_degraded_workers",
        help="Workers retired to in-parent routing by run end",
    ).set(len(sup.get("degraded_workers", ())))
    recorder.tracer.emit(
        "parallel_run",
        workers=info.get("workers"),
        start_method=info.get("start_method"),
        segments=info.get("segments"),
        fallback_tuples=info.get("fallback_tuples"),
        discarded_speculative_tuples=info.get(
            "discarded_speculative_tuples"
        ),
    )


def _simulate_parallel(
    stream: Stream,
    policy: MultiSourcePOSGGrouping,
    workers: int,
    k: int,
    scenario,
    data_lat: list[LatencyModel],
    control_lat: LatencyModel,
    rng: np.random.Generator | None,
    sample_queues_every: int | None,
    chunk_size: int,
    injector: FaultInjector | None,
    audit,
    flight,
    lineage,
    recorder,
    profiler,
    start_method: str | None,
    supervision: "SupervisionConfig | None" = None,
) -> SimulationResult:
    m = stream.m
    items_array = np.ascontiguousarray(stream.items, dtype=np.int64)
    items = items_array.tolist()
    arrivals_array = np.ascontiguousarray(stream.arrivals, dtype=np.float64)
    arrivals = arrivals_array.tolist()
    base_times = stream.base_times.tolist()

    # Hoisted execution-time columns, identical to the chunked engine:
    # a unit multiplier column is the base times themselves.
    multipliers = scenario.multiplier_matrix(m)
    execution_columns = [
        base_times
        if np.all(multipliers[:, instance] == 1.0)
        else (stream.base_times * multipliers[:, instance]).tolist()
        for instance in range(k)
    ]
    # Per-instance arrival-at-instance columns (constant latencies only;
    # x + 0.0 == x keeps the zero-latency column the arrival list).
    latency_values = [model.value for model in data_lat]
    at_cols = [
        arrivals
        if value == 0.0
        else (arrivals_array + value).tolist()
        for value in latency_values
    ]

    policy.setup(k, rng)
    if policy.scheduler._latency_hints is not None:
        raise ValueError(
            "latency hints change the greedy objective per tuple; the "
            "parallel engine does not support them — use simulate_stream"
        )
    auditor = _prepare_audit(audit, policy, recorder)
    recorder_flight = _prepare_flight(flight, policy, recorder)
    flight_every = (
        recorder_flight.sample_every if recorder_flight is not None else 0
    )
    tracer = _prepare_lineage(lineage, policy, recorder)
    lineage_every = tracer.sample_every if tracer is not None else 0
    agents = [policy.create_instance_agent(instance) for instance in range(k)]
    trackers = [agent.tracker for agent in agents]
    schedulers = list(policy.schedulers)
    sources = policy.sources
    spec = policy.worker_spec()
    window_size = policy.config.window_size

    n_workers = max(1, min(workers, sources))
    worker_faults = injector.worker_faults if injector is not None else ()
    for fault in worker_faults:
        if fault.worker >= n_workers:
            raise ValueError(
                f"scripted worker fault targets worker {fault.worker} "
                f"but only {n_workers} worker processes will run"
            )
    cap = (chunk_size + sources - 1) // sources + 1
    fcap = (cap // flight_every + 2) if flight_every else 1
    lcap = (cap // lineage_every + 2) if lineage_every else 1
    arena = ShardArena(sources, k, spec.rows, spec.cols, m, cap, fcap, lcap)

    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else methods[0]
    ctx = multiprocessing.get_context(start_method)

    worker_shards = [
        [shard for shard in range(sources) if shard % n_workers == w]
        for w in range(n_workers)
    ]

    # Degraded-mode fallback: the parent routes a retired worker's
    # shards through the identical worker code path (same pair views,
    # same bucket cache, same `_route_shard`), so degraded segments are
    # bit-identical to worker-routed ones.  Views are built lazily (the
    # healthy path never pays for them) and must be dropped before the
    # arena unmaps.
    inline_state: dict = {}

    def _inline_route(shard: int, start: int, end: int) -> None:
        if "cache" not in inline_state:
            family = TwoUniversalHashFamily.from_dict(spec.hashes)
            inline_state["family"] = family
            inline_state["cache"] = get_bucket_cache(family)
            inline_state["pairs"] = {}
        pairs = inline_state["pairs"].get(shard)
        if pairs is None:
            pairs = _attach_pair_views(inline_state["family"], arena, shard)
            inline_state["pairs"][shard] = pairs
        _route_shard(
            arena, shard, pairs, inline_state["cache"],
            spec.pooled_estimates, start, end, flight_every, lineage_every,
            spec.two_choices,
        )

    def _coupled_route(start: int, end: int) -> None:
        # Gossip couples the shard scans, so the whole segment routes
        # in-parent through the same lazily-built views as the
        # degraded-mode fallback (workers stay idle for gossip runs).
        if "cache" not in inline_state:
            family = TwoUniversalHashFamily.from_dict(spec.hashes)
            inline_state["family"] = family
            inline_state["cache"] = get_bucket_cache(family)
            inline_state["pairs"] = {}
        pairs_by_shard = inline_state["pairs"]
        for shard in range(sources):
            if shard not in pairs_by_shard:
                pairs_by_shard[shard] = _attach_pair_views(
                    inline_state["family"], arena, shard
                )
        _route_segment_coupled(
            arena, start, end, pairs_by_shard, inline_state["cache"],
            spec.pooled_estimates, spec.two_choices,
            flight_every, lineage_every,
        )

    supervisor = WorkerSupervisor(
        ctx=ctx,
        target=_worker_main,
        spec=spec,
        layout=arena.layout(),
        shm_name=arena.name,
        worker_shards=worker_shards,
        flight_every=flight_every,
        lineage_every=lineage_every,
        config=supervision,
        worker_faults=worker_faults,
        inline_router=_inline_route,
        injector=injector,
        recorder=recorder,
        flight=recorder_flight,
    )
    run_info: dict = {}
    try:
        arena.items[:] = items_array
        supervisor.start()

        run_info = _parallel_loop(
            m=m,
            items=items,
            arrivals=arrivals,
            arrivals_array=arrivals_array,
            execution_columns=execution_columns,
            at_cols=at_cols,
            latency_values=latency_values,
            control_lat=control_lat,
            policy=policy,
            schedulers=schedulers,
            sources=sources,
            k=k,
            agents=agents,
            trackers=trackers,
            window_size=window_size,
            chunk_size=chunk_size,
            arena=arena,
            supervisor=supervisor,
            injector=injector,
            auditor=auditor,
            flight=recorder_flight,
            flight_every=flight_every,
            lineage=tracer,
            lineage_every=lineage_every,
            sample_queues_every=sample_queues_every,
            profiler=profiler,
            coupled_router=_coupled_route,
        )
        run_info["shard_busy_seconds"] = arena.wk_busy.tolist()
    finally:
        supervisor.shutdown()
        # drop the inline fallback's matrix views before unmapping
        inline_state.clear()
        arena.close()
        arena.unlink()

    shard_tuples = run_info.pop("shard_tuples")
    worker_tuples = [
        sum(shard_tuples[shard] for shard in shards)
        for shards in worker_shards
    ]
    shard_busy = run_info.pop("shard_busy_seconds", [0.0] * sources)
    worker_busy = [
        sum(shard_busy[shard] for shard in shards)
        for shards in worker_shards
    ]
    result = SimulationResult(
        stats=CompletionStats(
            run_info.pop("completions"),
            np.asarray(run_info.pop("assignments"), dtype=np.int64),
        ),
        policy=policy,
        state_transitions=run_info.pop("state_transitions"),
        control_messages=run_info.pop("control_messages"),
        control_bits=run_info.pop("control_bits"),
        queue_samples=(
            np.asarray(run_info.pop("queue_samples"))
            if sample_queues_every is not None
            else None
        ),
        queue_sample_indices=(
            np.asarray(run_info.pop("queue_sample_indices"), dtype=np.int64)
            if sample_queues_every is not None
            else None
        ),
        audit=auditor,
        flight=recorder_flight,
        lineage=tracer,
        parallel={
            "workers": n_workers,
            "start_method": start_method,
            "worker_shards": worker_shards,
            "worker_tuples": worker_tuples,
            "worker_busy_seconds": worker_busy,
            "shard_busy_seconds": shard_busy,
            "supervision": supervisor.report(),
            **run_info,
        },
    )
    return result


def _parallel_loop(
    *,
    m,
    items,
    arrivals,
    arrivals_array,
    execution_columns,
    at_cols,
    latency_values,
    control_lat,
    policy,
    schedulers,
    sources,
    k,
    agents,
    trackers,
    window_size,
    chunk_size,
    arena: ShardArena,
    supervisor: WorkerSupervisor,
    injector,
    auditor,
    flight,
    flight_every,
    lineage,
    lineage_every,
    sample_queues_every,
    profiler,
    coupled_router=None,
) -> dict:
    """The dispatch/merge/commit loop.  Returns the run's bookkeeping."""
    busy = [0.0] * k
    finishes: list[float] = []
    assignments: list[int] = []
    control_queue: list[tuple[float, int, object]] = []
    control_seq = 0
    control_messages = 0
    control_bits = 0
    state_transitions: list[tuple[int, SchedulerState]] = []
    queue_samples: list[list[float]] = []
    queue_sample_indices: list[int] = []
    previous_state = policy.state

    every = sample_queues_every
    next_sample = 0 if every is not None else m
    audit_every = auditor.sample_every if auditor is not None else 0
    audit_observe = auditor.observe if auditor is not None else None
    next_audit = 0 if auditor is not None else m

    # Only *control-plane* faults (message channels, instance crashes,
    # slow-node windows) force the per-tuple faulted merge; a plan
    # scripting nothing but process-level worker faults keeps the fast
    # merge — inactive channels draw no RNG in either engine, and
    # worker faults never change what workers write, so the fast path
    # stays bit-identical.
    faulting = injector is not None and injector.plan.control_active
    crash_ptr = 0

    # Instance-side batching (fault-free fast merge only: crashes force
    # per-tuple tracker folds, and faulted runs never batch).
    pending_items: list[list[int]] = [[] for _ in range(k)]
    pending_times: list[list[float]] = [[] for _ in range(k)]
    window_left = [tracker.window_remaining for tracker in trackers]

    matrices_dirty = [True] * sources
    shard_tuples = [0] * sources
    segments = 0
    fallback_tuples = 0
    discarded = 0
    merge_stall = 0.0
    # Cross-shard gossip couples the per-shard scans: segments route
    # in-parent through `coupled_router` and C_hat folds back for all
    # shards at once (see the commit step).
    gossip_coupled = policy._gossip_on

    send_all = SchedulerState.SEND_ALL
    heappush = heapq.heappush
    heappop = heapq.heappop
    bisect_left = bisect.bisect_left
    ctrl = arena.ctrl
    c_hat_region = arena.c_hat
    out_inst_region = arena.out_inst
    out_est_region = arena.out_est
    c_final_region = arena.c_final
    fl_idx_region = arena.fl_idx
    fl_bel_region = arena.fl_bel
    ln_idx_region = arena.ln_idx
    ln_bel_region = arena.ln_bel
    #: merge-computed clock halves of this segment's lineage samples,
    #: keyed by stream index — joined with the worker-emitted believed
    #: rows at commit: ``{p: (at_instance, start, finish, window_left)}``
    lin_pending: dict[int, tuple[float, float, float, int]] = {}

    def _window_boundary(
        instance: int,
        item: int,
        execution_time: float,
        finish: float,
        lo: int,
        next_due: float,
        end: int,
    ) -> tuple[float, int]:
        """Fault-free window close: flush the batch, run the boundary
        tuple through the FSM, enqueue its messages, re-tighten the
        segment bound.  Mirrors the chunked engine's closure exactly."""
        nonlocal control_seq, control_messages, control_bits
        tracker = trackers[instance]
        batch = pending_items[instance]
        if profiler is not None:
            profiler.start("window_close")
        if batch:
            if profiler is not None:
                profiler.start("fold")
            tracker.execute_batch(batch, pending_times[instance])
            if profiler is not None:
                profiler.stop()
            batch.clear()
            pending_times[instance].clear()
        messages = tracker.execute(item, execution_time, None)
        for message in messages:
            delivery = finish + control_lat.sample()
            heappush(control_queue, (delivery, control_seq, message))
            control_seq += 1
            control_messages += 1
            control_bits += message.size_bits()
        if control_queue and control_queue[0][0] < next_due:
            next_due = control_queue[0][0]
            end = bisect_left(arrivals, next_due, lo, end)
        if profiler is not None:
            profiler.stop()
        return next_due, end

    def _sync_shard(shard: int) -> None:
        """Refresh the shard's arena mirror from its live scheduler."""
        scheduler = schedulers[shard]
        record = ctrl[shard]
        record[0] = (
            _MODE_ROUND_ROBIN
            if scheduler.state is SchedulerState.ROUND_ROBIN
            else _MODE_GREEDY
        )
        record[1] = scheduler._rr_counter
        c_hat_region[shard][:] = scheduler._c_hat
        if not matrices_dirty[shard]:
            return
        matrices = scheduler._matrices
        record[2] = len(matrices)
        valid = arena.valid[shard]
        valid[:] = 0
        order = arena.order[shard]
        totals = arena.totals[shard]
        for slot, (instance, pair) in enumerate(matrices.items()):
            order[slot] = instance
            valid[instance] = 1
            arena.freq[shard][instance][:] = pair.freq._matrix
            arena.work[shard][instance][:] = pair.work._matrix
            totals[instance, 0] = pair.freq.total_weight
            totals[instance, 1] = pair.work.total_weight
        matrices_dirty[shard] = False

    j = 0
    while j < m:
        arrival = arrivals[j]

        if control_queue and control_queue[0][0] <= arrival:
            if profiler is not None:
                profiler.start("control")
            batch = []
            while control_queue and control_queue[0][0] <= arrival:
                _, _, message = heappop(control_queue)
                batch.append(message)
                if isinstance(message, MatricesMessage):
                    for shard in range(sources):
                        matrices_dirty[shard] = True
            policy.on_control_batch(batch)
            if profiler is not None:
                profiler.stop()

        if any(s.state is send_all for s in schedulers):
            # ------------------------------------------------------
            # SEND_ALL fallback: sequential reference per-tuple step.
            # ------------------------------------------------------
            fallback_tuples += 1
            if j == next_sample:
                queue_sample_indices.append(j)
                queue_samples.append([max(0.0, b - arrival) for b in busy])
                next_sample += every
            if faulting:
                crash_ptr = _fire_due_crashes(
                    injector, crash_ptr, arrival, agents, busy
                )
            if profiler is not None:
                profiler.start("route")
            decision = policy.route(items[j])
            if profiler is not None:
                profiler.stop()
            instance = decision.instance
            shard_tuples[j % sources] += 1
            at_instance = arrival + latency_values[instance]
            b = busy[instance]
            start = at_instance if at_instance > b else b
            execution_time = execution_columns[instance][j]
            sync_request = decision.sync_request
            if faulting:
                factor = injector.execution_factor(instance, arrival)
                if factor != 1.0:
                    execution_time = execution_time * factor
                if sync_request is not None and injector.drop_request(
                    sync_request
                ):
                    sync_request = None
            finish = start + execution_time
            busy[instance] = finish
            finishes.append(finish)
            assignments.append(instance)
            if j == next_audit:
                audit_observe(j, items[j], instance, execution_time)
                next_audit += audit_every
            if flight is not None and j % flight_every == 0:
                policy.record_flight_route(flight, j, instance)
            if lineage is not None and j % lineage_every == 0:
                # window_left drifts in faulted runs (the faulted merge
                # only refreshes it at boundaries) but batches are never
                # pending there, so the tracker's own counter is exact;
                # fault-free runs may hold un-folded batches, where
                # window_left is the accurate logical counter.
                policy.record_lineage_route(
                    lineage, j, instance, arrival, at_instance, start,
                    finish,
                    trackers[instance].window_remaining
                    if faulting
                    else window_left[instance],
                )
            if profiler is not None:
                profiler.start("fold")
            if pending_items[instance]:
                trackers[instance].execute_batch(
                    pending_items[instance], pending_times[instance]
                )
                pending_items[instance].clear()
                pending_times[instance].clear()
            messages = trackers[instance].execute(
                items[j], execution_time, sync_request
            )
            window_left[instance] = trackers[instance].window_remaining
            if profiler is not None:
                profiler.stop()
            for message in messages:
                delivery = finish + control_lat.sample()
                control_messages += 1
                control_bits += message.size_bits()
                if faulting:
                    for when in injector.deliver_times(message, delivery):
                        heappush(control_queue, (when, control_seq, message))
                        control_seq += 1
                else:
                    heappush(control_queue, (delivery, control_seq, message))
                    control_seq += 1
            if decision.sync_request is not None:
                control_messages += 1
                control_bits += decision.sync_request.size_bits()
            current_state = policy.state
            if current_state is not previous_state:
                state_transitions.append((j, current_state))
                previous_state = current_state
            j += 1
            continue

        # ----------------------------------------------------------
        # Control-quiet segment: dispatch the shard slices to workers.
        # ----------------------------------------------------------
        segments += 1
        if control_queue:
            next_due = control_queue[0][0]
            end = bisect_left(arrivals, next_due, j + 1, min(j + chunk_size, m))
        else:
            next_due = _INFINITY
            end = min(j + chunk_size, m)
        # Drain-induced transition: recorded at the next routed index,
        # which this segment routes (same as the chunked engine).
        current_state = policy.state
        if current_state is not previous_state:
            state_transitions.append((j, current_state))
            previous_state = current_state

        if profiler is not None:
            profiler.start("route")
        for shard in range(sources):
            _sync_shard(shard)
        if gossip_coupled:
            coupled_router(j, end)
        else:
            merge_stall += supervisor.route_segment(j, end)
        # Deterministic k-way merge of the shard decision streams:
        # shard sigma produced the decisions for positions
        # first_sigma, first_sigma + s, ... — a strided interleave.
        end0 = end
        seg_len0 = end0 - j
        seg_asg_np = np.empty(seg_len0, dtype=np.int64)
        for shard in range(sources):
            first = j + ((shard - j) % sources)
            if first >= end0:
                continue
            n_shard = (end0 - first + sources - 1) // sources
            seg_asg_np[first - j :: sources] = out_inst_region[shard][:n_shard]
        seg_asg = seg_asg_np.tolist()
        if profiler is not None:
            profiler.stop()

        if profiler is not None:
            profiler.start("merge")
        if faulting:
            # --------------------------------------------------
            # Faulted merge: replay the reference per-tuple step
            # (minus routing) in arrival order — crashes, slowdown
            # factors and message-fault draws happen at the exact
            # sequential points.
            # --------------------------------------------------
            t = j
            while t < end:
                ar_t = arrivals[t]
                if t == next_sample:
                    queue_sample_indices.append(t)
                    queue_samples.append(
                        [max(0.0, b - ar_t) for b in busy]
                    )
                    next_sample += every
                crash_ptr = _fire_due_crashes(
                    injector, crash_ptr, ar_t, agents, busy
                )
                instance = seg_asg[t - j]
                at_instance = at_cols[instance][t]
                b = busy[instance]
                start = at_instance if at_instance > b else b
                execution_time = execution_columns[instance][t]
                factor = injector.execution_factor(instance, ar_t)
                if factor != 1.0:
                    execution_time = execution_time * factor
                finish = start + execution_time
                busy[instance] = finish
                finishes.append(finish)
                assignments.append(instance)
                if t == next_audit:
                    audit_observe(t, items[t], instance, execution_time)
                    next_audit += audit_every
                if lineage_every and t % lineage_every == 0:
                    # Pre-execute read: faulted runs never batch, so the
                    # tracker's counter is the exact reference value.
                    lin_pending[t] = (
                        at_instance, start, finish,
                        trackers[instance].window_remaining,
                    )
                messages = trackers[instance].execute(
                    items[t], execution_time, None
                )
                if messages:
                    for message in messages:
                        delivery = finish + control_lat.sample()
                        control_messages += 1
                        control_bits += message.size_bits()
                        for when in injector.deliver_times(message, delivery):
                            heappush(
                                control_queue, (when, control_seq, message)
                            )
                            control_seq += 1
                    window_left[instance] = trackers[
                        instance
                    ].window_remaining
                    if control_queue and control_queue[0][0] < next_due:
                        next_due = control_queue[0][0]
                        end = bisect_left(arrivals, next_due, t + 1, end)
                t += 1
        else:
            # --------------------------------------------------
            # Fast merge: de-interleaved per-instance busy chains
            # between window boundaries (the generalization of the
            # chunked engine's ROUND_ROBIN segment merge to an
            # arbitrary precomputed assignment).
            # --------------------------------------------------
            seg_fin_np = np.empty(seg_len0, dtype=np.float64)
            occ = [
                np.nonzero(seg_asg_np == instance)[0] + j
                for instance in range(k)
            ]
            occ_size = [int(arr.size) for arr in occ]
            ptr = [0] * k
            cur = j
            while True:
                nb = end
                for i in range(k):
                    pidx = ptr[i] + window_left[i] - 1
                    if pidx < occ_size[i]:
                        cand = occ[i][pidx]
                        if cand < nb:
                            nb = int(cand)
                safe_end = nb
                if safe_end > cur:
                    sampling = next_sample < safe_end
                    if lineage_every:
                        # First sampled index at or after ``cur``
                        # (samples land on multiples of the stride).
                        ls0 = -(-cur // lineage_every) * lineage_every
                        lin_here = ls0 < safe_end
                    else:
                        lin_here = False
                    collect = sampling or lin_here
                    start_busy = busy[:] if collect else None
                    base_ptr = ptr[:] if collect else None
                    base_wl = window_left[:] if lin_here else None
                    chains: list[list[float]] = []
                    for i in range(k):
                        arr = occ[i]
                        p_lo = ptr[i]
                        p_hi = int(np.searchsorted(arr, safe_end, side="left"))
                        fl: list[float] = []
                        n_i = p_hi - p_lo
                        if n_i:
                            positions = arr[p_lo:p_hi]
                            pos_list = positions.tolist()
                            at_col_i = at_cols[i]
                            x_col_i = execution_columns[i]
                            xs = [x_col_i[t] for t in pos_list]
                            b = busy[i]
                            fa = fl.append
                            for t, w in zip(pos_list, xs):
                                at = at_col_i[t]
                                if at > b:
                                    b = at
                                b += w
                                fa(b)
                            busy[i] = b
                            seg_fin_np[positions - j] = fl
                            pending_items[i].extend(
                                items[t] for t in pos_list
                            )
                            pending_times[i].extend(xs)
                            window_left[i] -= n_i
                            ptr[i] = p_hi
                        if collect:
                            chains.append(fl)
                    while next_sample < safe_end:
                        sidx = next_sample
                        ar_s = arrivals[sidx]
                        sample = []
                        for i in range(k):
                            cnt = (
                                int(np.searchsorted(occ[i], sidx))
                                - base_ptr[i]
                            )
                            bi = (
                                start_busy[i]
                                if cnt <= 0
                                else chains[i][cnt - 1]
                            )
                            sample.append(max(0.0, bi - ar_s))
                        queue_sample_indices.append(sidx)
                        queue_samples.append(sample)
                        next_sample += every
                    while next_audit < safe_end:
                        sidx = next_audit
                        instance = seg_asg[sidx - j]
                        audit_observe(
                            sidx,
                            items[sidx],
                            instance,
                            execution_columns[instance][sidx],
                        )
                        next_audit += audit_every
                    if lin_here:
                        # Replay each sampled tuple's clocks off the
                        # de-interleaved busy chains (the queue-sample
                        # reconstruction, plus finish and window math).
                        for p in range(ls0, safe_end, lineage_every):
                            i = seg_asg[p - j]
                            cnt = (
                                int(np.searchsorted(occ[i], p))
                                - base_ptr[i]
                            )
                            prev_b = (
                                start_busy[i]
                                if cnt == 0
                                else chains[i][cnt - 1]
                            )
                            at = at_cols[i][p]
                            lin_pending[p] = (
                                at,
                                at if at > prev_b else prev_b,
                                chains[i][cnt],
                                base_wl[i] - cnt,
                            )
                    cur = safe_end
                if cur >= end:
                    break
                # Window-boundary tuple: reference per-tuple step.
                t = cur
                if t == next_sample:
                    ar_t = arrivals[t]
                    queue_sample_indices.append(t)
                    queue_samples.append(
                        [max(0.0, b - ar_t) for b in busy]
                    )
                    next_sample += every
                instance = seg_asg[t - j]
                at_instance = at_cols[instance][t]
                b = busy[instance]
                if at_instance > b:
                    b = at_instance
                execution_time = execution_columns[instance][t]
                finish = b + execution_time
                busy[instance] = finish
                seg_fin_np[t - j] = finish
                if lineage_every and t % lineage_every == 0:
                    # window_left is still the pre-close value (always
                    # 1 at a boundary tuple), reset only below.
                    lin_pending[t] = (
                        at_instance, b, finish, window_left[instance]
                    )
                next_due, end = _window_boundary(
                    instance, items[t], execution_time, finish,
                    t + 1, next_due, end,
                )
                window_left[instance] = window_size
                ptr[instance] += 1
                if t == next_audit:
                    audit_observe(t, items[t], instance, execution_time)
                    next_audit += audit_every
                cur = t + 1
            count = end - j
            finishes.extend(seg_fin_np[:count].tolist())
            assignments.extend(seg_asg[:count])
        if profiler is not None:
            profiler.stop()

        # ----------------------------------------------------------
        # Commit: fold each shard's committed prefix back into its
        # scheduler.  A truncated shard replays its C_hat adds in
        # order (same IEEE sequence as routing only the prefix).
        # ----------------------------------------------------------
        discarded += end0 - end
        for shard in range(sources):
            first = j + ((shard - j) % sources)
            n_committed = (
                0 if end <= first else (end - first + sources - 1) // sources
            )
            n_routed = int(ctrl[shard][3])
            scheduler = schedulers[shard]
            scheduler._tuples_scheduled += n_committed
            shard_tuples[shard] += n_committed
            if int(ctrl[shard][0]) == _MODE_ROUND_ROBIN:
                scheduler._rr_counter += n_committed
            elif gossip_coupled:
                pass  # C_hat folds for all shards at once, below
            elif n_committed == 0:
                pass  # shard untouched this segment; c_final is stale
            elif n_committed == n_routed:
                scheduler._c_hat[:] = c_final_region[shard]
            else:
                c_hat = scheduler._c_hat
                inst_out = out_inst_region[shard][:n_committed].tolist()
                est_out = out_est_region[shard][:n_committed].tolist()
                for instance, estimate in zip(inst_out, est_out):
                    c_hat[instance] += estimate
            if flight is not None:
                # Merge the shard's flight ring in reference event
                # order: samples are stored by ascending stream index,
                # and route events for this segment sit between the
                # control events drained at the segment's boundaries —
                # exactly where the sequential engines record them.
                # Samples past the (possibly re-tightened) commit bound
                # are speculative; the next segment re-routes and
                # re-samples them.
                nf = int(ctrl[shard][4])
                if nf:
                    fl_idx_row = fl_idx_region[shard]
                    fl_bel_row = fl_bel_region[shard]
                    for r in range(nf):
                        p = int(fl_idx_row[r])
                        if p >= end:
                            break
                        flight.record_route(
                            shard, p, seg_asg[p - j], fl_bel_row[r].tolist()
                        )
            if lineage is not None:
                # Join the worker-emitted believed rows with the clocks
                # the merge derived.  Rows past the commit bound are
                # speculative (re-routed next segment); every committed
                # row has pending clocks, so the pop fails loudly if
                # the two halves ever disagree.
                nl = int(ctrl[shard][5])
                if nl:
                    ln_idx_row = ln_idx_region[shard]
                    ln_bel_row = ln_bel_region[shard]
                    for r in range(nl):
                        p = int(ln_idx_row[r])
                        if p >= end:
                            break
                        clocks = lin_pending.pop(p)
                        lineage.record_sample(
                            shard, p, seg_asg[p - j],
                            ln_bel_row[r].tolist(), arrivals[p],
                            clocks[0], clocks[1], clocks[2], clocks[3],
                        )
        if gossip_coupled:
            # Gossip-coupled C_hat fold: every nonzero estimate was
            # added to every shard's belief, so a full commit snapshots
            # each shard's coupled c_final, and a truncated one replays
            # the committed prefix's adds — in global order, into all
            # shards at once (the same IEEE add sequence per slot as
            # routing only the prefix).
            if end == end0:
                for shard in range(sources):
                    schedulers[shard]._c_hat[:] = c_final_region[shard]
            else:
                count = end - j
                if count:
                    c_hats = [s._c_hat for s in schedulers]
                    gl = arena.gl_est[:count].tolist()
                    for idx, estimate in enumerate(gl):
                        if estimate != 0.0:
                            instance = seg_asg[idx]
                            for c_hat in c_hats:
                                c_hat[instance] += estimate
            # Billing replay over the committed prefix only: digests are
            # a pure observability cost, so they fold at commit rather
            # than during speculative routing.
            for shard in range(sources):
                if int(ctrl[shard][0]) == _MODE_ROUND_ROBIN:
                    continue
                first = j + ((shard - j) % sources)
                n_committed = (
                    0
                    if end <= first
                    else (end - first + sources - 1) // sources
                )
                if n_committed:
                    policy.commit_gossip(
                        shard,
                        int(
                            np.count_nonzero(
                                out_est_region[shard][:n_committed]
                            )
                        ),
                    )
        policy.sync_cursor(end)
        j = end

    # Fold the tail batches so tracker state ends exactly where the
    # sequential engines leave it.
    for instance in range(k):
        if pending_items[instance]:
            if profiler is not None:
                profiler.start("fold")
            trackers[instance].execute_batch(
                pending_items[instance], pending_times[instance]
            )
            if profiler is not None:
                profiler.stop()

    completions = np.asarray(finishes, dtype=np.float64) - arrivals_array
    return {
        "completions": completions,
        "assignments": assignments,
        "state_transitions": state_transitions,
        "control_messages": control_messages,
        "control_bits": control_bits,
        "queue_samples": queue_samples,
        "queue_sample_indices": queue_sample_indices,
        "segments": segments,
        "fallback_tuples": fallback_tuples,
        "discarded_speculative_tuples": discarded,
        "merge_stall_seconds": merge_stall,
        "shard_tuples": shard_tuples,
    }
