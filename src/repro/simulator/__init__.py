"""Discrete-event simulation substrate.

The paper's simulation results (Figures 4–10) come from a custom
simulator of a single scheduling stage: a source injects tuples at a
constant rate, a scheduler operator ``S`` routes each tuple to one of
``k`` downstream operator instances, and each instance executes its FIFO
queue without preemption.

Two execution paths are provided:

- :func:`~repro.simulator.run.simulate_stream` — a fast direct simulation
  of the single-stage topology (the workhorse behind every figure);
- :mod:`~repro.simulator.engine` + :mod:`~repro.simulator.topology` — a
  general discrete-event engine with explicit source / scheduler /
  instance processes, used by the Storm-like engine and to cross-validate
  the fast path (they must agree tuple-for-tuple).
"""

from repro.simulator.events import Event, EventQueue
from repro.simulator.engine import Simulation
from repro.simulator.network import (
    ConstantLatency,
    LatencyModel,
    LognormalLatency,
    UniformLatency,
)
from repro.simulator.metrics import CompletionStats
from repro.simulator.parallel import simulate_stream_parallel
from repro.simulator.run import SimulationResult, simulate_stream
from repro.simulator.topology import StageTopology

__all__ = [
    "Event",
    "EventQueue",
    "Simulation",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LognormalLatency",
    "CompletionStats",
    "SimulationResult",
    "simulate_stream",
    "simulate_stream_parallel",
    "StageTopology",
]
