"""Classical queueing formulas, used to validate the simulator.

The paper's completion-time metric is queueing delay plus service time;
our simulator's credibility therefore rests on it reproducing known
queueing theory.  This module provides closed forms the test suite
checks the simulator against:

- **M/G/1** (Poisson arrivals, general service, one server):
  the Pollaczek–Khinchine mean waiting time
  ``E[W] = lambda * E[S^2] / (2 * (1 - rho))``;
- **D/G/1 and G/G/1**: Kingman's heavy-traffic approximation
  ``E[W] ~ (rho / (1 - rho)) * ((c_a^2 + c_s^2) / 2) * E[S]``,
  exact in the M/M/1 case and an upper-bound-flavoured estimate
  elsewhere;
- utilization/stability helpers.

All times in milliseconds, rates in tuples per millisecond.
"""

from __future__ import annotations

import numpy as np


def utilization(arrival_rate: float, mean_service: float, servers: int = 1) -> float:
    """``rho = lambda * E[S] / k``."""
    if arrival_rate < 0 or mean_service < 0:
        raise ValueError("arrival_rate and mean_service must be >= 0")
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    return arrival_rate * mean_service / servers


def mg1_mean_wait(
    arrival_rate: float, mean_service: float, second_moment_service: float
) -> float:
    """Pollaczek–Khinchine mean waiting time (time in queue) for M/G/1.

    Requires ``rho < 1``; raises otherwise (the queue is unstable and the
    mean wait diverges).
    """
    rho = utilization(arrival_rate, mean_service)
    if rho >= 1.0:
        raise ValueError(f"M/G/1 is unstable at rho={rho:.3f} >= 1")
    if second_moment_service < mean_service**2:
        raise ValueError("E[S^2] cannot be below E[S]^2")
    return arrival_rate * second_moment_service / (2.0 * (1.0 - rho))


def mg1_mean_sojourn(
    arrival_rate: float, mean_service: float, second_moment_service: float
) -> float:
    """Mean time in system (wait + service) for M/G/1 — the simulator's
    per-tuple completion time for a k=1 stage fed by Poisson arrivals."""
    return mean_service + mg1_mean_wait(
        arrival_rate, mean_service, second_moment_service
    )


def kingman_mean_wait(
    arrival_rate: float,
    mean_service: float,
    ca2: float,
    cs2: float,
) -> float:
    """Kingman's G/G/1 approximation of the mean waiting time.

    ``ca2``/``cs2`` are the squared coefficients of variation of the
    inter-arrival and service distributions.  Exact for M/M/1
    (``ca2 = cs2 = 1``); for deterministic arrivals pass ``ca2 = 0``.
    """
    rho = utilization(arrival_rate, mean_service)
    if rho >= 1.0:
        raise ValueError(f"G/G/1 is unstable at rho={rho:.3f} >= 1")
    if ca2 < 0 or cs2 < 0:
        raise ValueError("squared coefficients of variation must be >= 0")
    return (rho / (1.0 - rho)) * ((ca2 + cs2) / 2.0) * mean_service


def service_moments(service_times: np.ndarray) -> tuple[float, float, float]:
    """Empirical ``(E[S], E[S^2], c_s^2)`` of a service-time sample."""
    service_times = np.asarray(service_times, dtype=np.float64)
    if service_times.size == 0:
        raise ValueError("need at least one service time")
    mean = float(service_times.mean())
    second = float((service_times**2).mean())
    variance = second - mean**2
    cs2 = variance / mean**2 if mean > 0 else 0.0
    return mean, second, cs2
