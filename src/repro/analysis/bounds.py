"""Theorem 4.2 — the Greedy Online Scheduler approximation bound.

For any task sequence ``sigma`` on ``k`` identical machines,

    C_GOS(sigma) <= (2 - 1/k) * C_OPT(sigma),

and the bound is tight (Gusfield 1984): ``k(k-1)`` tasks of weight
``w_max/k`` followed by one task of weight ``w_max`` force GOS to a
makespan of ``w_max (2 - 1/k)`` while OPT achieves ``w_max``.

Since computing the true ``C_OPT`` is NP-hard, the verification uses the
lower bound ``max(sum(w)/k, max(w))`` (Eqs. 3-4), which only makes the
check stricter.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.gos import (
    adversarial_sequence,
    greedy_online_schedule,
    makespan,
    opt_lower_bound,
)


@dataclass(frozen=True)
class Theorem42Check:
    """Outcome of checking Theorem 4.2 on one task sequence."""

    k: int
    gos_makespan: float
    opt_lower_bound: float
    ratio: float
    bound: float

    @property
    def holds(self) -> bool:
        """Whether ``C_GOS <= (2 - 1/k) * C_OPT`` (via the lower bound)."""
        return self.ratio <= self.bound + 1e-9

    @property
    def tight(self) -> bool:
        """Whether the sequence achieves the bound exactly."""
        return abs(self.ratio - self.bound) <= 1e-9


def verify_theorem_42(weights: Sequence[float], k: int) -> Theorem42Check:
    """Run GOS on a sequence and compare against the theorem's bound."""
    _, loads = greedy_online_schedule(weights, k)
    gos = makespan(loads)
    lower = opt_lower_bound(weights, k)
    ratio = gos / lower if lower > 0 else 1.0
    return Theorem42Check(
        k=k,
        gos_makespan=gos,
        opt_lower_bound=lower,
        ratio=ratio,
        bound=2.0 - 1.0 / k,
    )


def gusfield_worst_case(k: int, w_max: float = 1.0) -> Theorem42Check:
    """The tight adversarial instance; its check always reports
    ``tight=True`` (the lower bound coincides with OPT there)."""
    return verify_theorem_42(adversarial_sequence(k, w_max), k)


def exact_optimal_makespan(weights: Sequence[float], k: int) -> float:
    """The true ``C_OPT`` by branch and bound (exponential; small inputs).

    Assigns tasks in decreasing weight order, pruning branches whose
    partial makespan already exceeds the incumbent and symmetric branches
    (machines with equal loads are interchangeable).  Practical for
    roughly ``len(weights) <= 16``; used by tests to check Theorem 4.2
    against the *exact* optimum rather than the lower bound.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    weights = sorted((float(w) for w in weights), reverse=True)
    if not weights:
        return 0.0
    if any(w < 0 for w in weights):
        raise ValueError("task weights must be >= 0")
    if len(weights) > 20:
        raise ValueError(
            f"exact search is exponential; got {len(weights)} tasks (max 20)"
        )
    # Start from a good incumbent: greedy on the sorted order (LPT).
    _, lpt_loads = greedy_online_schedule(weights, k)
    best = makespan(lpt_loads)
    lower = opt_lower_bound(weights, k)
    if best <= lower + 1e-12:
        return best
    suffix_sums = [0.0] * (len(weights) + 1)
    for index in range(len(weights) - 1, -1, -1):
        suffix_sums[index] = suffix_sums[index + 1] + weights[index]
    loads = [0.0] * k

    def search(index: int) -> None:
        nonlocal best
        if index == len(weights):
            best = min(best, max(loads))
            return
        current_max = max(loads)
        # Remaining work cannot reduce the incumbent below this bound.
        if max(current_max, (suffix_sums[index] + sum(loads)) / k) >= best:
            if current_max >= best:
                return
        weight = weights[index]
        seen: set[float] = set()
        for machine in range(k):
            load = loads[machine]
            if load in seen:  # symmetric branch
                continue
            seen.add(load)
            if load + weight >= best:
                continue
            loads[machine] = load + weight
            search(index + 1)
            loads[machine] = load

    search(0)
    return best
