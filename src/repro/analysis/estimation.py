"""Theorem 4.3 — expectation of the sketch estimator under uniform
frequencies, and the tail bounds of Section IV-B.

With ``n`` items of equal frequency hashed into ``c`` columns, the
estimator ``W_v / C_v`` of item ``v``'s execution time ``w_v`` satisfies

    E{W_v / C_v} = (S - w_v)/(n - 1)
                   - c (S - n w_v) / (n (n - 1)) * (1 - (1 - 1/c)^n)

where ``S = sum_u w_u`` (the paper writes the column count as ``k``).
The expectation is independent of the stream length ``m``.

The paper's numerical application takes ``c = 55``, ``n = 4096`` and
execution times ``1..64`` (each held by 64 items): every
``E{W_v/C_v}`` lands in ``[32.08, 32.92]`` — i.e. the estimator
collapses toward the global mean under uniform frequencies, which is why
POSG shines on *skewed* streams.  The Markov bound gives
``Pr{W_v/C_v >= 64a} <= 33/(64a)`` and row independence sharpens it to
``(33/(64a))^r``; with ``a = 3/4`` and ``r = 10``:
``Pr{min_rows >= 48} <= (11/16)^10 <= 0.024``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.sketches.hashing import random_hash_family


def expected_estimator_ratio(
    w_v: float, weights: Sequence[float], cols: int
) -> float:
    """Closed-form ``E{W_v/C_v}`` of Theorem 4.3.

    Parameters
    ----------
    w_v:
        The item's true execution time.
    weights:
        Execution times of *all* ``n`` items (including ``v``).
    cols:
        Number of columns ``c`` of one sketch row.
    """
    n = len(weights)
    if n < 2:
        raise ValueError("Theorem 4.3 needs at least two items")
    if cols < 1:
        raise ValueError(f"cols must be >= 1, got {cols}")
    total = float(np.sum(weights))
    collision_factor = 1.0 - (1.0 - 1.0 / cols) ** n
    return (total - w_v) / (n - 1) - (
        cols * (total - n * w_v) / (n * (n - 1))
    ) * collision_factor


def markov_tail_bound(expectation: float, threshold: float) -> float:
    """``Pr{W_v/C_v >= x} <= E{W_v/C_v} / x`` (capped at 1)."""
    if threshold <= 0:
        raise ValueError(f"threshold must be > 0, got {threshold}")
    return min(1.0, expectation / threshold)


def independent_rows_bound(row_probability: float, rows: int) -> float:
    """``Pr{min over r rows >= x} = p^r`` by row independence."""
    if not 0.0 <= row_probability <= 1.0:
        raise ValueError(f"row_probability must be in [0, 1], got {row_probability}")
    if rows < 1:
        raise ValueError(f"rows must be >= 1, got {rows}")
    return row_probability**rows


@dataclass(frozen=True)
class NumericalApplication:
    """The worked example at the end of Section IV-B."""

    cols: int
    n: int
    expectation_low: float
    expectation_high: float
    markov_bound_at_48: float
    min_rows_bound_at_48: float


def paper_numerical_application(
    cols: int = 55, n: int = 4096, w_values: int = 64, a: float = 0.75, rows: int = 10
) -> NumericalApplication:
    """Reproduce the paper's numbers: E in [32.08, 32.92], tail <= 0.024."""
    if n % w_values != 0:
        raise ValueError("n must be a multiple of w_values (64 items per value)")
    weights = np.repeat(np.arange(1, w_values + 1, dtype=np.float64), n // w_values)
    expectations = [
        expected_estimator_ratio(float(w), weights, cols)
        for w in range(1, w_values + 1)
    ]
    # The paper bounds every E{W_v/C_v} by 33 before applying Markov.
    markov = markov_tail_bound(33.0, w_values * a)
    return NumericalApplication(
        cols=cols,
        n=n,
        expectation_low=float(min(expectations)),
        expectation_high=float(max(expectations)),
        markov_bound_at_48=markov,
        min_rows_bound_at_48=independent_rows_bound(markov, rows),
    )


def simulate_estimator_ratios(
    weights: Sequence[float],
    cols: int,
    occurrences: int = 64,
    trials: int = 100,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Monte-Carlo distribution of ``W_v/C_v`` over random hash draws.

    Feeds a single sketch row with every item appearing ``occurrences``
    times (the theorem's uniform-frequency regime; the result is
    independent of ``occurrences``) and returns the matrix of per-item
    ratios, shape ``(trials, n)``.  Used to validate Theorem 4.3
    empirically.
    """
    weights = np.asarray(weights, dtype=np.float64)
    n = weights.shape[0]
    rng = rng if rng is not None else np.random.default_rng()
    ratios = np.empty((trials, n))
    items = np.arange(n)
    for trial in range(trials):
        family = random_hash_family(1, cols, rng=rng)
        buckets = family.hash_vector(items)[0]
        freq = np.bincount(buckets, minlength=cols).astype(np.float64)
        work = np.bincount(buckets, weights=weights, minlength=cols)
        # occurrences cancels in the ratio: (occ*work)/(occ*freq)
        ratios[trial] = work[buckets] / freq[buckets]
    return ratios
