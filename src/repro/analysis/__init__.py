"""Executable versions of the paper's theoretical results (Section IV).

- :mod:`~repro.analysis.bounds` — Theorem 4.2: the Greedy Online
  Scheduler is a tight ``(2 - 1/k)``-approximation of the optimal
  makespan.
- :mod:`~repro.analysis.estimation` — Theorem 4.3: the closed-form
  expectation of the sketch estimator ``W_v / C_v`` under uniform item
  frequencies, plus the Markov and independent-rows tail bounds and the
  paper's numerical application (Section IV-B).
"""

from repro.analysis.bounds import (
    Theorem42Check,
    exact_optimal_makespan,
    gusfield_worst_case,
    verify_theorem_42,
)
from repro.analysis.estimation import (
    expected_estimator_ratio,
    independent_rows_bound,
    markov_tail_bound,
    paper_numerical_application,
    simulate_estimator_ratios,
)
from repro.analysis.queueing import (
    kingman_mean_wait,
    mg1_mean_sojourn,
    mg1_mean_wait,
    service_moments,
    utilization,
)

__all__ = [
    "Theorem42Check",
    "verify_theorem_42",
    "gusfield_worst_case",
    "exact_optimal_makespan",
    "expected_estimator_ratio",
    "markov_tail_bound",
    "independent_rows_bound",
    "paper_numerical_application",
    "simulate_estimator_ratios",
    "utilization",
    "mg1_mean_wait",
    "mg1_mean_sojourn",
    "kingman_mean_wait",
    "service_moments",
]
