"""Synthetic stream generation (Section V-A).

A generated :class:`Stream` bundles, for ``m`` tuples:

- ``items`` — the attribute value driving the execution time;
- ``base_times`` — the execution time of each tuple on a *nominal*
  (multiplier 1.0) instance, in milliseconds;
- ``arrivals`` — the injection timestamps, from a constant-rate arrival
  process derived from the *over-provisioning percentage*: with ``W_bar``
  the stream's average execution time, the maximum sustainable throughput
  of ``k`` instances is ``k / W_bar``; an over-provisioning of ``p``
  (e.g. 1.0 = 100 %) sets the actual input rate to ``(k / W_bar) / p``,
  i.e. inter-arrival ``p * W_bar / k``.

``p > 1`` means the system is over-provisioned (queues drain), ``p < 1``
undersized (queues grow) — matching Figure 5's x-axis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.distributions import ItemDistribution, ZipfItems
from repro.workloads.exectime import ExecutionTimeModel, Spacing


@dataclass(frozen=True)
class StreamSpec:
    """Parameters of a synthetic stream (defaults = Section V-A).

    ``arrival_process`` selects the injection process: ``"constant"``
    (the paper's fixed inter-arrival delay) or ``"poisson"`` (exponential
    inter-arrivals with the same mean rate — a burstiness robustness
    extension; queues are strictly harder under Poisson arrivals).
    """

    m: int = 32_768
    n: int = 4_096
    w_n: int = 64
    w_min: float = 1.0
    w_max: float = 64.0
    spacing: Spacing = Spacing.LINEAR
    k: int = 5
    over_provisioning: float = 1.0
    arrival_process: str = "constant"

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ValueError(f"m must be >= 1, got {self.m}")
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.over_provisioning <= 0:
            raise ValueError(
                f"over_provisioning must be > 0, got {self.over_provisioning}"
            )
        if self.arrival_process not in ("constant", "poisson"):
            raise ValueError(
                f"arrival_process must be 'constant' or 'poisson', "
                f"got {self.arrival_process!r}"
            )


@dataclass(frozen=True)
class Stream:
    """A fully materialized input stream."""

    items: np.ndarray
    base_times: np.ndarray
    arrivals: np.ndarray
    n: int
    #: item -> nominal execution time lookup (for oracles and heterogeneity)
    time_table: np.ndarray
    label: str = "stream"

    def __post_init__(self) -> None:
        if not (len(self.items) == len(self.base_times) == len(self.arrivals)):
            raise ValueError("items, base_times and arrivals must align")

    @property
    def m(self) -> int:
        """Stream length."""
        return len(self.items)

    @property
    def average_time(self) -> float:
        """Empirical mean execution time ``W_bar`` (milliseconds)."""
        return float(self.base_times.mean())

    def time_of(self, item: int) -> float:
        """Nominal execution time of an item (oracle access)."""
        return float(self.time_table[item])

    def save(self, path) -> None:
        """Persist the stream to a ``.npz`` file (exact reproducibility:
        a saved stream replays bit-identically on any machine)."""
        np.savez_compressed(
            path,
            items=self.items,
            base_times=self.base_times,
            arrivals=self.arrivals,
            time_table=self.time_table,
            n=np.asarray(self.n),
            label=np.asarray(self.label),
        )

    @classmethod
    def load(cls, path) -> "Stream":
        """Load a stream persisted with :meth:`save`."""
        with np.load(path, allow_pickle=False) as data:
            return cls(
                items=data["items"],
                base_times=data["base_times"],
                arrivals=data["arrivals"],
                time_table=data["time_table"],
                n=int(data["n"]),
                label=str(data["label"]),
            )


def arrival_times(
    m: int,
    k: int,
    average_time: float,
    over_provisioning: float,
    process: str = "constant",
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Arrival timestamps for the given provisioning level.

    ``process="constant"`` gives the paper's fixed inter-arrival delay;
    ``"poisson"`` draws exponential inter-arrivals with the same mean.
    """
    if average_time <= 0:
        # Degenerate all-zero-work stream: arrivals collapse to time zero.
        return np.zeros(m)
    inter_arrival = over_provisioning * average_time / k
    if process == "constant":
        return np.arange(m, dtype=np.float64) * inter_arrival
    if process == "poisson":
        rng = rng if rng is not None else np.random.default_rng()
        gaps = rng.exponential(inter_arrival, size=m)
        gaps[0] = 0.0
        return np.cumsum(gaps)
    raise ValueError(f"unknown arrival process {process!r}")


def generate_stream(
    distribution: ItemDistribution,
    spec: StreamSpec | None = None,
    rng: np.random.Generator | None = None,
) -> Stream:
    """Generate one randomized stream per the paper's recipe.

    The item-to-execution-time association is re-randomized per call (the
    paper generates 100 such streams per configuration), so repeated calls
    with the same ``rng`` yield *different* streams with the same law.
    """
    spec = spec if spec is not None else StreamSpec()
    rng = rng if rng is not None else np.random.default_rng()
    if distribution.n != spec.n:
        raise ValueError(
            f"distribution universe ({distribution.n}) != spec.n ({spec.n})"
        )
    model = ExecutionTimeModel(
        n=spec.n,
        w_n=spec.w_n,
        w_min=spec.w_min,
        w_max=spec.w_max,
        spacing=spec.spacing,
        rng=rng,
    )
    items = distribution.sample(spec.m, rng)
    base_times = model.times_of(items)
    arrivals = arrival_times(
        spec.m, spec.k, float(base_times.mean()), spec.over_provisioning,
        process=spec.arrival_process, rng=rng,
    )
    return Stream(
        items=items,
        base_times=base_times,
        arrivals=arrivals,
        n=spec.n,
        time_table=model.table(),
        label=distribution.label,
    )


def default_stream(seed: int = 0, **overrides) -> Stream:
    """The paper's default stream: Zipf-1.0 with Section V-A parameters."""
    spec = StreamSpec(**overrides)
    return generate_stream(
        ZipfItems(spec.n, 1.0), spec, np.random.default_rng(seed)
    )
