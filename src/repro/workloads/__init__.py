"""Workload substrate: the streams the paper evaluates on.

Section V-A of the paper describes synthetic streams (item frequencies
drawn from Uniform or Zipf-alpha distributions, execution times drawn from
``w_n`` distinct values in ``[w_min, w_max]`` with a randomized
item-to-time association) and one real dataset (tweets mentioning Italian
political entities).  We have no access to the proprietary Twitter crawl,
so :mod:`repro.workloads.twitter` generates a synthetic stream *fitted to
every statistic the paper reports* about it — see DESIGN.md for the
substitution rationale.
"""

from repro.workloads.distributions import (
    ItemDistribution,
    UniformItems,
    ZipfItems,
)
from repro.workloads.exectime import ExecutionTimeModel, Spacing
from repro.workloads.synthetic import Stream, StreamSpec, generate_stream
from repro.workloads.twitter import TwitterDatasetSpec, generate_twitter_stream
from repro.workloads.nonstationary import DriftScenario, LoadShiftScenario

__all__ = [
    "ItemDistribution",
    "UniformItems",
    "ZipfItems",
    "ExecutionTimeModel",
    "Spacing",
    "Stream",
    "StreamSpec",
    "generate_stream",
    "TwitterDatasetSpec",
    "generate_twitter_stream",
    "LoadShiftScenario",
    "DriftScenario",
]
