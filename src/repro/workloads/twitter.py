"""Synthetic stand-in for the paper's Twitter dataset (Section V-A / V-C).

The paper uses a proprietary crawl of tweets about Italian politicians
from the 2014 European elections.  Everything the evaluation exploits
about that dataset is summarized by four reported statistics:

- 500,000 tweets considered;
- roughly ``n = 35,000`` distinct mentioned entities;
- the most frequent entity ("Beppe Grillo") has empirical probability
  of occurrence 0.065;
- entities classify into *media* / *politicians* / *others*, modelled with
  25 ms / 5 ms / 1 ms of busy waiting respectively.

We therefore generate a Zipf-like entity-frequency distribution whose skew
``alpha`` is calibrated (by bisection) so the top entity's probability
matches the reported 0.065, attach entity classes, and map classes to the
reported execution times.  This preserves the two properties the
experiment depends on: the frequency skew seen by the sketches and the
3-modal execution-time distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.workloads.distributions import ZipfItems
from repro.workloads.exectime import ClassBasedTimeModel
from repro.workloads.synthetic import Stream, arrival_times

#: entity classes of the paper's application
CLASS_MEDIA = 0
CLASS_POLITICIAN = 1
CLASS_OTHER = 2

#: busy-waiting execution times (milliseconds) from Section V-C
PAPER_CLASS_TIMES = {CLASS_MEDIA: 25.0, CLASS_POLITICIAN: 5.0, CLASS_OTHER: 1.0}


@dataclass(frozen=True)
class TwitterDatasetSpec:
    """Parameters of the synthetic Twitter stream (defaults = paper)."""

    m: int = 500_000
    n: int = 35_000
    top_probability: float = 0.065
    #: fraction of entities in each class; media are rare, long-running
    media_fraction: float = 0.05
    politician_fraction: float = 0.20
    class_times: dict = field(default_factory=lambda: dict(PAPER_CLASS_TIMES))
    k: int = 5
    over_provisioning: float = 1.0

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ValueError(f"m must be >= 1, got {self.m}")
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")
        if not 0.0 < self.top_probability < 1.0:
            raise ValueError(
                f"top_probability must be in (0, 1), got {self.top_probability}"
            )
        if self.media_fraction < 0 or self.politician_fraction < 0:
            raise ValueError("class fractions must be >= 0")
        if self.media_fraction + self.politician_fraction > 1.0:
            raise ValueError("class fractions must sum to <= 1")


def calibrate_zipf_alpha(
    n: int, top_probability: float, tolerance: float = 1e-6
) -> float:
    """Find the Zipf skew giving the top item the target probability.

    ``p_1(alpha) = 1 / H_n(alpha)`` is strictly increasing in ``alpha``,
    so a simple bisection converges.  Raises when the target is
    unreachable (below the uniform probability ``1/n``).
    """
    if top_probability <= 1.0 / n:
        raise ValueError(
            f"top_probability {top_probability} unreachable for n={n} "
            f"(uniform gives {1.0 / n})"
        )

    def top_p(alpha: float) -> float:
        ranks = np.arange(1, n + 1, dtype=np.float64)
        return float(1.0 / (ranks ** (-alpha)).sum())

    lo, hi = 0.0, 1.0
    while top_p(hi) < top_probability:
        hi *= 2.0
        if hi > 64:  # pragma: no cover - defensive
            raise RuntimeError("Zipf calibration diverged")
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if top_p(mid) < top_probability:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def assign_entity_classes(
    spec: TwitterDatasetSpec, rng: np.random.Generator
) -> np.ndarray:
    """Randomly classify entities into media / politicians / others.

    The class is independent of the entity's frequency rank, mirroring the
    paper's observation that long-running (media) tuples appear throughout
    the stream.
    """
    n_media = int(round(spec.media_fraction * spec.n))
    n_politicians = int(round(spec.politician_fraction * spec.n))
    classes = np.full(spec.n, CLASS_OTHER, dtype=np.int64)
    order = rng.permutation(spec.n)
    classes[order[:n_media]] = CLASS_MEDIA
    classes[order[n_media:n_media + n_politicians]] = CLASS_POLITICIAN
    return classes


def generate_twitter_stream(
    spec: TwitterDatasetSpec | None = None,
    rng: np.random.Generator | None = None,
) -> Stream:
    """Generate the synthetic Twitter stream.

    Returns a :class:`~repro.workloads.synthetic.Stream` whose items are
    entity ids and whose execution times follow the 25/5/1 ms class model.
    """
    spec = spec if spec is not None else TwitterDatasetSpec()
    rng = rng if rng is not None else np.random.default_rng()
    alpha = calibrate_zipf_alpha(spec.n, spec.top_probability)
    distribution = ZipfItems(spec.n, alpha)
    classes = assign_entity_classes(spec, rng)
    model = ClassBasedTimeModel(classes, spec.class_times)
    items = distribution.sample(spec.m, rng)
    base_times = model.times_of(items)
    arrivals = arrival_times(
        spec.m, spec.k, float(base_times.mean()), spec.over_provisioning
    )
    return Stream(
        items=items,
        base_times=base_times,
        arrivals=arrivals,
        n=spec.n,
        time_table=model.table(),
        label="twitter",
    )
