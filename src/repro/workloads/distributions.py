"""Item-frequency distributions over the universe ``[n]``.

The paper's synthetic streams draw each tuple's attribute value from
either a Uniform distribution or a Zipf distribution with skew
``alpha in {0.5, 1.0, 1.5, 2.0, 2.5, 3.0}`` over ``n = 4096`` distinct
items (Section V-A).  Both are *finite-support* distributions; the Zipf
probabilities are ``p_rank = rank^-alpha / H_n(alpha)``.
"""

from __future__ import annotations

import abc

import numpy as np


class ItemDistribution(abc.ABC):
    """A probability distribution over items ``0 .. n-1``."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"universe size n must be >= 1, got {n}")
        self._n = n

    @property
    def n(self) -> int:
        """Universe size."""
        return self._n

    @abc.abstractmethod
    def probabilities(self) -> np.ndarray:
        """Per-item probabilities, shape ``(n,)``, summing to 1."""

    def sample(self, m: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``m`` items i.i.d. from the distribution."""
        if m < 0:
            raise ValueError(f"m must be >= 0, got {m}")
        return rng.choice(self._n, size=m, p=self.probabilities())

    @property
    @abc.abstractmethod
    def label(self) -> str:
        """Short label used in experiment reports (e.g. ``zipf-1.0``)."""


class UniformItems(ItemDistribution):
    """Every item equally likely — the paper's worst case for POSG."""

    def probabilities(self) -> np.ndarray:
        return np.full(self._n, 1.0 / self._n)

    def sample(self, m: int, rng: np.random.Generator) -> np.ndarray:
        if m < 0:
            raise ValueError(f"m must be >= 0, got {m}")
        return rng.integers(0, self._n, size=m)

    @property
    def label(self) -> str:
        return "uniform"


class ZipfItems(ItemDistribution):
    """Finite Zipf: item of rank ``r`` (0-indexed item ``r-1``) has
    probability proportional to ``r^-alpha``.

    Item ids coincide with ranks (item 0 is the most frequent); stream
    generators randomize the item-to-execution-time association separately,
    so this choice loses no generality.
    """

    def __init__(self, n: int, alpha: float) -> None:
        super().__init__(n)
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self._alpha = alpha
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** (-alpha)
        self._probabilities = weights / weights.sum()

    @property
    def alpha(self) -> float:
        """Skew parameter."""
        return self._alpha

    def probabilities(self) -> np.ndarray:
        return self._probabilities

    @property
    def label(self) -> str:
        return f"zipf-{self._alpha:g}"


def paper_distributions(n: int = 4096) -> list[ItemDistribution]:
    """The seven distributions of Figure 4, in plotting order."""
    return [UniformItems(n)] + [
        ZipfItems(n, alpha) for alpha in (0.5, 1.0, 1.5, 2.0, 2.5, 3.0)
    ]
