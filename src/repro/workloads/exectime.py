"""Item-to-execution-time models.

Section V-A: ``w_n`` distinct execution-time values are selected at
constant (or geometric) distance in ``[w_min, w_max]``; the association
between the ``n`` items and the ``w_n`` values is randomized per stream —
for each value, ``n / w_n`` distinct items are drawn uniformly at random.
The default setup is ``w_n = 64``, ``w_min = 1`` ms, ``w_max = 64`` ms,
i.e. execution times in ``{1, 2, ..., 64}`` ms.

All times in this package are expressed in **milliseconds**.
"""

from __future__ import annotations

import enum

import numpy as np


class Spacing(enum.Enum):
    """How the ``w_n`` values are spread over ``[w_min, w_max]``."""

    LINEAR = "linear"
    GEOMETRIC = "geometric"


def execution_time_values(
    w_n: int, w_min: float, w_max: float, spacing: Spacing = Spacing.LINEAR
) -> np.ndarray:
    """The ``w_n`` distinct execution-time values, ascending."""
    if w_n < 1:
        raise ValueError(f"w_n must be >= 1, got {w_n}")
    if w_min <= 0 or w_max < w_min:
        raise ValueError(f"need 0 < w_min <= w_max, got [{w_min}, {w_max}]")
    if w_n == 1:
        return np.array([w_min], dtype=np.float64)
    if spacing is Spacing.LINEAR:
        return np.linspace(w_min, w_max, w_n)
    return np.geomspace(w_min, w_max, w_n)


class ExecutionTimeModel:
    """Maps every item of ``[n]`` to one of ``w_n`` execution-time values.

    Parameters
    ----------
    n:
        Universe size.
    w_n:
        Number of distinct execution-time values.
    w_min, w_max:
        Value range in milliseconds.
    spacing:
        Linear (paper default) or geometric value placement.
    rng:
        Randomizes the item-to-value association; each value receives
        ``n / w_n`` items (the remainder spreads over the first values),
        exactly as described in Section V-A.
    """

    def __init__(
        self,
        n: int,
        w_n: int = 64,
        w_min: float = 1.0,
        w_max: float = 64.0,
        spacing: Spacing = Spacing.LINEAR,
        rng: np.random.Generator | None = None,
    ) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if w_n > n:
            raise ValueError(f"w_n ({w_n}) cannot exceed n ({n})")
        rng = rng if rng is not None else np.random.default_rng()
        self._n = n
        self._values = execution_time_values(w_n, w_min, w_max, spacing)
        # Shuffle items, then deal them out to the w_n values round-robin:
        # each value gets floor(n/w_n) or ceil(n/w_n) distinct items.
        permutation = rng.permutation(n)
        self._time_of_item = np.empty(n, dtype=np.float64)
        self._time_of_item[permutation] = self._values[np.arange(n) % w_n]

    @property
    def n(self) -> int:
        """Universe size."""
        return self._n

    @property
    def values(self) -> np.ndarray:
        """The distinct execution-time values (ascending)."""
        return self._values

    @property
    def w_min(self) -> float:
        """Smallest execution time."""
        return float(self._values[0])

    @property
    def w_max(self) -> float:
        """Largest execution time."""
        return float(self._values[-1])

    def time_of(self, item: int) -> float:
        """Base execution time of one item, in milliseconds."""
        return float(self._time_of_item[item])

    def times_of(self, items: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`time_of`."""
        return self._time_of_item[np.asarray(items)]

    def table(self) -> np.ndarray:
        """The full item -> time lookup table (copy)."""
        return self._time_of_item.copy()

    def average_time(self, probabilities: np.ndarray) -> float:
        """Expected execution time under an item distribution."""
        probabilities = np.asarray(probabilities)
        if probabilities.shape != (self._n,):
            raise ValueError(
                f"probabilities must have shape ({self._n},), got {probabilities.shape}"
            )
        return float(self._time_of_item @ probabilities)


class ClassBasedTimeModel:
    """Execution time by item *class* (the Twitter application of Fig. 12).

    Items carry a class id; every class has a fixed execution time (the
    paper models media 25 ms, politicians 5 ms, others 1 ms of busy
    waiting).
    """

    def __init__(self, class_of_item: np.ndarray, time_of_class: dict[int, float]) -> None:
        class_of_item = np.asarray(class_of_item)
        missing = set(np.unique(class_of_item).tolist()) - set(time_of_class)
        if missing:
            raise ValueError(f"classes without a time: {sorted(missing)}")
        if any(t < 0 for t in time_of_class.values()):
            raise ValueError("class times must be >= 0")
        self._class_of_item = class_of_item
        self._time_of_class = dict(time_of_class)
        lookup = np.zeros(int(class_of_item.max()) + 1, dtype=np.float64)
        for cls, time in time_of_class.items():
            lookup[cls] = time
        self._time_of_item = lookup[class_of_item]

    @property
    def n(self) -> int:
        """Universe size."""
        return self._class_of_item.shape[0]

    def class_of(self, item: int) -> int:
        """Class id of one item."""
        return int(self._class_of_item[item])

    def time_of(self, item: int) -> float:
        """Execution time of one item, in milliseconds."""
        return float(self._time_of_item[item])

    def times_of(self, items: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`time_of`."""
        return self._time_of_item[np.asarray(items)]

    def table(self) -> np.ndarray:
        """The full item -> time lookup table (copy)."""
        return self._time_of_item.copy()
