"""Non-stationary load scenarios (Figures 10 and 11).

The paper's time-series experiment runs a stream of ``m = 150,000``
tuples split into two halves.  Tuple execution times on instances
``1..5`` are multiplied by ``(1.05, 1.025, 1.0, 0.975, 0.95)`` during the
first 75,000 tuples and by ``(0.90, 0.95, 1.0, 1.05, 1.10)`` for the
rest, mimicking an abrupt exogenous change in the instances' load
characteristics.

:class:`LoadShiftScenario` generalizes this to arbitrary phase schedules
and instance counts; engines query ``multiplier(instance, tuple_index)``
when a tuple starts executing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: the paper's phase multipliers for k = 5 (Figure 10)
PAPER_PHASE1 = (1.05, 1.025, 1.0, 0.975, 0.95)
PAPER_PHASE2 = (0.90, 0.95, 1.0, 1.05, 1.10)


@dataclass(frozen=True)
class LoadShiftScenario:
    """Per-instance execution-time multipliers changing at phase boundaries.

    Parameters
    ----------
    phases:
        Sequence of per-instance multiplier tuples, one per phase.
    boundaries:
        Tuple indices at which the next phase begins; must be ascending
        and contain exactly ``len(phases) - 1`` entries.
    """

    phases: tuple[tuple[float, ...], ...]
    boundaries: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("need at least one phase")
        if len(self.boundaries) != len(self.phases) - 1:
            raise ValueError(
                f"{len(self.phases)} phases need {len(self.phases) - 1} "
                f"boundaries, got {len(self.boundaries)}"
            )
        if any(b2 <= b1 for b1, b2 in zip(self.boundaries, self.boundaries[1:])):
            raise ValueError("boundaries must be strictly ascending")
        k = len(self.phases[0])
        if any(len(phase) != k for phase in self.phases):
            raise ValueError("all phases must cover the same instance count")
        if any(m <= 0 for phase in self.phases for m in phase):
            raise ValueError("multipliers must be > 0")

    @property
    def k(self) -> int:
        """Instance count covered by the schedule."""
        return len(self.phases[0])

    def phase_of(self, tuple_index: int) -> int:
        """Phase active when the ``tuple_index``-th tuple executes."""
        return int(np.searchsorted(self.boundaries, tuple_index, side="right"))

    def multiplier(self, instance: int, tuple_index: int) -> float:
        """Execution-time multiplier for one instance at one stream position."""
        return self.phases[self.phase_of(tuple_index)][instance]

    def multiplier_matrix(self, m: int) -> np.ndarray:
        """Vectorized multipliers for positions ``0..m-1``: shape ``(m, k)``.

        ``multiplier_matrix(m)[j, i] == multiplier(i, j)`` exactly (the
        table holds the same Python floats, merely gathered in bulk); the
        chunked simulator uses this to hoist the per-tuple
        ``np.searchsorted`` out of the hot loop.
        """
        phase_table = np.asarray(self.phases, dtype=np.float64)
        indices = np.searchsorted(
            np.asarray(self.boundaries), np.arange(m), side="right"
        )
        return phase_table[indices]

    @classmethod
    def paper_figure10(cls, m: int = 150_000) -> "LoadShiftScenario":
        """The exact scenario of Figures 10/11: shift at ``m // 2``."""
        return cls(phases=(PAPER_PHASE1, PAPER_PHASE2), boundaries=(m // 2,))

    @classmethod
    def constant(cls, k: int, multipliers: tuple[float, ...] | None = None) -> "LoadShiftScenario":
        """A single-phase (stationary) schedule; uniform by default."""
        phase = multipliers if multipliers is not None else tuple([1.0] * k)
        return cls(phases=(phase,), boundaries=())


@dataclass(frozen=True)
class DriftScenario:
    """Gradual per-instance drift (beyond-paper robustness scenario).

    The paper assumes load changes are abrupt but rare ("subsequent
    changes are interleaved by a large enough time frame").  Real systems
    also drift continuously — thermal throttling, co-located tenants,
    cache warming.  This scenario interpolates each instance's multiplier
    *linearly* from ``start`` to ``end`` over ``[0, duration)``, so no
    snapshot window ever sees a stationary distribution; it probes how
    POSG's stability gate behaves when its premise is violated.
    """

    start: tuple[float, ...]
    end: tuple[float, ...]
    duration: int

    def __post_init__(self) -> None:
        if len(self.start) != len(self.end):
            raise ValueError("start and end must cover the same instances")
        if not self.start:
            raise ValueError("need at least one instance")
        if self.duration < 1:
            raise ValueError(f"duration must be >= 1, got {self.duration}")
        if any(m <= 0 for m in self.start + self.end):
            raise ValueError("multipliers must be > 0")

    @property
    def k(self) -> int:
        """Instance count covered by the schedule."""
        return len(self.start)

    def multiplier(self, instance: int, tuple_index: int) -> float:
        """Linearly interpolated multiplier at one stream position."""
        fraction = min(1.0, tuple_index / self.duration)
        return (
            self.start[instance]
            + (self.end[instance] - self.start[instance]) * fraction
        )

    def multiplier_matrix(self, m: int) -> np.ndarray:
        """Vectorized multipliers for positions ``0..m-1``: shape ``(m, k)``.

        Elementwise-identical to :meth:`multiplier` (the same IEEE
        operations in the same order, just broadcast).
        """
        fraction = np.minimum(1.0, np.arange(m) / self.duration)
        start = np.asarray(self.start, dtype=np.float64)
        end = np.asarray(self.end, dtype=np.float64)
        return start[None, :] + (end - start)[None, :] * fraction[:, None]
