"""Operator-instance side of POSG: the START/STABILIZING state machine.

Figure 2 of the paper.  Each instance folds every executed tuple into its
:class:`~repro.core.matrices.FWPair` and, every ``N`` executed tuples:

- in START: creates a snapshot ``S = W/F`` and moves to STABILIZING
  (Figure 2.A);
- in STABILIZING with relative error ``eta > mu``: refreshes the snapshot
  and stays (Figure 2.B);
- in STABILIZING with ``eta <= mu``: ships a copy of ``(F, W)`` to the
  scheduler, resets both matrices and returns to START (Figure 2.C).

The tracker also keeps the instance's measured cumulated execution time
``C_op`` needed to answer :class:`~repro.core.messages.SyncRequest`
messages with ``Delta_op = C_op - C_hat[op]``.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.core.config import POSGConfig
from repro.core.matrices import FWPair
from repro.core.messages import ControlMessage, MatricesMessage, SyncReply, SyncRequest
from repro.sketches.hashing import TwoUniversalHashFamily
from repro.telemetry.recorder import NULL_RECORDER
from repro.telemetry.registry import Sample

#: histogram bucket bounds for the stability error ``eta`` (Eq. 1); the
#: paper's default tolerance mu = 0.05 sits on a bucket edge
ETA_BUCKETS = (0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0)


class InstanceState(enum.Enum):
    """States of the per-instance FSM (Figure 2)."""

    START = "start"
    STABILIZING = "stabilizing"


class InstanceTracker:
    """Tracks tuple execution times on one operator instance.

    Parameters
    ----------
    instance_id:
        Index of this instance in ``[0, k)``.
    config:
        Shared POSG parameters (window size ``N``, tolerance ``mu``, ...).
    hashes:
        The hash family shared with the scheduler; *must* be the same
        object (or an equal family) across all parties.

    Usage
    -----
    The hosting engine calls :meth:`execute` once per tuple *after*
    measuring its execution time, passing along any
    :class:`~repro.core.messages.SyncRequest` that was piggy-backed on the
    tuple.  The returned control messages must be delivered to the
    scheduler (with whatever latency the engine models).
    """

    def __init__(
        self,
        instance_id: int,
        config: POSGConfig,
        hashes: TwoUniversalHashFamily,
        telemetry=NULL_RECORDER,
    ) -> None:
        if instance_id < 0:
            raise ValueError(f"instance_id must be >= 0, got {instance_id}")
        rows, cols = config.sketch_shape
        if (hashes.rows, hashes.cols) != (rows, cols):
            raise ValueError(
                f"hash family shape {(hashes.rows, hashes.cols)} does not match "
                f"config sketch shape {(rows, cols)}"
            )
        self._instance_id = instance_id
        self._config = config
        self._telemetry = telemetry if telemetry is not None else NULL_RECORDER
        self._pair = FWPair(hashes, telemetry=self._telemetry)
        self._state = InstanceState.START
        self._snapshot: np.ndarray | None = None
        self._window_count = 0
        self._cumulated_time = 0.0
        self._tuples_executed = 0
        self._matrices_sent = 0
        self._snapshot_refreshes = 0
        self._generation = 0
        self._restarts = 0
        # last stable (F, W) pair retained for the recovery rebroadcast
        self._last_shipped: FWPair | None = None
        self._last_shipped_tuples = 0
        self._boundaries_since_ship = 0
        self._matrices_rebroadcasts = 0
        # eta observations happen only at window boundaries (cold path)
        self._eta_histogram = self._telemetry.registry.histogram(
            "posg_instance_eta",
            buckets=ETA_BUCKETS,
            help="Snapshot relative error eta at STABILIZING window checks",
            labels={"instance": instance_id},
        )
        self._telemetry.registry.register_collector(self._collect_samples)

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def execute(
        self,
        item: int,
        execution_time: float,
        sync_request: SyncRequest | None = None,
    ) -> list[ControlMessage]:
        """Record one executed tuple; return control messages to deliver.

        ``sync_request``, if given, is the request piggy-backed on this
        tuple; under FIFO execution, answering it *now* means ``C_op``
        covers exactly the tuples assigned up to and including this one,
        which is the prefix the scheduler's ``c_hat_at_send`` estimated.
        """
        outgoing: list[ControlMessage] = []
        self._pair.update(item, execution_time)
        self._cumulated_time += execution_time
        self._tuples_executed += 1
        self._window_count += 1

        if sync_request is not None:
            if sync_request.instance != self._instance_id:
                raise ValueError(
                    f"sync request for instance {sync_request.instance} "
                    f"delivered to instance {self._instance_id}"
                )
            outgoing.append(
                SyncReply(
                    instance=self._instance_id,
                    epoch=sync_request.epoch,
                    # _cumulated_time is the instance's TOTAL measured
                    # time — under multi-source scheduling this is what
                    # re-baselines each shard against the global load,
                    # not just the shard's own share.
                    delta=self._cumulated_time - sync_request.c_hat_at_send,
                    generation=self._generation,
                    source=sync_request.source,
                )
            )

        if self._window_count >= self._config.window_size:
            self._window_count = 0
            message = self._window_boundary()
            if message is not None:
                outgoing.append(message)
        return outgoing

    def execute_batch(self, items, execution_times) -> None:
        """Record a *boundary-free* batch of executed tuples.

        Bit-identical to calling :meth:`execute` per tuple with no sync
        requests: the F/W fold preserves per-tuple float semantics
        (``FWPair.update_batch``) and ``C_op`` accumulates term by term.
        The batch must not reach a window boundary — the FSM of Figure 2
        inspects the matrices exactly there, so the boundary tuple itself
        must go through :meth:`execute`.  The chunked simulator batches
        the tuples between boundaries this way.
        """
        count = len(items)
        if count == 0:
            return
        if self._window_count + count >= self._config.window_size:
            raise ValueError(
                f"batch of {count} tuples would cross the window boundary "
                f"({self._window_count}/{self._config.window_size} used)"
            )
        self._pair.update_batch(items, execution_times)
        total = self._cumulated_time
        for value in execution_times:
            total += value
        self._cumulated_time = total
        self._tuples_executed += count
        self._window_count += count

    @property
    def window_remaining(self) -> int:
        """Tuples left before the next FSM window boundary (Figure 2)."""
        return self._config.window_size - self._window_count

    # ------------------------------------------------------------------
    # fault model
    # ------------------------------------------------------------------
    def restart(self) -> None:
        """Crash-restart the instance: wipe all in-memory state.

        Models a process restart — the matrices, the snapshot, the FSM
        position and the measured ``C_op`` all live in memory and are
        lost; the new incarnation starts from START with zeroed matrices
        and bumps its ``generation`` so the scheduler can tell pre-crash
        messages from post-crash ones.  Lifetime counters
        (``tuples_executed``, ``matrices_sent``, ...) are telemetry-side
        accounting and survive, mirroring an external metrics store.
        """
        self._pair.reset()
        self._snapshot = None
        self._state = InstanceState.START
        self._window_count = 0
        self._cumulated_time = 0.0
        self._last_shipped = None
        self._last_shipped_tuples = 0
        self._boundaries_since_ship = 0
        self._generation += 1
        self._restarts += 1
        if self._telemetry.enabled:
            self._telemetry.tracer.emit(
                "instance_restart",
                instance=self._instance_id,
                generation=self._generation,
                executed=self._tuples_executed,
            )

    def _window_boundary(self) -> MatricesMessage | None:
        """FSM transition after ``N`` executed tuples (Figure 2)."""
        self._boundaries_since_ship += 1
        if self._state is InstanceState.START:
            self._snapshot = self._pair.snapshot()
            self._state = InstanceState.STABILIZING
            self._emit_window("snapshot", InstanceState.START, None, 0)
            return self._maybe_rebroadcast()
        # STABILIZING
        assert self._snapshot is not None
        eta = self._pair.relative_error(self._snapshot)
        self._eta_histogram.observe(eta)
        if eta > self._config.mu:
            self._snapshot = self._pair.snapshot()
            self._snapshot_refreshes += 1
            self._emit_window("refresh", InstanceState.STABILIZING, eta, 0)
            return self._maybe_rebroadcast()
        shipped = self._pair.copy()
        message = MatricesMessage(
            instance=self._instance_id,
            matrices=shipped,
            tuples_observed=self._pair.tuples_seen,
            generation=self._generation,
        )
        recovery = self._config.recovery
        if recovery is not None and recovery.rebroadcast_windows is not None:
            # keep a private copy: the scheduler owns the shipped pair
            self._last_shipped = shipped.copy()
            self._last_shipped_tuples = self._pair.tuples_seen
        self._boundaries_since_ship = 0
        self._pair.reset()
        self._snapshot = None
        self._state = InstanceState.START
        self._matrices_sent += 1
        self._emit_window("ship", InstanceState.STABILIZING, eta, message.size_bits())
        return message

    def _maybe_rebroadcast(self) -> MatricesMessage | None:
        """Re-send the last stable matrices when a ship is overdue.

        The scheduler replaces an instance's matrices on receipt, so a
        rebroadcast is idempotent there; it repairs a dropped matrices
        message (or a watchdog-discarded one) without waiting for a
        fresh stabilization cycle.  Armed only under
        :class:`~repro.core.config.RecoveryConfig`.
        """
        recovery = self._config.recovery
        if (
            recovery is None
            or recovery.rebroadcast_windows is None
            or self._last_shipped is None
            or self._boundaries_since_ship < recovery.rebroadcast_windows
        ):
            return None
        self._boundaries_since_ship = 0
        self._matrices_rebroadcasts += 1
        message = MatricesMessage(
            instance=self._instance_id,
            matrices=self._last_shipped.copy(),
            tuples_observed=self._last_shipped_tuples,
            generation=self._generation,
        )
        self._emit_window("rebroadcast", self._state, None, message.size_bits())
        return message

    def _emit_window(
        self,
        outcome: str,
        from_state: InstanceState,
        eta: float | None,
        bits: int,
    ) -> None:
        """Trace one Figure 2 window-boundary decision."""
        if not self._telemetry.enabled:
            return
        self._telemetry.tracer.emit(
            "instance_window",
            instance=self._instance_id,
            outcome=outcome,
            **{"from": from_state.value, "to": self._state.value},
            eta=eta,
            bits=bits,
            executed=self._tuples_executed,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Instance-side FSM accounting as one flat dict."""
        return {
            "instance": self._instance_id,
            "state": self._state.value,
            "tuples_executed": self._tuples_executed,
            "cumulated_time_ms": self._cumulated_time,
            "matrices_sent": self._matrices_sent,
            "matrices_rebroadcasts": self._matrices_rebroadcasts,
            "snapshot_refreshes": self._snapshot_refreshes,
            "window_count": self._window_count,
            "generation": self._generation,
            "restarts": self._restarts,
        }

    def _collect_samples(self) -> list[Sample]:
        """Export-time metric samples (registered as a collector)."""
        labels = (("instance", str(self._instance_id)),)
        return [
            Sample(
                "posg_instance_tuples_executed_total",
                self._tuples_executed,
                "counter",
                labels,
                help="Tuples executed by this instance",
            ),
            Sample(
                "posg_instance_cumulated_time_ms",
                self._cumulated_time,
                "gauge",
                labels,
                help="Measured cumulated execution time C_op",
            ),
            Sample(
                "posg_instance_matrices_sent_total",
                self._matrices_sent,
                "counter",
                labels,
                help="Stable (F, W) pairs shipped to the scheduler",
            ),
            Sample(
                "posg_instance_matrices_rebroadcasts_total",
                self._matrices_rebroadcasts,
                "counter",
                labels,
                help="Recovery re-sends of the last stable (F, W) pair",
            ),
            Sample(
                "posg_instance_snapshot_refreshes_total",
                self._snapshot_refreshes,
                "counter",
                labels,
                help="Snapshot refreshes forced by instability (eta > mu)",
            ),
            Sample(
                "posg_instance_state_info",
                1,
                "gauge",
                labels + (("state", self._state.value),),
                help="Current instance FSM state (label carries the state)",
            ),
        ]

    @property
    def instance_id(self) -> int:
        """Index of this instance."""
        return self._instance_id

    @property
    def state(self) -> InstanceState:
        """Current FSM state."""
        return self._state

    @property
    def cumulated_time(self) -> float:
        """``C_op`` — measured cumulated execution time since start."""
        return self._cumulated_time

    @property
    def tuples_executed(self) -> int:
        """Total tuples executed since start."""
        return self._tuples_executed

    @property
    def matrices_sent(self) -> int:
        """How many stable ``(F, W)`` pairs were shipped so far."""
        return self._matrices_sent

    @property
    def matrices_rebroadcasts(self) -> int:
        """Recovery re-sends of the last stable pair."""
        return self._matrices_rebroadcasts

    @property
    def snapshot_refreshes(self) -> int:
        """How many times instability forced a snapshot refresh."""
        return self._snapshot_refreshes

    @property
    def generation(self) -> int:
        """Crash-restart counter (0 = never restarted)."""
        return self._generation

    @property
    def restarts(self) -> int:
        """How many crash-restarts this instance has gone through."""
        return self._restarts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InstanceTracker(id={self._instance_id}, state={self._state.value}, "
            f"executed={self._tuples_executed}, sent={self._matrices_sent})"
        )
