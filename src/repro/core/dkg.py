"""Distribution-aware Key Grouping (DKG), simplified.

Section VI of the paper cites the authors' own DEBS'15 work on
"efficient key grouping for near-optimal load balancing" and remarks
that key-grouping solutions "would underperform if applied with shuffle
grouping" because key grouping pins every occurrence of a key to one
instance.  This module implements a faithful-in-spirit DKG so that claim
is measurable against POSG:

- a warm-up phase routes by plain hashing while a
  :class:`~repro.sketches.space_saving.SpaceSaving` summary learns the
  key-frequency distribution;
- after warm-up, the heavy hitters are *individually* placed on
  instances by greedy bin packing over estimated tuple counts (heaviest
  first), and the light tail keeps its hash placement;
- the mapping is sticky thereafter — the key-grouping constraint.

DKG balances tuple *counts* near-optimally, but it cannot split a heavy
key across instances nor react to content-dependent execution times —
the two things shuffle grouping with POSG does.
"""

from __future__ import annotations

import numpy as np

from repro.core.grouping import GroupingPolicy, RouteDecision
from repro.sketches.hashing import random_hash_family
from repro.sketches.space_saving import SpaceSaving


class DKGGrouping(GroupingPolicy):
    """Key grouping with heavy-hitter-aware placement.

    Parameters
    ----------
    warmup:
        Tuples routed by plain hashing while frequencies are learned.
    phi:
        Heavy-hitter threshold (fraction of the stream); keys above it
        get individual greedy placement.
    capacity:
        SpaceSaving capacity; must exceed ``1/phi`` for the guarantee.
    """

    name = "dkg"

    def __init__(
        self, warmup: int = 4096, phi: float = 0.001, capacity: int | None = None
    ) -> None:
        super().__init__()
        if warmup < 1:
            raise ValueError(f"warmup must be >= 1, got {warmup}")
        if not 0.0 < phi <= 1.0:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        self._warmup = warmup
        self._phi = phi
        self._capacity = capacity if capacity is not None else int(2 / phi)
        self._summary = SpaceSaving(self._capacity)
        self._hash = None
        self._routed = 0
        self._placement: dict[int, int] = {}
        self._placed = False

    def setup(self, k: int, rng: np.random.Generator | None = None) -> None:
        super().setup(k, rng)
        self._hash = random_hash_family(1, k, rng=rng)
        self._summary = SpaceSaving(self._capacity)
        self._routed = 0
        self._placement = {}
        self._placed = False

    def _place_heavy_hitters(self) -> None:
        """Greedy bin packing of heavy keys over expected tuple counts."""
        assert self._hash is not None
        # Light-tail load per instance: everything not individually placed
        # stays on its hash bucket; estimate that base load first.
        hitters = self._summary.heavy_hitters(self._phi)
        heavy_items = {item for item, _ in hitters}
        base_load = np.zeros(self.k, dtype=np.float64)
        light_total = self._summary.total - sum(count for _, count in hitters)
        # the light tail spreads nearly uniformly under 2-universal hashing
        base_load += light_total / self.k
        loads = base_load.copy()
        for item, count in hitters:  # heaviest first
            target = int(np.argmin(loads))
            self._placement[item] = target
            loads[target] += count
        self._placed = True

    def route(self, item: int) -> RouteDecision:
        assert self._hash is not None
        self._summary.update(item)
        self._routed += 1
        if not self._placed:
            if self._routed >= self._warmup:
                self._place_heavy_hitters()
            return RouteDecision(self._hash.hash(0, item))
        placed = self._placement.get(item)
        if placed is not None:
            return RouteDecision(placed)
        return RouteDecision(self._hash.hash(0, item))

    @property
    def heavy_hitter_count(self) -> int:
        """Heavy keys individually placed after warm-up."""
        return len(self._placement)

    @property
    def placed(self) -> bool:
        """Whether the warm-up has completed."""
        return self._placed
