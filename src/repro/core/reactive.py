"""The reactive-scheduling baseline (Section III's rejected alternative).

The paper motivates POSG by dismissing two classical designs: offline
cost models (inflexible) and *reactive* scheduling, where the scheduler
"periodically collect[s] the load of the operator instances" and routes
tuples "on the basis of a previous, possibly stale, load state", paying
"a periodic overhead even if the load distribution ... does not change".

:class:`ReactiveGrouping` implements a fair version of that design so
the claim is measurable:

- every instance reports its measured cumulated execution time after
  each ``report_interval`` executed tuples (the periodic overhead);
- the scheduler routes each tuple to the instance minimizing
  ``reported_time + in_flight * mean_tuple_cost``, where ``in_flight``
  is the number of tuples assigned to the instance since its last
  report — i.e. it extrapolates with the instance's own
  *average* cost (falling back to the global average before an instance
  has one) because, unlike POSG, it knows nothing about the
  content-dependence of execution times;
- instances that have not reported yet keep receiving round-robin
  shares: with no load figure there is nothing to rank them by, and
  projecting them as ``0 + in_flight * mean_cost`` would let one early
  report herd the whole stream onto the silent instances.

It reacts to load imbalance with one report-latency of staleness but can
never anticipate that a particular tuple is expensive — exactly the gap
POSG's sketches close.
"""

from __future__ import annotations

import numpy as np

from repro.core.grouping import GroupingPolicy, InstanceAgent, RouteDecision
from repro.core.messages import ControlMessage, LoadReport, SyncRequest


class _ReportingAgent(InstanceAgent):
    """Instance-side half: emit a LoadReport every ``interval`` tuples."""

    def __init__(self, instance_id: int, interval: int) -> None:
        self.instance_id = instance_id
        self.interval = interval
        self.cumulated_time = 0.0
        self.tuples_executed = 0

    def on_executed(
        self,
        item: int,
        execution_time: float,
        sync_request: SyncRequest | None = None,
    ) -> list[ControlMessage]:
        self.cumulated_time += execution_time
        self.tuples_executed += 1
        if self.tuples_executed % self.interval == 0:
            return [
                LoadReport(
                    instance=self.instance_id,
                    cumulated_time=self.cumulated_time,
                    tuples_executed=self.tuples_executed,
                )
            ]
        return []


class ReactiveGrouping(GroupingPolicy):
    """Schedule on periodically reported (stale) per-instance loads."""

    name = "reactive"

    def __init__(self, report_interval: int = 256) -> None:
        super().__init__()
        if report_interval < 1:
            raise ValueError(
                f"report_interval must be >= 1, got {report_interval}"
            )
        self._interval = report_interval
        self._reported: np.ndarray | None = None
        self._reported_executed: np.ndarray | None = None
        self._assigned: np.ndarray | None = None
        self._assigned_at_report: np.ndarray | None = None
        self._mean_costs: np.ndarray | None = None
        self._has_reported: np.ndarray | None = None
        self._rr_counter = 0
        self._reports_received = 0

    def setup(self, k: int, rng: np.random.Generator | None = None) -> None:
        super().setup(k, rng)
        self._reported = np.zeros(k, dtype=np.float64)
        self._reported_executed = np.zeros(k, dtype=np.float64)
        self._assigned = np.zeros(k, dtype=np.float64)
        self._assigned_at_report = np.zeros(k, dtype=np.float64)
        self._mean_costs = np.zeros(k, dtype=np.float64)
        self._has_reported = np.zeros(k, dtype=bool)
        self._rr_counter = 0
        self._reports_received = 0

    def route(self, item: int) -> RouteDecision:
        assert self._reported is not None and self._assigned is not None
        assert self._reported_executed is not None
        assert self._mean_costs is not None and self._has_reported is not None
        if not self._has_reported.all():
            # keep round-robin over the instances still missing a report:
            # they carry no load figure to rank by, and each needs
            # executions before it can produce one
            silent = np.flatnonzero(~self._has_reported)
            instance = int(silent[self._rr_counter % len(silent)])
            self._rr_counter += 1
        else:
            assert self._assigned_at_report is not None
            # tuples assigned but not covered by the last report: the
            # assigned-minus-executed backlog where reports lag behind
            # the queue, and never less than the assignments made after
            # the report arrived (which it cannot have covered)
            in_flight = np.maximum(
                self._assigned - self._reported_executed,
                self._assigned - self._assigned_at_report,
            )
            # each instance extrapolates with its own mean cost (a slow
            # instance's in-flight tuples are worth more virtual time);
            # the global mean stands in where a report carried no mean
            fallback = self._global_mean_cost()
            costs = np.where(self._mean_costs > 0.0, self._mean_costs, fallback)
            projected = self._reported + in_flight * costs
            instance = int(np.argmin(projected))
        self._assigned[instance] += 1.0
        return RouteDecision(instance)

    def _global_mean_cost(self) -> float:
        assert self._reported is not None and self._reported_executed is not None
        executed = float(self._reported_executed.sum())
        return float(self._reported.sum()) / executed if executed > 0 else 0.0

    def on_control(self, message: ControlMessage) -> None:
        if not isinstance(message, LoadReport):
            raise TypeError(f"reactive scheduler got {message!r}")
        assert self._reported is not None and self._reported_executed is not None
        assert self._mean_costs is not None and self._has_reported is not None
        assert self._assigned is not None and self._assigned_at_report is not None
        self._reported[message.instance] = message.cumulated_time
        self._reported_executed[message.instance] = message.tuples_executed
        self._assigned_at_report[message.instance] = self._assigned[
            message.instance
        ]
        if message.tuples_executed > 0:
            self._mean_costs[message.instance] = (
                message.cumulated_time / message.tuples_executed
            )
        self._has_reported[message.instance] = True
        self._reports_received += 1

    def create_instance_agent(self, instance_id: int) -> InstanceAgent:
        return _ReportingAgent(instance_id, self._interval)

    @property
    def reports_received(self) -> int:
        """Load reports delivered so far (overhead accounting)."""
        return self._reports_received
