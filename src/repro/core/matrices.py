"""The F/W Count-Min matrix pair at the heart of POSG.

Each operator instance maintains two Count-Min sketches sharing the same
2-universal hash functions (Figure 1.A of the paper):

- ``F`` tracks per-item frequencies ``f_t`` (update value 1);
- ``W`` tracks per-item *cumulated* execution times
  ``W_t = sum of measured w_t`` (update value = measured time).

The per-item execution time estimate is the cell ratio ``W/F`` taken at
the row where ``F``'s cell is minimal (Listing III.2, UPDATEC), i.e. the
row least polluted by collisions.

This module also implements the *snapshot* ``S[i,j] = W[i,j]/F[i,j]`` and
the relative-error stability criterion of Eq. 1:

    eta = sum_ij |S[i,j] - W[i,j]/F[i,j]| / sum_ij S[i,j]  <=  mu
"""

from __future__ import annotations

import numpy as np

from repro.core.config import POSGConfig
from repro.sketches.count_min import CountMinSketch
from repro.sketches.hashing import TwoUniversalHashFamily, random_hash_family
from repro.telemetry.recorder import NULL_RECORDER


def make_shared_hashes(
    config: POSGConfig, rng: np.random.Generator | None = None
) -> TwoUniversalHashFamily:
    """Draw the hash family shared by the scheduler and every instance.

    The POSG protocol requires all parties to use the *same* functions
    (Listing III.1 line 4), so engines call this once and distribute the
    result.
    """
    rows, cols = config.sketch_shape
    return random_hash_family(rows, cols, rng=rng)


class FWPair:
    """The two Count-Min matrices of one operator instance.

    Parameters
    ----------
    hashes:
        Hash family shared with the scheduler and sibling instances.
    telemetry:
        Optional recorder; snapshot/reset/scale lifecycle events (all
        cold-path, window-boundary-driven) are counted when live.
    """

    __slots__ = ("_freq", "_work", "_telemetry")

    def __init__(
        self, hashes: TwoUniversalHashFamily, telemetry=NULL_RECORDER
    ) -> None:
        self._freq = CountMinSketch(hashes)
        self._work = CountMinSketch(hashes)
        self._telemetry = telemetry if telemetry is not None else NULL_RECORDER

    # ------------------------------------------------------------------
    # ingestion (Listing III.1)
    # ------------------------------------------------------------------
    def update(self, item: int, execution_time: float) -> None:
        """Fold one executed tuple into both matrices."""
        if execution_time < 0:
            raise ValueError(f"execution_time must be >= 0, got {execution_time}")
        # Both sketches share the hash family, so the tuple is hashed once
        # (a cached column lookup) and applied to F and W.
        columns = self._freq.bucket_cache.columns(item)
        self._freq.update_at(columns, 1.0)
        self._work.update_at(columns, execution_time)

    def update_batch(self, items, execution_times) -> None:
        """Fold a batch of executed tuples, bit-identical to per-tuple
        :meth:`update` (see ``CountMinSketch.fold_batch_exact``).

        The chunked simulator collects the tuples an instance executed
        between window boundaries and folds them in one scatter; callers
        must not let a batch straddle a window boundary, since the FSM of
        Figure 2 inspects the matrices exactly there.
        """
        items = np.asarray(items, dtype=np.int64)
        if items.size == 0:
            return
        times = np.asarray(execution_times, dtype=np.float64)
        buckets = self._freq.bucket_cache.columns_many(items)
        self._freq.fold_batch_exact(buckets, None)
        self._work.fold_batch_exact(buckets, times)

    # ------------------------------------------------------------------
    # estimation (Listing III.2, UPDATEC)
    # ------------------------------------------------------------------
    def estimate(self, item: int) -> float:
        """Estimated execution time of ``item``: ``W/F`` at the min-F row.

        If the item hashes only to empty cells (never observed, e.g. right
        after a reset) the estimate falls back to the global mean execution
        time seen by this pair, or ``0.0`` on a completely empty pair.  The
        paper does not specify this corner case; the fallback keeps the
        scheduler's greedy choice meaningful during warm-up.
        """
        # Hot path of the scheduler (called once per tuple): plain scalar
        # indexing over cached columns beats numpy fancy indexing at these
        # matrix sizes.
        freq_matrix = self._freq._matrix
        work_matrix = self._work._matrix
        best_freq = float("inf")
        best_work = 0.0
        for row, col in enumerate(self._freq.bucket_cache.columns(item)):
            cell = freq_matrix[row, col]
            if cell < best_freq:
                best_freq = cell
                best_work = work_matrix[row, col]
        if best_freq <= 0:
            return self.mean_execution_time()
        return float(best_work / best_freq)

    def estimate_many(self, items: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`estimate` over a batch (shape ``(len(items),)``).

        Bit-identical to the scalar path: the minimum-``F`` row is found
        with the same first-minimum tie-breaking (``np.argmin``), the
        ratio is the same IEEE division, and never-observed items fall
        back to the same global mean.  The scheduler's block router uses
        this to pre-gather per-chunk estimates.
        """
        items = np.asarray(items, dtype=np.int64)
        if items.shape[0] == 0:
            return np.empty(0, dtype=np.float64)
        return self.estimate_many_at(self._freq.bucket_cache.columns_many(items))

    def estimate_many_at(self, buckets: np.ndarray) -> np.ndarray:
        """:meth:`estimate_many` over pre-hashed bucket columns.

        ``buckets`` is a ``(rows, count)`` column matrix from the family's
        shared bucket cache; the scheduler hashes each block once and
        evaluates every instance's pair against the same columns.
        """
        count = buckets.shape[1]
        rows = np.arange(buckets.shape[0])[:, None]
        freq_cells = self._freq._matrix[rows, buckets]
        best_rows = np.argmin(freq_cells, axis=0)
        pick = np.arange(count)
        best_freq = freq_cells[best_rows, pick]
        best_work = self._work._matrix[best_rows, buckets[best_rows, pick]]
        observed = best_freq > 0
        out = np.full(count, self.mean_execution_time(), dtype=np.float64)
        np.divide(best_work, best_freq, out=out, where=observed)
        return out

    def row_values(self, item: int) -> list[tuple[float, float]]:
        """Per-row ``(F cell, W/F ratio)`` for ``item`` — the cells that
        :meth:`estimate` scans, exposed for collision diagnostics.

        Rows whose ``F`` cell is empty report the global-mean fallback
        as their ratio (what :meth:`estimate` would return if that row
        won).  Diagnostic path (the estimator audit); not used for
        routing.
        """
        freq_item = self._freq._matrix.item
        work_item = self._work._matrix.item
        out: list[tuple[float, float]] = []
        mean = None
        for row, col in enumerate(self._freq.bucket_cache.columns(item)):
            freq = freq_item(row, col)
            if freq > 0:
                out.append((freq, work_item(row, col) / freq))
            else:
                if mean is None:
                    mean = self.mean_execution_time()
                out.append((freq, mean))
        return out

    def mean_execution_time(self) -> float:
        """Average measured execution time over everything folded in."""
        if self._freq.total_weight <= 0:
            return 0.0
        return self._work.total_weight / self._freq.total_weight

    # ------------------------------------------------------------------
    # snapshots and stability (Figure 2 / Eq. 1)
    # ------------------------------------------------------------------
    def snapshot(self) -> np.ndarray:
        """Elementwise ratio matrix ``S = W / F`` (0 where ``F`` is 0)."""
        if self._telemetry.enabled:
            self._telemetry.registry.counter(
                "posg_fwpair_snapshots_total",
                help="Snapshot matrices S = W/F materialized",
            ).inc()
        freq = self._freq.matrix
        work = self._work.matrix
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(freq > 0, work / np.where(freq > 0, freq, 1.0), 0.0)
        return ratio

    def relative_error(self, previous_snapshot: np.ndarray) -> float:
        """Relative error ``eta`` between a previous snapshot and now (Eq. 1).

        Returns ``0.0`` when the previous snapshot is entirely zero and the
        matrices still are, and ``inf`` when the previous snapshot is zero
        but the matrices are not (any change from nothing is unstable).
        """
        current = self.snapshot()
        denominator = float(previous_snapshot.sum())
        numerator = float(np.abs(previous_snapshot - current).sum())
        if denominator <= 0:
            return 0.0 if numerator == 0.0 else float("inf")
        return numerator / denominator

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero both matrices (after shipping them to the scheduler)."""
        if self._telemetry.enabled:
            self._telemetry.registry.counter(
                "posg_fwpair_resets_total",
                help="Matrix resets after shipping to the scheduler",
            ).inc()
        self._freq.reset()
        self._work.reset()

    def scale(self, factor: float) -> None:
        """Age both matrices by ``factor`` (see CountMinSketch.scale)."""
        if self._telemetry.enabled:
            self._telemetry.registry.counter(
                "posg_fwpair_scales_total",
                help="Decay-aging passes applied to stored matrices",
            ).inc()
        self._freq.scale(factor)
        self._work.scale(factor)

    def copy(self) -> "FWPair":
        """Deep copy (what actually travels in a :class:`MatricesMessage`).

        The copy is *not* instrumented: it leaves this process's scope
        (conceptually travelling over the wire), so its lifecycle belongs
        to the receiver.
        """
        clone = FWPair.__new__(FWPair)
        clone._freq = self._freq.copy()
        clone._work = self._work.copy()
        clone._telemetry = NULL_RECORDER
        return clone

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable snapshot of both matrices (shared hashes
        stored once)."""
        return {
            "hashes": self.hashes.to_dict(),
            "freq": self._freq.to_dict(),
            "work": self._work.to_dict(),
        }

    @classmethod
    def from_dict(
        cls, payload: dict, hashes: TwoUniversalHashFamily | None = None
    ) -> "FWPair":
        """Rebuild from :meth:`to_dict` (optionally sharing a family)."""
        family = (
            hashes
            if hashes is not None
            else TwoUniversalHashFamily.from_dict(payload["hashes"])
        )
        pair = cls.__new__(cls)
        pair._freq = CountMinSketch.from_dict(payload["freq"], hashes=family)
        pair._work = CountMinSketch.from_dict(payload["work"], hashes=family)
        pair._telemetry = NULL_RECORDER
        return pair

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def freq(self) -> CountMinSketch:
        """The frequency sketch ``F``."""
        return self._freq

    @property
    def work(self) -> CountMinSketch:
        """The cumulated-execution-time sketch ``W``."""
        return self._work

    @property
    def hashes(self) -> TwoUniversalHashFamily:
        """The shared hash family."""
        return self._freq.hashes

    @property
    def tuples_seen(self) -> int:
        """Number of tuples folded in since the last reset."""
        return self._freq.update_count

    def message_size_bits(self, counter_bits: int = 64) -> int:
        """Wire size of shipping this pair, for communication accounting."""
        rows, cols = self._freq.shape
        return 2 * rows * cols * counter_bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rows, cols = self._freq.shape
        return f"FWPair(rows={rows}, cols={cols}, tuples_seen={self.tuples_seen})"
