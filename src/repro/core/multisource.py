"""Multi-source (sharded) POSG scheduling.

The paper deploys a *single* scheduling operator ``S`` in front of the
``k`` instances of operator ``O``.  Real topologies have ``s`` parallel
upstream executors, each running its own shuffle-grouping scheduler over
the *same* downstream instances — so each scheduler only routes (and
therefore only estimates) its own share of the stream.  This module
models that deployment:

- ``s`` independent :class:`~repro.core.scheduler.POSGScheduler`\\ s, one
  per upstream source, each with its own FSM, epoch counter and
  ``C_hat`` vector;
- **one** :class:`~repro.core.instance.InstanceTracker` per downstream
  instance, shared by every scheduler — the instance measures its total
  cumulated execution time ``C_op`` across *all* sources;
- stable ``(F, W)`` matrices are **broadcast**: every scheduler receives
  (a private copy of) each instance's matrices message, so all shards
  estimate with the same information;
- :class:`~repro.core.messages.SyncRequest`\\ s carry the originating
  shard id (``source``), and the instance echoes it on the
  :class:`~repro.core.messages.SyncReply` so the reply is routed back to
  the shard that asked.

The crucial consequence of sharing the trackers is what ``Delta_op``
means under sharding.  A scheduler's ``C_hat[op]`` only accumulates the
estimates of *its own* assignments (roughly ``1/s`` of the load), but
the instance computes ``Delta_op = C_op - c_hat_at_send`` against its
**total** measured time.  Folding that delta therefore re-baselines the
shard's estimate to the instance's *global* load: after each completed
sync round every scheduler greedily balances against what the instance
actually executed for everyone, not just for its own shard.  Between
rounds the shards drift apart again (each sees only its own share of
the arrivals), which is exactly the degradation the
``python -m repro.experiments multisource`` experiment measures.

With ``sources=1`` the subsystem collapses to the paper's deployment
and is bit-identical to :class:`~repro.core.grouping.POSGGrouping`:
one scheduler is built with ``source=None`` (so telemetry carries no
extra labels), matrices "broadcast" to exactly that scheduler without
copying, and every ``SyncReply`` carries ``source=0`` and routes to
scheduler 0 — the same object graph and the same float operations in
the same order as the single-scheduler path.

Cross-shard coordination
------------------------
The drift between folds is the dominant cost of sharding (see the
``attribution`` experiment: 56-74% of the excess latency is staleness
regret).  Arming :class:`~repro.core.config.CoordinationConfig` on the
shared :class:`~repro.core.config.POSGConfig` keeps sibling beliefs
fresh between folds:

- **delta gossip** — after shard ``j``'s scheduler adds its believed
  estimate ``e`` to its own ``C_hat[i]``, the same ``e`` is added to
  every sibling's ``C_hat[i]`` (the shards share this object, so the
  update is an in-process array write; it is billed as control bits at
  ``gossip_stride`` to keep the paper's cost model honest).  Round-
  robin decisions gossip nothing (``e = 0``: ROUND_ROBIN never updates
  ``C_hat``), and the replay invariant is simple: every tuple's
  estimate lands in *every* shard's ``C_hat`` in global arrival order.
- **sync-reply snooping** — when a completed round folds into shard
  ``j``, the freshly re-baselined ``C_hat[op]`` values are copied to
  every sibling whose generation tag for ``op`` matches and that has
  no in-flight measurement of its own for ``op`` (a shard about to
  fold its own delta for ``op`` must not be re-baselined twice).
- **two-choices probe** — scheduler-local (see
  :meth:`~repro.core.scheduler.POSGScheduler.submit`); under gossip the
  probed beliefs are globally fresh, which is what makes the probe
  meaningful (arXiv:1504.00788).

All coordination state lives in the parent process and mutates in
deterministic per-tuple order, so coordinated runs stay bit-identical
across the reference, chunked and parallel engines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import POSGConfig
from repro.core.grouping import GroupingPolicy, POSGGrouping, RouteDecision
from repro.core.matrices import make_shared_hashes
from repro.core.messages import ControlMessage, MatricesMessage, SyncReply
from repro.core.scheduler import POSGScheduler
from repro.telemetry.recorder import NULL_RECORDER

#: billed size of one gossiped load digest per shard edge (a packed
#: ``(instance, estimate)`` delta, same 64-bit convention as the sync
#: protocol messages)
GOSSIP_BITS = 64
#: billed size of one snooped ``C_hat[op]`` publication per sibling
SNOOP_BITS = 64


@dataclass(frozen=True)
class ShardWorkerSpec:
    """Picklable description of the sharded policy's *static* state.

    The parallel engine (``repro.simulator.parallel``) runs the ``s``
    shard schedulers' greedy route loops in worker processes.  Workers
    never hold live scheduler objects: everything immutable travels once
    in this spec (hash-family coefficients, sketch shape, shard count,
    estimate pooling), while the mutable per-shard state — ``C_hat``,
    the stored ``(F, W)`` matrices, FSM mode — lives in a shared-memory
    arena the parent refreshes between control-quiet segments.  The
    spec is a frozen dataclass of builtins, so it pickles under both
    the ``fork`` and ``spawn`` start methods.
    """

    sources: int
    k: int
    rows: int
    cols: int
    pooled_estimates: bool
    #: ``TwoUniversalHashFamily.to_dict()`` payload (shared by the
    #: scheduler-side and instance-side sketches)
    hashes: dict
    #: replay the scheduler's deterministic two-choices probe
    #: (:class:`~repro.core.config.CoordinationConfig.two_choices`)
    two_choices: bool = False


class MultiSourcePOSGGrouping(POSGGrouping):
    """POSG sharded across ``s`` upstream sources (one scheduler each).

    Drop-in replacement for :class:`~repro.core.grouping.POSGGrouping`
    in both engines: the ``s`` sub-streams are interleaved
    deterministically by arrival index (tuple ``i`` is routed by
    scheduler ``i mod s``, matching ``s`` upstream executors fed
    round-robin by a balanced ingest layer).

    Parameters
    ----------
    sources:
        Number of upstream schedulers ``s`` (>= 1).
    config, latency_hints, telemetry:
        As for :class:`~repro.core.grouping.POSGGrouping`; shared by
        every shard.
    """

    name = "posg_multisource"

    def __init__(
        self,
        sources: int = 2,
        config: POSGConfig | None = None,
        latency_hints: "list[float] | None" = None,
        telemetry=NULL_RECORDER,
    ) -> None:
        if sources < 1:
            raise ValueError(f"sources must be >= 1, got {sources}")
        super().__init__(config, latency_hints=latency_hints, telemetry=telemetry)
        self._sources = int(sources)
        self._schedulers: list[POSGScheduler] = []
        self._cursor = 0
        # cross-shard coordination (armed in setup; counters live here so
        # stats() is callable before the policy is bound)
        self._gossip_on = False
        self._gossip_stride = 0
        self._gossip_updates = 0
        self._gossip_billed = 0
        self._snoop_published = 0
        self._gossip_events: list[int] = []
        self._gossip_targets: list[tuple[np.ndarray, ...]] = []
        self._gossip_siblings: list[tuple[POSGScheduler, ...]] = []
        self._gossip_digest_bits = 0

    def setup(self, k: int, rng: np.random.Generator | None = None) -> None:
        GroupingPolicy.setup(self, k, rng)
        self._hashes = make_shared_hashes(self._config, rng=rng)
        if self._sources == 1:
            # source=None keeps the collapsed deployment bit-identical
            # to POSGGrouping (no scheduler labels on telemetry).
            shard_ids: list[int | None] = [None]
        else:
            shard_ids = list(range(self._sources))
        self._schedulers = [
            POSGScheduler(
                k,
                self._config,
                latency_hints=self._latency_hints,
                telemetry=self._telemetry,
                source=shard,
            )
            for shard in shard_ids
        ]
        self._scheduler = self._schedulers[0]
        self._agents = {}
        self._cursor = 0
        coordination = self._config.coordination
        multi = self._sources > 1
        self._gossip_on = bool(
            coordination is not None and coordination.gossip and multi
        )
        self._gossip_stride = (
            coordination.gossip_stride if coordination is not None else 0
        )
        self._gossip_updates = 0
        self._gossip_billed = 0
        self._snoop_published = 0
        self._gossip_events = [0] * self._sources
        if self._gossip_on:
            # Per-source sibling views, precomputed so the hot path is a
            # tuple walk (the arrays alias each scheduler's live C_hat).
            self._gossip_siblings = [
                tuple(
                    sibling
                    for sibling in self._schedulers
                    if sibling is not owner
                )
                for owner in self._schedulers
            ]
            self._gossip_targets = [
                tuple(sibling._c_hat for sibling in siblings)
                for siblings in self._gossip_siblings
            ]
            self._gossip_digest_bits = (self._sources - 1) * GOSSIP_BITS
        else:
            self._gossip_siblings = []
            self._gossip_targets = []
            self._gossip_digest_bits = 0
        if coordination is not None and coordination.snoop and multi:
            for scheduler in self._schedulers:
                scheduler.attach_fold_hook(self._publish_fold)

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def route(self, item: int) -> RouteDecision:
        """Route one tuple through the next shard in arrival order."""
        source = self._cursor
        cursor = source + 1
        self._cursor = 0 if cursor == self._sources else cursor
        decision = self._schedulers[source].submit(item)
        if self._gossip_on:
            estimate = decision.estimate
            # ROUND_ROBIN decisions carry estimate == 0.0 (C_hat is not
            # updated there); skipping them keeps sibling floats exactly
            # on the "every estimate lands everywhere" replay and means
            # the parallel commit can reconstruct billing from the
            # nonzero-estimate count alone.
            if estimate != 0.0:
                instance = decision.instance
                for sibling_c_hat in self._gossip_targets[source]:
                    sibling_c_hat[instance] += estimate
                self._gossip_updates += 1
                events = self._gossip_events
                events[source] += 1
                stride = self._gossip_stride
                if stride and events[source] % stride == 0:
                    self._bill_gossip_digest(source)
        return RouteDecision(decision.instance, decision.sync_request)

    def _bill_gossip_digest(self, source: int) -> None:
        """Charge one batched gossip digest from ``source`` to siblings.

        Billing only touches the control-bit counters — never the
        believed loads — so a ``gossip_stride`` change (including 0,
        which disables billing) cannot change routing.
        """
        self._schedulers[source]._control_bits_sent += self._gossip_digest_bits
        for sibling in self._gossip_siblings[source]:
            sibling._control_bits_received += GOSSIP_BITS
        self._gossip_billed += 1

    # ------------------------------------------------------------------
    # control path
    # ------------------------------------------------------------------
    def on_control(self, message: ControlMessage) -> None:
        """Broadcast matrices to every shard; route replies by source.

        Each shard past the first receives a private *copy* of the
        matrices: with ``config.merge_matrices`` the scheduler merges
        incoming counters into its stored pair in place, so sharing one
        object across shards would double-count every merge.
        """
        if isinstance(message, MatricesMessage):
            self._schedulers[0].on_message(message)
            for scheduler in self._schedulers[1:]:
                scheduler.on_message(
                    MatricesMessage(
                        instance=message.instance,
                        matrices=message.matrices.copy(),
                        tuples_observed=message.tuples_observed,
                        generation=message.generation,
                    )
                )
        elif isinstance(message, SyncReply):
            if not 0 <= message.source < self._sources:
                raise ValueError(
                    f"sync reply for unknown scheduler shard {message.source} "
                    f"(have {self._sources})"
                )
            self._schedulers[message.source].on_message(message)
        else:
            raise TypeError(f"unexpected control message: {message!r}")

    def on_control_batch(self, messages) -> None:
        """Atomically deliver every control message due at one arrival.

        The whole batch is validated *before* any message is applied:
        a reply addressed to an unknown shard (or a foreign message
        type) must not leave replies earlier in the same batch already
        folded, which is what per-message delivery did.
        """
        for message in messages:
            if isinstance(message, MatricesMessage):
                continue
            if isinstance(message, SyncReply):
                if not 0 <= message.source < self._sources:
                    raise ValueError(
                        f"sync reply for unknown scheduler shard "
                        f"{message.source} (have {self._sources})"
                    )
            else:
                raise TypeError(f"unexpected control message: {message!r}")
        for message in messages:
            self.on_control(message)

    # ------------------------------------------------------------------
    # cross-shard coordination (CoordinationConfig)
    # ------------------------------------------------------------------
    def _publish_fold(self, owner: POSGScheduler, instances: list[int]) -> None:
        """Sync-reply snooping: push a fold's fresh globals to siblings.

        ``owner`` just folded its deltas, so its ``C_hat[op]`` for each
        ``op`` in ``instances`` is re-baselined to the instance's
        *global* measured load.  Each value is copied to every sibling
        that (a) agrees on the instance's generation — a shard that has
        not yet observed a crash-restart keeps its own baseline, and a
        shard already past it must not be dragged back — and (b) has no
        in-flight measurement of its own for ``op`` (its imminent fold
        re-baselines ``op`` anyway; snooping first would double-apply).
        Billed at :data:`SNOOP_BITS` per published value per sibling,
        piggy-backed on the reply traffic (no extra messages).
        """
        owner_generations = owner._generations
        owner_c_hat = owner._c_hat
        published = 0
        for sibling in self._schedulers:
            if sibling is owner:
                continue
            sibling_generations = sibling._generations
            sibling_c_hat = sibling._c_hat
            for op in instances:
                if sibling_generations[op] != owner_generations[op]:
                    continue
                if op in sibling._pending_replies or op in sibling._pending_deltas:
                    continue
                sibling_c_hat[op] = owner_c_hat[op]
                owner._control_bits_sent += SNOOP_BITS
                sibling._control_bits_received += SNOOP_BITS
                published += 1
        if published:
            self._snoop_published += published
            flight = owner._flight
            if flight is not None:
                flight.record_snoop(
                    owner._source_id, owner._tuples_scheduled, published
                )

    def commit_gossip(self, source: int, gossiped: int) -> None:
        """Fold a committed segment's gossip accounting (parallel engine).

        The parallel engine applies the gossip *array* updates itself
        when it folds a committed prefix back into the schedulers; this
        replays only the event/billing counters for the ``gossiped``
        nonzero-estimate tuples shard ``source`` contributed, producing
        the same digest count the per-tuple path would have billed
        (digests fire at every ``gossip_stride``-th event, so the count
        over an event interval is a floor-difference).
        """
        if not self._gossip_on or gossiped <= 0:
            return
        self._gossip_updates += gossiped
        events = self._gossip_events
        before = events[source]
        after = before + gossiped
        events[source] = after
        stride = self._gossip_stride
        if stride:
            for _ in range(after // stride - before // stride):
                self._bill_gossip_digest(source)

    # ------------------------------------------------------------------
    # cross-shard flight recorder attachment
    # ------------------------------------------------------------------
    def attach_flight(self, flight) -> None:
        """Bind a flight recorder across every shard's scheduler."""
        flight.bind(self._sources)
        for scheduler in self._schedulers:
            scheduler.attach_flight(flight)

    def record_flight_route(self, flight, index: int, instance: int) -> None:
        """Record a sampled decision for the shard owning ``index``."""
        shard = index % self._sources
        flight.record_route(
            shard, index, instance, self._schedulers[shard]._c_hat.tolist()
        )

    # ------------------------------------------------------------------
    # per-tuple lineage tracer attachment
    # ------------------------------------------------------------------
    def attach_lineage(self, lineage) -> None:
        """Bind a lineage tracer across every shard (coprime stride)."""
        lineage.bind(self._sources)

    def record_lineage_route(
        self,
        lineage,
        index: int,
        instance: int,
        arrival: float,
        at_instance: float,
        start: float,
        finish: float,
        window_remaining: int,
    ) -> None:
        """Record a sampled span under the shard owning ``index``."""
        shard = index % self._sources
        lineage.record_sample(
            shard,
            index,
            instance,
            self._schedulers[shard]._c_hat.tolist(),
            arrival,
            at_instance,
            start,
            finish,
            window_remaining,
        )

    # ------------------------------------------------------------------
    # parallel-engine attachment
    # ------------------------------------------------------------------
    def worker_spec(self) -> ShardWorkerSpec:
        """The picklable static state workers need to route for a shard.

        Only valid after :meth:`setup` (the hash family is drawn there).
        """
        if self._hashes is None:
            raise RuntimeError("worker_spec() requires setup() first")
        coordination = self._config.coordination
        return ShardWorkerSpec(
            sources=self._sources,
            k=self._k,
            rows=self._hashes.rows,
            cols=self._hashes.cols,
            pooled_estimates=self._config.pooled_estimates,
            hashes=self._hashes.to_dict(),
            two_choices=bool(
                coordination is not None and coordination.two_choices
            ),
        )

    def sync_cursor(self, position: int) -> None:
        """Restore the shard interleave after externally-routed tuples.

        The parallel engine routes whole segments in workers without
        calling :meth:`route`; before handing a tuple at stream position
        ``p`` back to the sequential path (SEND_ALL fallback) it must
        restore the invariant ``cursor == p mod s`` so the tuple reaches
        the same shard the reference engine would pick.

        ``position`` is the global stream index of the *next* tuple to
        route, so it must lie in ``[0, tuples routed so far]`` — a
        negative or beyond-the-stream position from a buggy restore
        path would silently alias onto some shard via the modulo and
        desynchronize the interleave without a trace.
        """
        if position < 0:
            raise ValueError(
                f"cursor position must be >= 0, got {position}"
            )
        routed = sum(
            scheduler._tuples_scheduled for scheduler in self._schedulers
        )
        if position > routed:
            raise ValueError(
                f"cursor position {position} is beyond the {routed} "
                f"tuples routed so far"
            )
        self._cursor = position % self._sources

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def sources(self) -> int:
        """Number of upstream scheduler shards ``s``."""
        return self._sources

    @property
    def schedulers(self) -> tuple[POSGScheduler, ...]:
        """Every shard's scheduler, indexed by source id."""
        return tuple(self._schedulers)

    def stats(self) -> dict:
        """Merged control-plane accounting across every shard.

        Counter fields sum over the shards; ``state`` / ``epoch`` are
        reported per shard under ``per_source``.
        """
        per_source = [scheduler.stats() for scheduler in self._schedulers]
        merged: dict = {
            "sources": self._sources,
            "per_source": per_source,
            "gossip_updates": self._gossip_updates,
            "gossip_billed": self._gossip_billed,
            "snoop_published": self._snoop_published,
        }
        for key in (
            "tuples_scheduled",
            "sync_rounds_completed",
            "matrices_received",
            "stale_replies_dropped",
            "control_bits_sent",
            "control_bits_received",
            "control_bits",
            "sync_retransmits",
            "sync_rounds_abandoned",
            "watchdog_fallbacks",
            "restarts_detected",
            "deltas_folded",
            "sync_latency_total",
        ):
            merged[key] = sum(stats[key] for stats in per_source)
        return merged
