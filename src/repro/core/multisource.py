"""Multi-source (sharded) POSG scheduling.

The paper deploys a *single* scheduling operator ``S`` in front of the
``k`` instances of operator ``O``.  Real topologies have ``s`` parallel
upstream executors, each running its own shuffle-grouping scheduler over
the *same* downstream instances — so each scheduler only routes (and
therefore only estimates) its own share of the stream.  This module
models that deployment:

- ``s`` independent :class:`~repro.core.scheduler.POSGScheduler`\\ s, one
  per upstream source, each with its own FSM, epoch counter and
  ``C_hat`` vector;
- **one** :class:`~repro.core.instance.InstanceTracker` per downstream
  instance, shared by every scheduler — the instance measures its total
  cumulated execution time ``C_op`` across *all* sources;
- stable ``(F, W)`` matrices are **broadcast**: every scheduler receives
  (a private copy of) each instance's matrices message, so all shards
  estimate with the same information;
- :class:`~repro.core.messages.SyncRequest`\\ s carry the originating
  shard id (``source``), and the instance echoes it on the
  :class:`~repro.core.messages.SyncReply` so the reply is routed back to
  the shard that asked.

The crucial consequence of sharing the trackers is what ``Delta_op``
means under sharding.  A scheduler's ``C_hat[op]`` only accumulates the
estimates of *its own* assignments (roughly ``1/s`` of the load), but
the instance computes ``Delta_op = C_op - c_hat_at_send`` against its
**total** measured time.  Folding that delta therefore re-baselines the
shard's estimate to the instance's *global* load: after each completed
sync round every scheduler greedily balances against what the instance
actually executed for everyone, not just for its own shard.  Between
rounds the shards drift apart again (each sees only its own share of
the arrivals), which is exactly the degradation the
``python -m repro.experiments multisource`` experiment measures.

With ``sources=1`` the subsystem collapses to the paper's deployment
and is bit-identical to :class:`~repro.core.grouping.POSGGrouping`:
one scheduler is built with ``source=None`` (so telemetry carries no
extra labels), matrices "broadcast" to exactly that scheduler without
copying, and every ``SyncReply`` carries ``source=0`` and routes to
scheduler 0 — the same object graph and the same float operations in
the same order as the single-scheduler path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import POSGConfig
from repro.core.grouping import GroupingPolicy, POSGGrouping, RouteDecision
from repro.core.matrices import make_shared_hashes
from repro.core.messages import ControlMessage, MatricesMessage, SyncReply
from repro.core.scheduler import POSGScheduler
from repro.telemetry.recorder import NULL_RECORDER


@dataclass(frozen=True)
class ShardWorkerSpec:
    """Picklable description of the sharded policy's *static* state.

    The parallel engine (``repro.simulator.parallel``) runs the ``s``
    shard schedulers' greedy route loops in worker processes.  Workers
    never hold live scheduler objects: everything immutable travels once
    in this spec (hash-family coefficients, sketch shape, shard count,
    estimate pooling), while the mutable per-shard state — ``C_hat``,
    the stored ``(F, W)`` matrices, FSM mode — lives in a shared-memory
    arena the parent refreshes between control-quiet segments.  The
    spec is a frozen dataclass of builtins, so it pickles under both
    the ``fork`` and ``spawn`` start methods.
    """

    sources: int
    k: int
    rows: int
    cols: int
    pooled_estimates: bool
    #: ``TwoUniversalHashFamily.to_dict()`` payload (shared by the
    #: scheduler-side and instance-side sketches)
    hashes: dict


class MultiSourcePOSGGrouping(POSGGrouping):
    """POSG sharded across ``s`` upstream sources (one scheduler each).

    Drop-in replacement for :class:`~repro.core.grouping.POSGGrouping`
    in both engines: the ``s`` sub-streams are interleaved
    deterministically by arrival index (tuple ``i`` is routed by
    scheduler ``i mod s``, matching ``s`` upstream executors fed
    round-robin by a balanced ingest layer).

    Parameters
    ----------
    sources:
        Number of upstream schedulers ``s`` (>= 1).
    config, latency_hints, telemetry:
        As for :class:`~repro.core.grouping.POSGGrouping`; shared by
        every shard.
    """

    name = "posg_multisource"

    def __init__(
        self,
        sources: int = 2,
        config: POSGConfig | None = None,
        latency_hints: "list[float] | None" = None,
        telemetry=NULL_RECORDER,
    ) -> None:
        if sources < 1:
            raise ValueError(f"sources must be >= 1, got {sources}")
        super().__init__(config, latency_hints=latency_hints, telemetry=telemetry)
        self._sources = int(sources)
        self._schedulers: list[POSGScheduler] = []
        self._cursor = 0

    def setup(self, k: int, rng: np.random.Generator | None = None) -> None:
        GroupingPolicy.setup(self, k, rng)
        self._hashes = make_shared_hashes(self._config, rng=rng)
        if self._sources == 1:
            # source=None keeps the collapsed deployment bit-identical
            # to POSGGrouping (no scheduler labels on telemetry).
            shard_ids: list[int | None] = [None]
        else:
            shard_ids = list(range(self._sources))
        self._schedulers = [
            POSGScheduler(
                k,
                self._config,
                latency_hints=self._latency_hints,
                telemetry=self._telemetry,
                source=shard,
            )
            for shard in shard_ids
        ]
        self._scheduler = self._schedulers[0]
        self._agents = {}
        self._cursor = 0

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def route(self, item: int) -> RouteDecision:
        """Route one tuple through the next shard in arrival order."""
        source = self._cursor
        cursor = source + 1
        self._cursor = 0 if cursor == self._sources else cursor
        decision = self._schedulers[source].submit(item)
        return RouteDecision(decision.instance, decision.sync_request)

    # ------------------------------------------------------------------
    # control path
    # ------------------------------------------------------------------
    def on_control(self, message: ControlMessage) -> None:
        """Broadcast matrices to every shard; route replies by source.

        Each shard past the first receives a private *copy* of the
        matrices: with ``config.merge_matrices`` the scheduler merges
        incoming counters into its stored pair in place, so sharing one
        object across shards would double-count every merge.
        """
        if isinstance(message, MatricesMessage):
            self._schedulers[0].on_message(message)
            for scheduler in self._schedulers[1:]:
                scheduler.on_message(
                    MatricesMessage(
                        instance=message.instance,
                        matrices=message.matrices.copy(),
                        tuples_observed=message.tuples_observed,
                        generation=message.generation,
                    )
                )
        elif isinstance(message, SyncReply):
            if not 0 <= message.source < self._sources:
                raise ValueError(
                    f"sync reply for unknown scheduler shard {message.source} "
                    f"(have {self._sources})"
                )
            self._schedulers[message.source].on_message(message)
        else:
            raise TypeError(f"unexpected control message: {message!r}")

    # ------------------------------------------------------------------
    # cross-shard flight recorder attachment
    # ------------------------------------------------------------------
    def attach_flight(self, flight) -> None:
        """Bind a flight recorder across every shard's scheduler."""
        flight.bind(self._sources)
        for scheduler in self._schedulers:
            scheduler.attach_flight(flight)

    def record_flight_route(self, flight, index: int, instance: int) -> None:
        """Record a sampled decision for the shard owning ``index``."""
        shard = index % self._sources
        flight.record_route(
            shard, index, instance, self._schedulers[shard]._c_hat.tolist()
        )

    # ------------------------------------------------------------------
    # per-tuple lineage tracer attachment
    # ------------------------------------------------------------------
    def attach_lineage(self, lineage) -> None:
        """Bind a lineage tracer across every shard (coprime stride)."""
        lineage.bind(self._sources)

    def record_lineage_route(
        self,
        lineage,
        index: int,
        instance: int,
        arrival: float,
        at_instance: float,
        start: float,
        finish: float,
        window_remaining: int,
    ) -> None:
        """Record a sampled span under the shard owning ``index``."""
        shard = index % self._sources
        lineage.record_sample(
            shard,
            index,
            instance,
            self._schedulers[shard]._c_hat.tolist(),
            arrival,
            at_instance,
            start,
            finish,
            window_remaining,
        )

    # ------------------------------------------------------------------
    # parallel-engine attachment
    # ------------------------------------------------------------------
    def worker_spec(self) -> ShardWorkerSpec:
        """The picklable static state workers need to route for a shard.

        Only valid after :meth:`setup` (the hash family is drawn there).
        """
        if self._hashes is None:
            raise RuntimeError("worker_spec() requires setup() first")
        return ShardWorkerSpec(
            sources=self._sources,
            k=self._k,
            rows=self._hashes.rows,
            cols=self._hashes.cols,
            pooled_estimates=self._config.pooled_estimates,
            hashes=self._hashes.to_dict(),
        )

    def sync_cursor(self, position: int) -> None:
        """Restore the shard interleave after externally-routed tuples.

        The parallel engine routes whole segments in workers without
        calling :meth:`route`; before handing a tuple at stream position
        ``p`` back to the sequential path (SEND_ALL fallback) it must
        restore the invariant ``cursor == p mod s`` so the tuple reaches
        the same shard the reference engine would pick.
        """
        self._cursor = position % self._sources

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def sources(self) -> int:
        """Number of upstream scheduler shards ``s``."""
        return self._sources

    @property
    def schedulers(self) -> tuple[POSGScheduler, ...]:
        """Every shard's scheduler, indexed by source id."""
        return tuple(self._schedulers)

    def stats(self) -> dict:
        """Merged control-plane accounting across every shard.

        Counter fields sum over the shards; ``state`` / ``epoch`` are
        reported per shard under ``per_source``.
        """
        per_source = [scheduler.stats() for scheduler in self._schedulers]
        merged: dict = {
            "sources": self._sources,
            "per_source": per_source,
        }
        for key in (
            "tuples_scheduled",
            "sync_rounds_completed",
            "matrices_received",
            "stale_replies_dropped",
            "control_bits_sent",
            "control_bits_received",
            "control_bits",
            "sync_retransmits",
            "sync_rounds_abandoned",
            "watchdog_fallbacks",
            "restarts_detected",
            "deltas_folded",
            "sync_latency_total",
        ):
            merged[key] = sum(stats[key] for stats in per_source)
        return merged
