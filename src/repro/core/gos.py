"""The Greedy Online Scheduler (GOS) and makespan utilities.

Section III-A / IV-A of the paper: schedule a sequence of independent,
non-preemptible tasks online on ``k`` machines by always assigning the
next task to the least-loaded machine.  Theorem 4.2 proves
``C_GOS <= (2 - 1/k) * C_OPT`` and the bound is tight (Gusfield 1984).

These standalone functions back the theoretical analysis and the
``Full Knowledge`` baseline; the runtime scheduler lives in
:mod:`repro.core.scheduler`.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Sequence


def greedy_online_schedule(
    weights: Iterable[float], k: int
) -> tuple[list[int], list[float]]:
    """Assign each task to the currently least-loaded machine.

    Parameters
    ----------
    weights:
        Task processing times, in arrival order.
    k:
        Number of identical machines.

    Returns
    -------
    (assignment, loads):
        ``assignment[j]`` is the machine of task ``j``; ``loads`` the final
        per-machine cumulated load.  Ties break toward the lowest machine
        index, matching ``numpy.argmin`` in the runtime scheduler.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    # (load, machine) heap gives O(m log k); machine index tie-breaks.
    heap = [(0.0, machine) for machine in range(k)]
    loads = [0.0] * k
    assignment: list[int] = []
    for weight in weights:
        if weight < 0:
            raise ValueError(f"task weights must be >= 0, got {weight}")
        load, machine = heapq.heappop(heap)
        assignment.append(machine)
        load += weight
        loads[machine] = load
        heapq.heappush(heap, (load, machine))
    return assignment, loads


def makespan(loads: Sequence[float]) -> float:
    """Makespan of a schedule: the maximum machine load."""
    if not loads:
        raise ValueError("loads must be non-empty")
    return max(loads)


def opt_lower_bound(weights: Sequence[float], k: int) -> float:
    """Lower bound on the optimal makespan (Eqs. 3 and 4 of the paper).

    ``C_OPT >= max(sum(w)/k, max(w))``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    weights = list(weights)
    if not weights:
        return 0.0
    return max(sum(weights) / k, max(weights))


def gos_approximation_ratio(weights: Sequence[float], k: int) -> float:
    """Observed ``C_GOS / lower_bound(C_OPT)``; Theorem 4.2 caps it at 2-1/k.

    Because the true ``C_OPT`` is NP-hard, the ratio is computed against
    the lower bound, which only makes the check *stricter*.
    """
    _, loads = greedy_online_schedule(weights, k)
    bound = opt_lower_bound(weights, k)
    if bound == 0:
        return 1.0
    return makespan(loads) / bound


def lpt_schedule(weights: Sequence[float], k: int) -> tuple[list[int], list[float]]:
    """Offline Longest-Processing-Time-first schedule (4/3-approximation).

    A classical offline comparator: sort descending, then greedy.  Used by
    the analysis benchmarks to contextualize the online penalty.
    ``assignment`` is indexed by the *original* task positions.
    """
    order = sorted(range(len(weights)), key=lambda j: -weights[j])
    sorted_assignment, loads = greedy_online_schedule(
        [weights[j] for j in order], k
    )
    assignment = [0] * len(weights)
    for rank, original in enumerate(order):
        assignment[original] = sorted_assignment[rank]
    return assignment, loads


def adversarial_sequence(k: int, w_max: float = 1.0) -> list[float]:
    """The tight worst case for GOS (Section IV-A, after Theorem 4.2).

    ``k*(k-1)`` tasks of weight ``w_max/k`` followed by one task of weight
    ``w_max``: GOS ends with makespan ``w_max * (2 - 1/k)`` while OPT packs
    the small tasks on ``k-1`` machines and achieves ``w_max``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return [w_max / k] * (k * (k - 1)) + [w_max]


def completion_times_online(
    arrivals: Sequence[float],
    weights: Sequence[float],
    assignment: Sequence[int],
    k: int,
) -> list[float]:
    """Per-task completion times under FIFO queues and a fixed assignment.

    Task ``j`` arrives at ``arrivals[j]``, is routed to machine
    ``assignment[j]``, waits for every earlier task on that machine, runs
    ``weights[j]``, and its completion time is ``finish - arrivals[j]``.
    This is the queueing model behind the paper's metric ``L``.
    """
    if not len(arrivals) == len(weights) == len(assignment):
        raise ValueError("arrivals, weights and assignment must align")
    busy_until = [0.0] * k
    completions: list[float] = []
    for arrival, weight, machine in zip(arrivals, weights, assignment):
        start = max(arrival, busy_until[machine])
        finish = start + weight
        busy_until[machine] = finish
        completions.append(finish - arrival)
    return completions
