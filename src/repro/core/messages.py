"""Control-plane messages exchanged between instances and the scheduler.

Three message kinds exist in POSG (Figures 1 and 3 of the paper):

- :class:`MatricesMessage` — an instance ships its ``(F, W)`` pair to the
  scheduler after reaching stability (Figure 1.B / Figure 2.C);
- :class:`SyncRequest` — the scheduler, entering SEND_ALL, piggy-backs one
  request per instance on outgoing data tuples, carrying its current
  estimate ``C_hat[op]`` (Figure 1.D);
- :class:`SyncReply` — the instance answers with
  ``Delta_op = C_op - C_hat[op]``, the gap between its measured cumulated
  execution time and the scheduler's estimate (Figure 1.E).

Messages are plain frozen dataclasses so both the simulator and the
Storm-like engine can route them as opaque payloads; ``epoch`` tags let
the scheduler discard stale replies after a new synchronization round
preempts an unfinished one (Figure 3.F).

Beyond the paper, instance-originated messages carry a ``generation``
tag: an instance that crash-restarts (losing its matrices and ``C_op``)
bumps its generation, letting the scheduler detect the restart, discard
pre-crash replies and re-baseline ``C_hat`` (see
``POSGScheduler._note_restart``).  The tag rides in the existing message
header, so ``size_bits`` accounting is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.matrices import FWPair


@dataclass(frozen=True)
class MatricesMessage:
    """An instance's stable ``(F, W)`` pair bound for the scheduler."""

    instance: int
    matrices: "FWPair"
    #: number of tuples the instance folded into this pair before shipping
    tuples_observed: int
    #: crash-restart counter of the sending instance (0 = never restarted)
    generation: int = 0

    def size_bits(self) -> int:
        """Wire size (communication-complexity accounting, Theorem 3.3)."""
        return self.matrices.message_size_bits()


@dataclass(frozen=True)
class SyncRequest:
    """Scheduler -> instance: "what is your true cumulated time?".

    Piggy-backed on a data tuple; carries the scheduler's estimate for the
    target instance at send time so the instance can compute the delta.
    """

    instance: int
    epoch: int
    c_hat_at_send: float
    #: originating scheduler shard under multi-source scheduling (0 = the
    #: only scheduler in the single-source deployment); rides the message
    #: header like ``generation``, so ``size_bits`` is unchanged
    source: int = 0

    def size_bits(self) -> int:
        """One float on the wire (the rest rides along with the tuple)."""
        return 64


@dataclass(frozen=True)
class SyncReply:
    """Instance -> scheduler: ``Delta_op = C_op - C_hat[op]``."""

    instance: int
    epoch: int
    delta: float
    #: crash-restart counter of the sending instance (0 = never restarted)
    generation: int = 0
    #: scheduler shard the triggering :class:`SyncRequest` came from —
    #: echoed back so the reply can be routed to the right scheduler
    #: under multi-source scheduling; rides the header (size unchanged)
    source: int = 0

    def size_bits(self) -> int:
        """One float on the wire."""
        return 64


@dataclass(frozen=True)
class LoadReport:
    """Instance -> scheduler: periodic load snapshot.

    Not part of POSG — this is the control message of the *reactive*
    scheduling baseline the paper argues against in Section III
    ("periodically collect at the scheduler the load of the operator
    instances ... input tuples are scheduled on the basis of a previous,
    possibly stale, load state").
    """

    instance: int
    #: measured cumulated execution time at report time
    cumulated_time: float
    #: tuples executed at report time
    tuples_executed: int

    def size_bits(self) -> int:
        """One float plus one counter on the wire."""
        return 128


ControlMessage = Union[MatricesMessage, SyncRequest, SyncReply, LoadReport]
