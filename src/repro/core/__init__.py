"""POSG — the paper's primary contribution.

This package implements Proactive Online Shuffle Grouping exactly as
described in Section III of the paper, split into engine-agnostic pieces:

- :class:`~repro.core.config.POSGConfig` — algorithm parameters
  (``epsilon``, ``delta``, window size ``N``, stability tolerance ``mu``).
- :class:`~repro.core.matrices.FWPair` — the two Count-Min matrices
  (frequencies ``F`` and cumulated execution times ``W``) sharing hash
  functions, with snapshotting and the relative-error criterion of Eq. 1.
- :class:`~repro.core.instance.InstanceTracker` — the operator-instance
  side: the START/STABILIZING finite state machine of Figure 2.
- :class:`~repro.core.scheduler.POSGScheduler` — the scheduler side: the
  ROUND_ROBIN/SEND_ALL/WAIT_ALL/RUN finite state machine of Figure 3,
  including the synchronization protocol.
- :mod:`~repro.core.gos` — the Greedy Online Scheduler and makespan
  utilities backing Theorem 4.2.
- :mod:`~repro.core.grouping` — engine-facing grouping policies
  (Round-Robin, POSG, Full Knowledge oracle, ...).
"""

from repro.core.config import POSGConfig, RecoveryConfig
from repro.core.matrices import FWPair
from repro.core.messages import MatricesMessage, SyncReply, SyncRequest
from repro.core.instance import InstanceTracker, InstanceState
from repro.core.scheduler import POSGScheduler, SchedulerState, SchedulingDecision
from repro.core.gos import greedy_online_schedule, makespan, opt_lower_bound
from repro.core.grouping import (
    GroupingPolicy,
    RoundRobinGrouping,
    RandomGrouping,
    KeyGrouping,
    FullKnowledgeGrouping,
    TwoChoicesGrouping,
    POSGGrouping,
)
from repro.core.multisource import MultiSourcePOSGGrouping
from repro.core.reactive import ReactiveGrouping
from repro.core.dkg import DKGGrouping

__all__ = [
    "POSGConfig",
    "RecoveryConfig",
    "FWPair",
    "MatricesMessage",
    "SyncRequest",
    "SyncReply",
    "InstanceTracker",
    "InstanceState",
    "POSGScheduler",
    "SchedulerState",
    "SchedulingDecision",
    "greedy_online_schedule",
    "makespan",
    "opt_lower_bound",
    "GroupingPolicy",
    "RoundRobinGrouping",
    "RandomGrouping",
    "KeyGrouping",
    "FullKnowledgeGrouping",
    "TwoChoicesGrouping",
    "POSGGrouping",
    "MultiSourcePOSGGrouping",
    "ReactiveGrouping",
    "DKGGrouping",
]
