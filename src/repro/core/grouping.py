"""Engine-facing grouping policies.

A *grouping policy* decides, for each tuple of a stream, which of the
``k`` parallel instances of the downstream operator receives it.  Both
execution substrates (:mod:`repro.simulator` and :mod:`repro.storm`) drive
policies through this interface, so every experiment can swap POSG,
Round-Robin and the Full Knowledge oracle freely.

Policies with instance-side logic (only POSG) additionally expose
:meth:`GroupingPolicy.create_instance_agent`; the engine calls the agent
after each tuple execution and routes the returned control messages back
to the policy with the latency it models.
"""

from __future__ import annotations

import abc
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.core.config import POSGConfig
from repro.core.instance import InstanceTracker
from repro.core.matrices import make_shared_hashes
from repro.core.messages import ControlMessage, SyncRequest
from repro.core.scheduler import POSGScheduler, SchedulerState
from repro.sketches.hashing import random_hash_family
from repro.telemetry.recorder import NULL_RECORDER


@dataclass(frozen=True)
class RouteDecision:
    """Where a tuple goes, plus any control payload to piggy-back."""

    instance: int
    sync_request: SyncRequest | None = None


class InstanceAgent(abc.ABC):
    """Per-instance hook a policy installs on each operator instance."""

    @abc.abstractmethod
    def on_executed(
        self,
        item: int,
        execution_time: float,
        sync_request: SyncRequest | None = None,
    ) -> list[ControlMessage]:
        """Observe one executed tuple; return messages for the policy."""


class GroupingPolicy(abc.ABC):
    """Base class for all shuffle-grouping policies."""

    #: human-readable policy name used in experiment reports
    name: str = "abstract"

    def __init__(self) -> None:
        self._k: int | None = None

    def setup(self, k: int, rng: np.random.Generator | None = None) -> None:
        """Bind the policy to ``k`` downstream instances.

        Engines call this exactly once before routing the first tuple.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self._k = k

    @property
    def k(self) -> int:
        """Number of downstream instances (after :meth:`setup`)."""
        if self._k is None:
            raise RuntimeError("policy not set up; call setup(k) first")
        return self._k

    @abc.abstractmethod
    def route(self, item: int) -> RouteDecision:
        """Pick the destination instance for one tuple."""

    def on_control(self, message: ControlMessage) -> None:
        """Deliver a control message from an instance agent (default: none)."""

    def on_control_batch(self, messages: "list[ControlMessage]") -> None:
        """Deliver a batch of due control messages, in delivery order.

        The engines drain every message due at one arrival through this
        entry point so a policy can validate the *whole* batch before
        applying any of it (atomic delivery: a malformed message must
        not leave earlier messages of the same batch already folded).
        The default applies them one by one.
        """
        for message in messages:
            self.on_control(message)

    def create_instance_agent(self, instance_id: int) -> InstanceAgent | None:
        """Instance-side hook, or ``None`` for purely scheduler-side policies."""
        return None

    # ------------------------------------------------------------------
    # per-tuple lineage tracer attachment (any policy can be traced)
    # ------------------------------------------------------------------
    def attach_lineage(self, lineage) -> None:
        """Bind a :class:`~repro.telemetry.lineage.LineageTracer`.

        Must be called after :meth:`setup`.  The default (unsharded)
        deployment records as shard 0; sharded policies override this
        to bind every shard.
        """
        lineage.bind(1)

    def record_lineage_route(
        self,
        lineage,
        index: int,
        instance: int,
        arrival: float,
        at_instance: float,
        start: float,
        finish: float,
        window_remaining: int,
    ) -> None:
        """Record a sampled tuple's span chain at global stream ``index``.

        Called by the engines right after computing the sampled tuple's
        clocks.  Policies without an estimated load vector record an
        empty believed tuple; POSG-family policies override this to
        attach their post-decision ``C_hat``.
        """
        lineage.record_sample(
            0, index, instance, (), arrival, at_instance, start, finish,
            window_remaining,
        )


class RoundRobinGrouping(GroupingPolicy):
    """The baseline the paper compares against: ``i mod k`` assignment.

    This is also what Apache Storm's stock shuffle grouping (ASSG) does.
    """

    name = "round_robin"

    def __init__(self) -> None:
        super().__init__()
        self._counter = 0

    def route(self, item: int) -> RouteDecision:
        instance = self._counter % self.k
        self._counter += 1
        return RouteDecision(instance)


class RandomGrouping(GroupingPolicy):
    """Uniform random assignment (a weaker shuffle-grouping baseline)."""

    name = "random"

    def __init__(self) -> None:
        super().__init__()
        self._rng: np.random.Generator | None = None

    def setup(self, k: int, rng: np.random.Generator | None = None) -> None:
        super().setup(k, rng)
        self._rng = rng if rng is not None else np.random.default_rng()

    def route(self, item: int) -> RouteDecision:
        assert self._rng is not None
        return RouteDecision(int(self._rng.integers(0, self.k)))


class KeyGrouping(GroupingPolicy):
    """Hash-based key grouping (included for contrast, Section VI).

    Key grouping pins every occurrence of an item to one instance; the
    paper notes solutions built for it underperform under shuffle
    grouping, which our experiments can now demonstrate.
    """

    name = "key"

    def __init__(self) -> None:
        super().__init__()
        self._hash = None

    def setup(self, k: int, rng: np.random.Generator | None = None) -> None:
        super().setup(k, rng)
        self._hash = random_hash_family(1, k, rng=rng)

    def route(self, item: int) -> RouteDecision:
        assert self._hash is not None
        return RouteDecision(self._hash.hash(0, item))


class FullKnowledgeGrouping(GroupingPolicy):
    """The ideal baseline: GOS fed with *exact* execution times.

    The oracle callable returns the true execution time of an item on an
    instance at routing time; the policy keeps the exact cumulated load
    vector and assigns greedily (Section V-B, "Full Knowledge").
    """

    name = "full_knowledge"

    def __init__(self, oracle: Callable[[int, int], float]) -> None:
        super().__init__()
        self._oracle = oracle
        self._loads: np.ndarray | None = None

    def setup(self, k: int, rng: np.random.Generator | None = None) -> None:
        super().setup(k, rng)
        self._loads = np.zeros(k, dtype=np.float64)

    def route(self, item: int) -> RouteDecision:
        assert self._loads is not None
        instance = int(np.argmin(self._loads))
        self._loads[instance] += self._oracle(item, instance)
        return RouteDecision(instance)

    @property
    def loads(self) -> np.ndarray:
        """Exact cumulated loads (read-only view)."""
        assert self._loads is not None
        view = self._loads.view()
        view.flags.writeable = False
        return view


class TwoChoicesGrouping(GroupingPolicy):
    """Power-of-two-choices over exact loads (classic baseline).

    Samples two distinct instances uniformly and sends the tuple to the
    one with the lower exact cumulated load (the oracle supplies the true
    execution time, as for :class:`FullKnowledgeGrouping`).  A standard
    point of comparison between blind (Round-Robin) and fully informed
    (greedy-over-all) shuffle grouping.
    """

    name = "two_choices"

    def __init__(self, oracle: Callable[[int, int], float]) -> None:
        super().__init__()
        self._oracle = oracle
        self._loads: np.ndarray | None = None
        self._rng: np.random.Generator | None = None

    def setup(self, k: int, rng: np.random.Generator | None = None) -> None:
        super().setup(k, rng)
        self._loads = np.zeros(k, dtype=np.float64)
        self._rng = rng if rng is not None else np.random.default_rng()

    def route(self, item: int) -> RouteDecision:
        assert self._loads is not None and self._rng is not None
        if self.k == 1:
            first = second = 0
        else:
            first, second = self._rng.choice(self.k, size=2, replace=False)
        instance = int(first if self._loads[first] <= self._loads[second] else second)
        self._loads[instance] += self._oracle(item, instance)
        return RouteDecision(instance)


class _POSGInstanceAgent(InstanceAgent):
    """Adapter exposing an :class:`InstanceTracker` as an instance agent."""

    def __init__(self, tracker: InstanceTracker) -> None:
        self.tracker = tracker

    def on_executed(
        self,
        item: int,
        execution_time: float,
        sync_request: SyncRequest | None = None,
    ) -> list[ControlMessage]:
        return self.tracker.execute(item, execution_time, sync_request)


class POSGGrouping(GroupingPolicy):
    """POSG deployed as a grouping policy (the paper's contribution).

    Owns the scheduler-side FSM and hands out one
    :class:`~repro.core.instance.InstanceTracker` per downstream instance;
    the hosting engine wires the control channel between them with
    whatever latency it models.
    """

    name = "posg"

    def __init__(
        self,
        config: POSGConfig | None = None,
        latency_hints: "list[float] | None" = None,
        telemetry=NULL_RECORDER,
    ) -> None:
        super().__init__()
        self._config = config if config is not None else POSGConfig()
        self._latency_hints = latency_hints
        self._telemetry = telemetry if telemetry is not None else NULL_RECORDER
        self._scheduler: POSGScheduler | None = None
        self._hashes = None
        self._agents: dict[int, _POSGInstanceAgent] = {}

    def setup(self, k: int, rng: np.random.Generator | None = None) -> None:
        super().setup(k, rng)
        self._hashes = make_shared_hashes(self._config, rng=rng)
        self._scheduler = POSGScheduler(
            k,
            self._config,
            latency_hints=self._latency_hints,
            telemetry=self._telemetry,
        )
        self._agents = {}

    def route(self, item: int) -> RouteDecision:
        decision = self.scheduler.submit(item)
        return RouteDecision(decision.instance, decision.sync_request)

    def on_control(self, message: ControlMessage) -> None:
        self.scheduler.on_message(message)

    # ------------------------------------------------------------------
    # cross-shard flight recorder attachment
    # ------------------------------------------------------------------
    def attach_flight(self, flight) -> None:
        """Bind a :class:`~repro.telemetry.flightrecorder.FlightRecorder`.

        Must be called after :meth:`setup`.  The single-scheduler
        deployment records as shard 0.
        """
        flight.bind(1)
        self.scheduler.attach_flight(flight)

    def record_flight_route(self, flight, index: int, instance: int) -> None:
        """Record a sampled routing decision at global stream ``index``.

        Called by the engines right after routing the sampled tuple, so
        the believed loads include this tuple's estimate — the same
        float values the engine-side block routers commit.
        """
        flight.record_route(0, index, instance, self.scheduler._c_hat.tolist())

    def record_lineage_route(
        self,
        lineage,
        index: int,
        instance: int,
        arrival: float,
        at_instance: float,
        start: float,
        finish: float,
        window_remaining: int,
    ) -> None:
        """Record a sampled span with the post-decision ``C_hat``.

        The believed loads include this tuple's estimate (the flight-
        recorder convention), so the reference engine's post-route hook
        and the chunked/parallel segment replays agree bit-for-bit.
        """
        lineage.record_sample(
            0,
            index,
            instance,
            self.scheduler._c_hat.tolist(),
            arrival,
            at_instance,
            start,
            finish,
            window_remaining,
        )

    def create_instance_agent(self, instance_id: int) -> InstanceAgent:
        if self._hashes is None:
            raise RuntimeError("policy not set up; call setup(k) first")
        if instance_id in self._agents:
            raise ValueError(f"agent for instance {instance_id} already created")
        tracker = InstanceTracker(
            instance_id, self._config, self._hashes, telemetry=self._telemetry
        )
        agent = _POSGInstanceAgent(tracker)
        self._agents[instance_id] = agent
        return agent

    @property
    def scheduler(self) -> POSGScheduler:
        """The scheduler-side FSM (after :meth:`setup`)."""
        if self._scheduler is None:
            raise RuntimeError("policy not set up; call setup(k) first")
        return self._scheduler

    @property
    def config(self) -> POSGConfig:
        """The POSG configuration in force."""
        return self._config

    @property
    def telemetry(self):
        """The telemetry recorder in force (:data:`NULL_RECORDER` default)."""
        return self._telemetry

    @property
    def state(self) -> SchedulerState:
        """Scheduler FSM state (convenience for experiments)."""
        return self.scheduler.state

    def tracker(self, instance_id: int) -> InstanceTracker:
        """The instance-side tracker created for ``instance_id``."""
        return self._agents[instance_id].tracker
