"""Scheduler side of POSG: the four-state machine of Figure 3.

The scheduler owns:

- ``C_hat`` — a length-``k`` vector of *estimated* cumulated execution
  times, one per operator instance;
- the latest ``(F, W)`` matrix pair received from each instance.

States and transitions (Figure 3):

- **ROUND_ROBIN** — bootstrap: no execution-time information yet, tuples
  are assigned round-robin and ``C_hat`` is not updated.  Incoming
  matrices are collected (3.A); once a pair has arrived from *every*
  instance the scheduler moves to SEND_ALL (3.B).
- **SEND_ALL** — the next ``k`` tuples are assigned round-robin
  (``i mod k``), each piggy-backing a :class:`SyncRequest` carrying the
  scheduler's estimate for its target; ``C_hat`` is updated with
  estimates.  After all ``k`` requests are out, WAIT_ALL (3.C).
- **WAIT_ALL** — scheduling already runs greedily (SUBMIT + UPDATEC);
  :class:`SyncReply` messages are collected (3.D) and, once complete,
  ``C_hat[op] += Delta_op`` for every instance and the scheduler enters
  RUN (3.E).
- **RUN** — steady state: each tuple goes to ``argmin C_hat`` and
  ``C_hat`` grows by the tuple's estimated execution time.

In any state but ROUND_ROBIN, receiving an updated matrix pair restarts
the synchronization: the epoch counter bumps and the scheduler re-enters
SEND_ALL (3.F); replies from stale epochs are discarded.

Beyond the paper, the scheduler optionally defends itself against a
lossy control plane (see :class:`~repro.core.config.RecoveryConfig`):
a sync-round timeout re-issues requests for missing replies with the
*same* epoch (so stale-reply dropping stays correct across
retransmissions), a staleness watchdog falls back to ROUND_ROBIN when
an instance goes silent, and generation tags on instance messages
re-baseline ``C_hat`` after a crash-restart.  With ``config.recovery``
left ``None`` every defense is disabled and the scheduler is
bit-identical to the paper's protocol.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.config import POSGConfig
from repro.core.matrices import FWPair
from repro.core.messages import ControlMessage, MatricesMessage, SyncReply, SyncRequest
from repro.telemetry.recorder import NULL_RECORDER
from repro.telemetry.registry import Sample


class SchedulerState(enum.Enum):
    """States of the scheduler FSM (Figure 3)."""

    ROUND_ROBIN = "round_robin"
    SEND_ALL = "send_all"
    WAIT_ALL = "wait_all"
    RUN = "run"


@dataclass(frozen=True)
class SchedulingDecision:
    """Outcome of submitting one tuple to the scheduler.

    ``sync_request`` must be piggy-backed on the tuple and handed to the
    target instance by the hosting engine.  ``estimate`` is the believed
    execution time just added to ``C_hat[instance]`` (0.0 in
    ROUND_ROBIN, where ``C_hat`` is not updated) — the cross-shard
    gossip layer forwards it to sibling shards.
    """

    instance: int
    sync_request: SyncRequest | None
    state: SchedulerState
    estimate: float = 0.0


class POSGScheduler:
    """The POSG scheduling operator ``S`` (Listing III.2 + Figure 3).

    Parameters
    ----------
    k:
        Number of parallel instances of the downstream operator.
    config:
        Shared POSG parameters.
    source:
        Scheduler shard id under multi-source scheduling (see
        :class:`~repro.core.multisource.MultiSourcePOSGGrouping`).  When
        set, outgoing :class:`SyncRequest`\\ s are stamped with it (the
        instance echoes it back so replies route to the right shard) and
        every telemetry sample / trace event carries a ``scheduler``
        label.  ``None`` (the default) keeps the single-scheduler
        behaviour bit-identical: requests carry ``source=0`` (the
        dataclass default) and no extra labels are emitted.

    The hosting engine drives the scheduler through two entry points:
    :meth:`submit` for every data tuple and :meth:`on_message` for every
    control message arriving from the instances.
    """

    def __init__(
        self,
        k: int,
        config: POSGConfig | None = None,
        latency_hints: "np.ndarray | list[float] | None" = None,
        telemetry=NULL_RECORDER,
        source: int | None = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self._k = k
        self._source = source
        self._source_id = 0 if source is None else int(source)
        # pre-built label/kwarg extras so the single-scheduler hot path
        # pays nothing and multi-source telemetry is distinguishable
        self._source_labels: tuple = (
            () if source is None else (("scheduler", str(source)),)
        )
        self._source_trace: dict = {} if source is None else {"scheduler": source}
        # Flight-recorder labels follow the cross-shard convention
        # (``shard``) rather than the scheduler label so the attribution
        # tooling can join metrics across layers by one key.
        self._shard_labels: tuple = (
            () if source is None else (("shard", str(source)),)
        )
        self._telemetry = telemetry if telemetry is not None else NULL_RECORDER
        self._config = config if config is not None else POSGConfig()
        coordination = self._config.coordination
        self._two_choices = bool(
            coordination is not None and coordination.two_choices
        )
        if latency_hints is None:
            self._latency_hints = None
        else:
            hints = np.asarray(latency_hints, dtype=np.float64)
            if hints.shape != (k,):
                raise ValueError(
                    f"latency_hints must have shape ({k},), got {hints.shape}"
                )
            if np.any(hints < 0):
                raise ValueError("latency hints must be >= 0")
            self._latency_hints = hints
        # Latency-aware extension: per-instance cumulated delivery cost.
        # Kept separate from C_hat so the Delta synchronization (which
        # re-aligns C_hat with the instances' measured *execution* time)
        # does not erase it.
        self._latency_debt = np.zeros(k, dtype=np.float64)
        self._state = SchedulerState.ROUND_ROBIN
        self._c_hat = np.zeros(k, dtype=np.float64)
        self._matrices: dict[int, FWPair] = {}
        # Pooled-estimate fast path: the pair list is re-walked for every
        # tuple, so it is materialized once per matrices message instead
        # of per estimate (dict insertion order is preserved, keeping the
        # float summation order of the per-tuple path).
        self._pairs: tuple[FWPair, ...] = ()
        self._rr_counter = 0
        self._epoch = 0
        self._sendall_counter = 0
        self._pending_replies: set[int] = set()
        self._pending_deltas: dict[int, float] = {}
        # fault tolerance (RecoveryConfig defenses + restart detection)
        self._recovery = self._config.recovery
        self._resend_targets: list[int] | None = None
        self._sync_retries = 0
        self._current_timeout = (
            self._recovery.sync_timeout if self._recovery is not None else 0
        )
        self._wait_entered = 0
        self._last_matrices_at = [0] * k
        self._generations = [0] * k
        self._c_offsets = [0.0] * k
        # statistics
        self._tuples_scheduled = 0
        self._sync_rounds_completed = 0
        self._matrices_received = 0
        self._stale_replies_dropped = 0
        self._control_bits_received = 0
        self._control_bits_sent = 0
        self._sync_retransmits = 0
        self._sync_rounds_abandoned = 0
        self._watchdog_fallbacks = 0
        self._restarts_detected = 0
        # per-shard sync-round accounting (clocked in tuples scheduled)
        self._sync_started_at = 0
        self._last_sync_latency = 0
        self._sync_latency_total = 0
        self._deltas_folded = 0
        # optional cross-shard flight recorder (attach_flight)
        self._flight = None
        # optional fold observer (cross-shard sync-reply snooping)
        self._fold_hook = None
        # Zero-hot-path-cost export: the registry reads these plain ints
        # through a collector only when someone asks for a snapshot.
        self._telemetry.registry.register_collector(self._collect_samples)

    def attach_flight(self, flight) -> None:
        """Route this scheduler's control events into a flight recorder.

        The recorder must already be bound (:meth:`FlightRecorder.bind`)
        to the deployment's shard count; this scheduler reports as shard
        ``source`` (0 when ``source=None``).  Every record point is
        keyed on ``tuples_scheduled``, which both simulator engines keep
        identical at control-delivery points, so the recorded timeline
        is engine-invariant.
        """
        self._flight = flight

    def attach_fold_hook(self, hook) -> None:
        """Observe completed delta folds (cross-shard snooping).

        ``hook(scheduler, instances)`` fires at the end of every
        :meth:`_resynchronize` with the instances whose deltas were
        folded, in fold order.  The multi-source layer uses it to
        publish the freshly re-baselined global ``C_hat`` values to
        sibling shards (see
        :class:`~repro.core.config.CoordinationConfig`).
        """
        self._fold_hook = hook

    # ------------------------------------------------------------------
    # data path (SUBMIT + UPDATEC, Listing III.2)
    # ------------------------------------------------------------------
    def submit(self, item: int) -> SchedulingDecision:
        """Choose the instance for one incoming tuple."""
        self._tuples_scheduled += 1
        if self._recovery is not None:
            self._defense_tick()
        if self._state is SchedulerState.ROUND_ROBIN:
            instance = self._rr_counter % self._k
            self._rr_counter += 1
            return SchedulingDecision(instance, None, SchedulerState.ROUND_ROBIN)

        if self._state is SchedulerState.SEND_ALL:
            targets = self._resend_targets
            if targets is None:
                instance = self._sendall_counter % self._k
                done = self._sendall_counter + 1 >= self._k
            else:
                # retransmission round: only the missing instances
                instance = targets[self._sendall_counter]
                done = self._sendall_counter + 1 >= len(targets)
            self._sendall_counter += 1
            estimate = self.estimate(item, instance)
            self._c_hat[instance] += estimate
            request = SyncRequest(
                instance=instance,
                epoch=self._epoch,
                c_hat_at_send=float(self._c_hat[instance]),
                source=self._source_id,
            )
            self._control_bits_sent += request.size_bits()
            if self._telemetry.enabled:
                self._telemetry.tracer.emit(
                    "sync_request",
                    instance=instance,
                    epoch=self._epoch,
                    c_hat=request.c_hat_at_send,
                    bits=request.size_bits(),
                    at=self._tuples_scheduled,
                    **self._source_trace,
                )
            if self._flight is not None:
                self._flight.record_sync_request(
                    self._source_id, self._tuples_scheduled, instance, self._epoch
                )
            if done:
                self._enter_wait_all()
            return SchedulingDecision(
                instance, request, SchedulerState.SEND_ALL, estimate
            )

        # WAIT_ALL and RUN schedule greedily (Greedy Online Scheduler).
        # The latency-aware extension (the paper's stated future work)
        # charges every assignment its instance's delivery latency, so
        # distant instances receive a proportionally smaller share.
        if self._latency_hints is None:
            instance = int(np.argmin(self._c_hat))
            estimate = self.estimate(item, instance)
            if self._two_choices and self._k > 1:
                # Deterministic power-of-two-choices probe: compare the
                # argmin candidate against the alternate ``item mod k``
                # (bumped past the candidate on collision) and keep the
                # target whose post-add belief is lower.
                alt = item % self._k
                if alt == instance:
                    alt = alt + 1 if alt + 1 < self._k else 0
                alt_estimate = self.estimate(item, alt)
                if (
                    self._c_hat[alt] + alt_estimate
                    < self._c_hat[instance] + estimate
                ):
                    instance = alt
                    estimate = alt_estimate
        else:
            instance = int(
                np.argmin(self._c_hat + self._latency_debt + self._latency_hints)
            )
            self._latency_debt[instance] += self._latency_hints[instance]
            estimate = self.estimate(item, instance)
        self._c_hat[instance] += estimate
        return SchedulingDecision(instance, None, self._state, estimate)

    def _update_c_hat(self, item: int, instance: int) -> None:
        """UPDATEC: grow the estimate by the tuple's estimated time."""
        self._c_hat[instance] += self.estimate(item, instance)

    def _transition(self, new_state: SchedulerState) -> None:
        """Move the FSM, tracing the edge when telemetry is live."""
        old_state = self._state
        self._state = new_state
        if self._telemetry.enabled and new_state is not old_state:
            self._telemetry.tracer.emit(
                "scheduler_state",
                **{"from": old_state.value, "to": new_state.value},
                epoch=self._epoch,
                at=self._tuples_scheduled,
                **self._source_trace,
            )

    def _enter_wait_all(self) -> None:
        """SEND_ALL done: start (or resume) waiting for the replies."""
        self._transition(SchedulerState.WAIT_ALL)
        if self._recovery is not None:
            self._wait_entered = self._tuples_scheduled
            self._resend_targets = None
            if not self._pending_replies:
                # every reply already arrived while we were still sending
                # (possible under reordering faults); without this the
                # resync condition in _on_sync_reply can never fire again
                # and the round would hang until the next matrices.
                self._resynchronize()

    # ------------------------------------------------------------------
    # fault-tolerance defenses (RecoveryConfig)
    # ------------------------------------------------------------------
    def _defense_tick(self) -> None:
        """Check recovery deadlines; the clock is tuples scheduled."""
        state = self._state
        if state is not SchedulerState.WAIT_ALL and state is not SchedulerState.RUN:
            return
        recovery = self._recovery
        limit = recovery.staleness_limit
        if limit is not None:
            now = self._tuples_scheduled
            last = self._last_matrices_at
            stale = [i for i in range(self._k) if now - last[i] > limit]
            if stale:
                self._watchdog_fallback(stale)
                return
        if (
            state is SchedulerState.WAIT_ALL
            and self._pending_replies
            and self._tuples_scheduled - self._wait_entered >= self._current_timeout
        ):
            if self._sync_retries >= recovery.sync_max_retries:
                self._abandon_sync_round()
            else:
                self._start_retransmission()

    def _start_retransmission(self) -> None:
        """Re-enter SEND_ALL for the missing replies only (same epoch)."""
        recovery = self._recovery
        self._sync_retries += 1
        self._current_timeout = min(
            int(self._current_timeout * recovery.sync_backoff),
            recovery.sync_timeout_max,
        )
        self._resend_targets = sorted(self._pending_replies)
        self._sendall_counter = 0
        self._sync_retransmits += 1
        if self._telemetry.enabled:
            self._telemetry.tracer.emit(
                "sync_retransmit",
                epoch=self._epoch,
                targets=list(self._resend_targets),
                retry=self._sync_retries,
                timeout=self._current_timeout,
                at=self._tuples_scheduled,
                **self._source_trace,
            )
        self._transition(SchedulerState.SEND_ALL)

    def _abandon_sync_round(self) -> None:
        """Give up on the missing replies; fold the partial deltas."""
        self._sync_rounds_abandoned += 1
        missing = sorted(self._pending_replies)
        self._pending_replies = set()
        if self._telemetry.enabled:
            self._telemetry.tracer.emit(
                "sync_round_abandoned",
                epoch=self._epoch,
                missing=missing,
                retries=self._sync_retries,
                at=self._tuples_scheduled,
                **self._source_trace,
            )
        self._resynchronize()

    def _watchdog_fallback(self, stale: list[int]) -> None:
        """Drop silent instances' matrices and re-bootstrap (Figure 3.B)."""
        for instance in stale:
            self._matrices.pop(instance, None)
        self._pairs = tuple(self._matrices.values())
        self._pending_replies = set()
        self._pending_deltas = {}
        self._resend_targets = None
        self._watchdog_fallbacks += 1
        if self._telemetry.enabled:
            self._telemetry.tracer.emit(
                "watchdog_fallback",
                stale=list(stale),
                epoch=self._epoch,
                at=self._tuples_scheduled,
                **self._source_trace,
            )
        self._transition(SchedulerState.ROUND_ROBIN)

    def _note_restart(self, instance: int, generation: int) -> None:
        """Re-baseline ``C_hat[instance]`` after a detected crash-restart.

        The restarted instance measures ``C_op`` from zero, so every
        subsequent delta from its new generation must be shifted by the
        estimate the scheduler had accumulated for its previous life —
        otherwise the first resync would collapse ``C_hat[instance]`` to
        roughly zero and the greedy policy would flood the instance.
        """
        self._generations[instance] = generation
        self._c_offsets[instance] = float(self._c_hat[instance])
        self._restarts_detected += 1
        if self._telemetry.enabled:
            self._telemetry.tracer.emit(
                "instance_restart_detected",
                instance=instance,
                generation=generation,
                c_offset=self._c_offsets[instance],
                at=self._tuples_scheduled,
                **self._source_trace,
            )

    # ------------------------------------------------------------------
    # block fast path (vectorized data plane)
    # ------------------------------------------------------------------
    def begin_block(self, items: np.ndarray, profiler=None) -> "_BlockRouter | None":
        """Start routing a *control-quiet* block of tuples.

        Returns a :class:`_BlockRouter` whose ``route_next()`` replays
        :meth:`submit` bit-for-bit over plain Python floats — per-instance
        estimate columns for the block are pre-gathered in one vectorized
        pass, and the per-tuple ``np.argmin`` becomes a tight scalar scan.
        The caller must guarantee that no control message is delivered
        while the block is open (delivering one invalidates the
        estimates), must stop at or before ``len(items)`` tuples, and must
        call ``commit()`` to fold the routed prefix back into the
        scheduler.

        Returns ``None`` in SEND_ALL (every tuple piggy-backs a
        :class:`SyncRequest` there, so the per-tuple path is required).

        ``profiler`` (a :class:`~repro.telemetry.profiler.PhaseProfiler`,
        duck-typed) wraps the block hashing and estimate gathering in
        "hash"/"estimate" spans.
        """
        if self._state is SchedulerState.ROUND_ROBIN:
            return _BlockRouter(self, None)
        if self._state is SchedulerState.SEND_ALL:
            return None
        return _BlockRouter(self, self._block_estimates(items, profiler))

    def _block_estimates(
        self, items: np.ndarray, profiler=None
    ) -> list[list[float]]:
        """Per-instance estimate columns for a block: ``[k][count]``.

        All pairs ship from instances sharing one hash family (Listing
        III.1 line 4), so the block is hashed once and every pair is
        evaluated against the same bucket columns; pairs with a foreign
        family (hand-built tests) fall back to hashing themselves.
        """
        items = np.asarray(items, dtype=np.int64)
        count = items.shape[0]
        pairs = self._pairs
        buckets = None
        if pairs:
            family = pairs[0].hashes
            if all(pair.hashes is family for pair in pairs):
                if profiler is not None:
                    profiler.start("hash")
                buckets = pairs[0].freq.bucket_cache.columns_many(items)
                if profiler is not None:
                    profiler.stop()
        if profiler is None:
            return self._gather_columns(items, count, pairs, buckets)
        profiler.start("estimate")
        try:
            return self._gather_columns(items, count, pairs, buckets)
        finally:
            profiler.stop()

    def _gather_columns(
        self, items: np.ndarray, count: int, pairs, buckets
    ) -> list[list[float]]:
        def column(pair: FWPair) -> np.ndarray:
            if buckets is not None:
                return pair.estimate_many_at(buckets)
            return pair.estimate_many(items)

        if self._config.pooled_estimates and pairs:
            total = np.zeros(count, dtype=np.float64)
            for pair in pairs:
                total = total + column(pair)
            pooled = (total / len(pairs)).tolist()
            return [pooled] * self._k
        zeros = None
        columns = []
        for instance in range(self._k):
            pair = self._matrices.get(instance)
            if pair is None:
                if zeros is None:
                    zeros = [0.0] * count
                columns.append(zeros)
            else:
                columns.append(column(pair).tolist())
        return columns

    def estimate(self, item: int, instance: int) -> float:
        """Estimated execution time of ``item`` on ``instance``.

        Paper behaviour (Listing III.2): read the target instance's
        matrices.  With ``config.pooled_estimates`` the estimate averages
        over every instance's matrices instead (see
        :class:`~repro.core.config.POSGConfig`).
        """
        if self._config.pooled_estimates and self._pairs:
            return sum(pair.estimate(item) for pair in self._pairs) / len(self._pairs)
        pair = self._matrices.get(instance)
        return pair.estimate(item) if pair is not None else 0.0

    def row_estimates(
        self, item: int, instance: int
    ) -> "list[tuple[float, float]] | None":
        """Per-row ``(F, W/F)`` cells behind :meth:`estimate`, or ``None``.

        Exposes the target instance's pair row by row so the estimator
        audit can diagnose Count-Min collisions (rows disagreeing on the
        count mean some row took a collision).  Returns ``None`` before
        the instance's first matrices arrive.  Read-only: no scheduler
        state changes.
        """
        pair = self._matrices.get(instance)
        return pair.row_values(item) if pair is not None else None

    # ------------------------------------------------------------------
    # control path
    # ------------------------------------------------------------------
    def on_message(self, message: ControlMessage) -> None:
        """Deliver a control message (matrices or sync reply)."""
        if isinstance(message, MatricesMessage):
            self._on_matrices(message)
        elif isinstance(message, SyncReply):
            self._on_sync_reply(message)
        else:
            raise TypeError(f"unexpected control message: {message!r}")

    def _on_matrices(self, message: MatricesMessage) -> None:
        if not 0 <= message.instance < self._k:
            raise ValueError(f"matrices from unknown instance {message.instance}")
        stored = self._matrices.get(message.instance)
        restarted = message.generation > self._generations[message.instance]
        if restarted:
            # A new incarnation: its matrices describe only post-crash
            # tuples, so any stored pre-crash pair must be replaced, not
            # merged into.
            self._note_restart(message.instance, message.generation)
        if stored is not None and self._config.merge_matrices and not restarted:
            # The instance reset after shipping, so the incoming pair holds
            # only fresh samples; merging accumulates the full history
            # (Count-Min sketches are linear).  An optional decay ages the
            # history so stale load characteristics fade out.
            if self._config.merge_decay < 1.0:
                stored.scale(self._config.merge_decay)
            stored.freq.merge(message.matrices.freq)
            stored.work.merge(message.matrices.work)
        else:
            self._matrices[message.instance] = message.matrices
        self._pairs = tuple(self._matrices.values())
        self._matrices_received += 1
        self._last_matrices_at[message.instance] = self._tuples_scheduled
        self._control_bits_received += message.size_bits()
        if self._telemetry.enabled:
            self._telemetry.tracer.emit(
                "matrices_received",
                instance=message.instance,
                tuples_observed=message.tuples_observed,
                bits=message.size_bits(),
                merged=bool(stored is not None and self._config.merge_matrices),
                at=self._tuples_scheduled,
                **self._source_trace,
            )
        if self._flight is not None:
            self._flight.record_matrices(
                self._source_id, self._tuples_scheduled, message.instance
            )
        if self._state is SchedulerState.ROUND_ROBIN:
            if len(self._matrices) == self._k:
                self._begin_sync_round()  # Figure 3.B
        else:
            self._begin_sync_round()  # Figure 3.F

    def _begin_sync_round(self) -> None:
        """Enter SEND_ALL with a fresh epoch."""
        self._epoch += 1
        self._sendall_counter = 0
        self._sync_started_at = self._tuples_scheduled
        self._pending_replies = set(range(self._k))
        self._pending_deltas = {}
        if self._recovery is not None:
            self._sync_retries = 0
            self._current_timeout = self._recovery.sync_timeout
            self._resend_targets = None
        self._transition(SchedulerState.SEND_ALL)

    def _on_sync_reply(self, reply: SyncReply) -> None:
        outdated = False
        if 0 <= reply.instance < self._k:
            known = self._generations[reply.instance]
            if reply.generation > known:
                # The restart surfaced through a reply before any
                # post-crash matrices did; re-baseline immediately.
                self._note_restart(reply.instance, reply.generation)
            elif reply.generation < known:
                # Pre-crash measurement from a dead incarnation.
                outdated = True
        if (
            outdated
            or reply.epoch != self._epoch
            or reply.instance not in self._pending_replies
        ):
            self._stale_replies_dropped += 1
            if self._telemetry.enabled:
                self._telemetry.tracer.emit(
                    "sync_reply",
                    instance=reply.instance,
                    epoch=reply.epoch,
                    delta=reply.delta,
                    bits=reply.size_bits(),
                    stale=True,
                    at=self._tuples_scheduled,
                    **self._source_trace,
                )
            if self._flight is not None:
                self._flight.record_sync_reply(
                    self._source_id,
                    self._tuples_scheduled,
                    reply.instance,
                    reply.epoch,
                    True,
                )
            return
        self._control_bits_received += reply.size_bits()
        if self._telemetry.enabled:
            self._telemetry.tracer.emit(
                "sync_reply",
                instance=reply.instance,
                epoch=reply.epoch,
                delta=reply.delta,
                bits=reply.size_bits(),
                stale=False,
                at=self._tuples_scheduled,
                **self._source_trace,
            )
        if self._flight is not None:
            self._flight.record_sync_reply(
                self._source_id,
                self._tuples_scheduled,
                reply.instance,
                reply.epoch,
                False,
            )
        delta = reply.delta
        offset = self._c_offsets[reply.instance]
        if offset != 0.0:
            # Shift the new incarnation's delta so the fold reconstructs
            # the lifetime cumulated time (see _note_restart).
            delta += offset
        self._pending_replies.discard(reply.instance)
        self._pending_deltas[reply.instance] = delta
        if not self._pending_replies and self._state is SchedulerState.WAIT_ALL:
            self._resynchronize()  # Figure 3.E

    def _resynchronize(self) -> None:
        """Fold every ``Delta_op`` into ``C_hat`` and enter RUN."""
        folded = len(self._pending_deltas)
        folded_instances = list(self._pending_deltas)
        for instance, delta in self._pending_deltas.items():
            self._c_hat[instance] += delta
        self._pending_deltas = {}
        self._sync_rounds_completed += 1
        self._deltas_folded += folded
        latency = self._tuples_scheduled - self._sync_started_at
        self._last_sync_latency = latency
        self._sync_latency_total += latency
        if self._flight is not None:
            self._flight.record_fold(
                self._source_id, self._tuples_scheduled, self._epoch, folded
            )
        if self._telemetry.enabled:
            self._telemetry.tracer.emit(
                "sync_round_complete",
                epoch=self._epoch,
                rounds=self._sync_rounds_completed,
                at=self._tuples_scheduled,
                **self._source_trace,
            )
        self._transition(SchedulerState.RUN)
        if self._fold_hook is not None and folded_instances:
            self._fold_hook(self, folded_instances)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Control- and data-plane accounting as one flat dict.

        This is the scheduler-side counterpart of
        :attr:`repro.storm.metrics.TopologyMetrics.control_bits`: both
        layers report control overhead in *bits* so Figure 12's overhead
        numbers are comparable across substrates.
        """
        return {
            "state": self._state.value,
            "epoch": self._epoch,
            "tuples_scheduled": self._tuples_scheduled,
            "sync_rounds_completed": self._sync_rounds_completed,
            "matrices_received": self._matrices_received,
            "stale_replies_dropped": self._stale_replies_dropped,
            "control_bits_sent": self._control_bits_sent,
            "control_bits_received": self._control_bits_received,
            "control_bits": self._control_bits_sent + self._control_bits_received,
            "sync_retransmits": self._sync_retransmits,
            "sync_rounds_abandoned": self._sync_rounds_abandoned,
            "watchdog_fallbacks": self._watchdog_fallbacks,
            "restarts_detected": self._restarts_detected,
            "deltas_folded": self._deltas_folded,
            "sync_latency_tuples": self._last_sync_latency,
            "sync_latency_total": self._sync_latency_total,
        }

    def _collect_samples(self) -> list[Sample]:
        """Export-time metric samples (registered as a collector).

        Under multi-source scheduling every sample carries a
        ``scheduler`` label so the shards stay distinguishable in one
        registry; single-scheduler deployments (``source=None``) emit the
        exact same label-free samples as before.
        """
        extra = self._source_labels
        samples = [
            Sample(
                "posg_scheduler_tuples_scheduled_total",
                self._tuples_scheduled,
                "counter",
                extra,
                help="Tuples submitted to the POSG scheduler",
            ),
            Sample(
                "posg_scheduler_epoch",
                self._epoch,
                "gauge",
                extra,
                help="Current synchronization epoch",
            ),
            Sample(
                "posg_scheduler_sync_rounds_total",
                self._sync_rounds_completed,
                "counter",
                extra,
                help="Completed WAIT_ALL -> RUN synchronizations",
            ),
            Sample(
                "posg_scheduler_matrices_received_total",
                self._matrices_received,
                "counter",
                extra,
                help="(F, W) pairs received from instances",
            ),
            Sample(
                "posg_scheduler_stale_replies_total",
                self._stale_replies_dropped,
                "counter",
                extra,
                help="Sync replies dropped because their epoch was preempted",
            ),
            Sample(
                "posg_scheduler_control_bits_sent_total",
                self._control_bits_sent,
                "counter",
                extra,
                help="Control-plane bits sent by the scheduler",
            ),
            Sample(
                "posg_scheduler_control_bits_received_total",
                self._control_bits_received,
                "counter",
                extra,
                help="Control-plane bits received by the scheduler",
            ),
            Sample(
                "posg_scheduler_state_info",
                1,
                "gauge",
                (("state", self._state.value),) + extra,
                help="Current scheduler FSM state (label carries the state)",
            ),
            Sample(
                "posg_scheduler_sync_retransmits_total",
                self._sync_retransmits,
                "counter",
                extra,
                help="SEND_ALL retransmission rounds triggered by timeout",
            ),
            Sample(
                "posg_scheduler_sync_rounds_abandoned_total",
                self._sync_rounds_abandoned,
                "counter",
                extra,
                help="Sync rounds abandoned after exhausting retries",
            ),
            Sample(
                "posg_scheduler_watchdog_fallbacks_total",
                self._watchdog_fallbacks,
                "counter",
                extra,
                help="ROUND_ROBIN fallbacks forced by the staleness watchdog",
            ),
            Sample(
                "posg_scheduler_restarts_detected_total",
                self._restarts_detected,
                "counter",
                extra,
                help="Instance crash-restarts detected via generation tags",
            ),
            Sample(
                "posg_scheduler_deltas_folded_total",
                self._deltas_folded,
                "counter",
                self._shard_labels,
                help="Delta_op folds applied to C_hat (per shard)",
            ),
            Sample(
                "posg_scheduler_sync_latency_tuples",
                self._last_sync_latency,
                "gauge",
                self._shard_labels,
                help="Last sync round's SEND_ALL->fold latency in tuples",
            ),
            Sample(
                "posg_scheduler_sync_latency_tuples_total",
                self._sync_latency_total,
                "counter",
                self._shard_labels,
                help="Cumulated sync-round latency in tuples (per shard)",
            ),
        ]
        samples.extend(
            Sample(
                "posg_scheduler_c_hat_ms",
                value,
                "gauge",
                (("instance", str(instance)),) + extra,
                help="Estimated cumulated execution time per instance",
            )
            for instance, value in enumerate(self._c_hat.tolist())
        )
        return samples

    @property
    def k(self) -> int:
        """Number of downstream instances."""
        return self._k

    @property
    def source(self) -> int | None:
        """Scheduler shard id, or ``None`` outside multi-source mode."""
        return self._source

    @property
    def config(self) -> POSGConfig:
        """The POSG configuration in force."""
        return self._config

    @property
    def state(self) -> SchedulerState:
        """Current FSM state."""
        return self._state

    @property
    def epoch(self) -> int:
        """Current synchronization epoch."""
        return self._epoch

    @property
    def c_hat(self) -> np.ndarray:
        """Read-only view of the estimated cumulated execution times."""
        view = self._c_hat.view()
        view.flags.writeable = False
        return view

    @property
    def tuples_scheduled(self) -> int:
        """Total tuples submitted so far."""
        return self._tuples_scheduled

    @property
    def sync_rounds_completed(self) -> int:
        """Completed synchronizations (WAIT_ALL -> RUN transitions)."""
        return self._sync_rounds_completed

    @property
    def matrices_received(self) -> int:
        """Matrix pairs received from instances so far."""
        return self._matrices_received

    @property
    def stale_replies_dropped(self) -> int:
        """Sync replies discarded because their epoch was preempted."""
        return self._stale_replies_dropped

    @property
    def recovery(self):
        """The :class:`RecoveryConfig` in force, or ``None`` (disabled)."""
        return self._recovery

    @property
    def pending_replies(self) -> frozenset[int]:
        """Instances whose reply for the current epoch is still missing."""
        return frozenset(self._pending_replies)

    @property
    def sync_retransmits(self) -> int:
        """SEND_ALL retransmission rounds triggered by the sync timeout."""
        return self._sync_retransmits

    @property
    def sync_rounds_abandoned(self) -> int:
        """Sync rounds abandoned after exhausting the retry budget."""
        return self._sync_rounds_abandoned

    @property
    def watchdog_fallbacks(self) -> int:
        """ROUND_ROBIN fallbacks forced by the staleness watchdog."""
        return self._watchdog_fallbacks

    @property
    def restarts_detected(self) -> int:
        """Instance crash-restarts detected via generation tags."""
        return self._restarts_detected

    @property
    def deltas_folded(self) -> int:
        """Total ``Delta_op`` values folded into ``C_hat``."""
        return self._deltas_folded

    @property
    def last_sync_latency(self) -> int:
        """Tuples scheduled between the last SEND_ALL and its fold."""
        return self._last_sync_latency

    @property
    def control_bits(self) -> int:
        """Total control-plane traffic touched by the scheduler, in bits."""
        return self._control_bits_received + self._control_bits_sent

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"POSGScheduler(k={self._k}, state={self._state.value}, "
            f"epoch={self._epoch}, scheduled={self._tuples_scheduled})"
        )


class _BlockRouter:
    """Scalar-loop replay of :meth:`POSGScheduler.submit` for one block.

    In ROUND_ROBIN mode (``estimates is None``) it advances the round-robin
    counter; in greedy mode it scans a plain-float copy of ``C_hat`` (plus
    latency debt/hints when configured) with the same first-minimum
    tie-breaking as ``np.argmin`` and accrues the pre-gathered estimates.
    All arithmetic happens on the exact same IEEE doubles the per-tuple
    path would touch, so the routed sequence is bit-identical.
    """

    __slots__ = (
        "_scheduler",
        "_estimates",
        "_k",
        "_pos",
        "_rr",
        "_c",
        "_debt",
        "_hints",
    )

    def __init__(
        self, scheduler: POSGScheduler, estimates: "list[list[float]] | None"
    ) -> None:
        self._scheduler = scheduler
        self._estimates = estimates
        self._k = scheduler._k
        self._pos = 0
        if estimates is None:
            self._rr = scheduler._rr_counter
            self._c = self._debt = self._hints = None
        else:
            self._rr = None
            self._c = scheduler._c_hat.tolist()
            if scheduler._latency_hints is None:
                self._hints = self._debt = None
            else:
                self._hints = scheduler._latency_hints.tolist()
                self._debt = scheduler._latency_debt.tolist()

    def route_next(self) -> int:
        """Route one tuple; returns its instance (no sync payloads here)."""
        pos = self._pos
        self._pos = pos + 1
        if self._estimates is None:
            instance = self._rr % self._k
            self._rr += 1
            return instance
        c = self._c
        if self._hints is None:
            best = c[0]
            instance = 0
            for i in range(1, self._k):
                value = c[i]
                if value < best:
                    best = value
                    instance = i
        else:
            debt, hints = self._debt, self._hints
            best = (c[0] + debt[0]) + hints[0]
            instance = 0
            for i in range(1, self._k):
                value = (c[i] + debt[i]) + hints[i]
                if value < best:
                    best = value
                    instance = i
            debt[instance] += hints[instance]
        c[instance] += self._estimates[instance][pos]
        return instance

    def commit(self) -> None:
        """Fold the routed prefix back into the scheduler's state."""
        scheduler = self._scheduler
        scheduler._tuples_scheduled += self._pos
        if self._estimates is None:
            scheduler._rr_counter = self._rr
        else:
            scheduler._c_hat[:] = self._c
            if self._hints is not None:
                scheduler._latency_debt[:] = self._debt
