"""POSG algorithm parameters.

Defaults follow the paper's experimental setup (Section V-A): window size
``N = 1024``, stability tolerance ``mu = 0.05``, sketch accuracy
``epsilon = 0.05`` and ``delta = 0.1``.  The paper's quoted matrix shape
for those values is ``r = 4`` rows by ``c = 54`` columns; the analytical
formulas give ``ceil(ln 1/0.1) = 3`` and ``ceil(e/0.05) = 55``, so the
config also accepts explicit ``rows``/``cols`` overrides and the default
constructor pins the paper's 4 x 54 shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sketches.count_min import dims_for


@dataclass(frozen=True)
class RecoveryConfig:
    """Scheduler-side defenses against a lossy/faulty control plane.

    The paper's synchronization protocol (Figure 3) assumes every control
    message is eventually delivered: a single lost :class:`SyncReply`
    strands the scheduler in WAIT_ALL until the next matrices message
    happens to restart the round.  Attaching a ``RecoveryConfig`` to
    :class:`POSGConfig` arms three defenses in
    :class:`~repro.core.scheduler.POSGScheduler`:

    - **sync-round timeout** — after ``sync_timeout`` tuples scheduled in
      WAIT_ALL with replies still missing, the scheduler re-enters
      SEND_ALL and re-issues :class:`~repro.core.messages.SyncRequest`
      messages *only* for the missing instances, tagged with the same
      epoch (so the existing stale-reply dropping discards whichever of
      the original/retransmitted replies arrives second).  The timeout
      grows by ``sync_backoff`` per retry up to ``sync_timeout_max``;
      after ``sync_max_retries`` retransmissions the round is abandoned
      and the deltas that did arrive are folded (partial resync).
    - **staleness watchdog** — in WAIT_ALL/RUN, when any instance's last
      matrices message is older than ``staleness_limit`` tuples the
      scheduler drops that instance's matrices and falls back to
      ROUND_ROBIN until a full matrix set has been re-collected
      (bootstrap rule of Figure 3.B).
    - **C_hat re-bootstrapping** — handled independently of this config:
      a restarted instance bumps the ``generation`` tag on its messages
      and the scheduler re-baselines its estimate (see
      ``POSGScheduler._note_restart``).
    - **matrices rebroadcast** — the instance-side half of the watchdog:
      every ``rebroadcast_windows`` window boundaries without a fresh
      ship, an instance re-sends its last stable ``(F, W)`` pair.  A
      dropped matrices message (or a watchdog fallback that discarded
      one) is thereby repaired without waiting for the matrices to
      re-stabilize from scratch; ``None`` disables the re-send.

    All thresholds are measured in *tuples scheduled* — the scheduler's
    only clock — so the defenses behave identically under the simulator,
    the Storm-like engine and property-based tests.

    ``None`` (the ``POSGConfig`` default) disables every defense and
    keeps the scheduler bit-identical to the paper's protocol.
    """

    #: tuples scheduled in WAIT_ALL before the first retransmission
    sync_timeout: int = 4_096
    #: timeout multiplier per retry (bounded exponential backoff)
    sync_backoff: float = 2.0
    #: upper bound on the per-retry timeout
    sync_timeout_max: int = 65_536
    #: retransmissions before the round is abandoned (partial resync)
    sync_max_retries: int = 8
    #: tuples since an instance's last matrices before the ROUND_ROBIN
    #: fallback; ``None`` disables the watchdog
    staleness_limit: int | None = 262_144
    #: instance window boundaries without a ship before the last stable
    #: matrices are re-sent; ``None`` disables the rebroadcast
    rebroadcast_windows: int | None = 8

    def __post_init__(self) -> None:
        if self.sync_timeout < 1:
            raise ValueError(f"sync_timeout must be >= 1, got {self.sync_timeout}")
        if self.sync_backoff < 1.0:
            raise ValueError(f"sync_backoff must be >= 1, got {self.sync_backoff}")
        if self.sync_timeout_max < self.sync_timeout:
            raise ValueError(
                f"sync_timeout_max ({self.sync_timeout_max}) must be >= "
                f"sync_timeout ({self.sync_timeout})"
            )
        if self.sync_max_retries < 0:
            raise ValueError(
                f"sync_max_retries must be >= 0, got {self.sync_max_retries}"
            )
        if self.staleness_limit is not None and self.staleness_limit < 1:
            raise ValueError(
                f"staleness_limit must be >= 1 or None, got {self.staleness_limit}"
            )
        if self.rebroadcast_windows is not None and self.rebroadcast_windows < 1:
            raise ValueError(
                f"rebroadcast_windows must be >= 1 or None, "
                f"got {self.rebroadcast_windows}"
            )


@dataclass(frozen=True)
class CoordinationConfig:
    """Cross-shard coordination for multi-source (sharded) POSG.

    PR 7's attribution experiment showed that most of the excess latency
    behind the sharded degradation curve ``L(s)/L(1)`` is *staleness
    regret*: each shard re-baselines its ``C_hat`` only at its own sync
    rounds and otherwise routes blind to what its siblings just
    scheduled.  This config arms three composable repairs inside
    :class:`~repro.core.multisource.MultiSourcePOSGGrouping` (they are
    no-ops under ``sources=1`` except for the two-choices probe):

    - **local delta gossip** (``gossip``) — after shard ``j`` routes a
      tuple to instance ``i``, the estimate it just believed is added to
      every sibling shard's ``C_hat[i]``.  Shards share the parent
      process, so the update is a deterministic O(s) array write, not a
      message — but it is *billed* as control traffic (64 bits per
      shard edge) once every ``gossip_stride`` gossiped tuples per
      shard, modelling a batched background digest.  ``gossip_stride=0``
      gossips without billing (free-coordination ablation; routing is
      unchanged because billing never feeds back into decisions).
    - **sync-reply snooping** (``snoop``) — when a completed sync round
      folds into shard ``j``, the freshly re-baselined global
      ``C_hat[op]`` values are published to every sibling whose
      ``generation`` tag for ``op`` matches (a sibling that has not yet
      observed a crash-restart keeps its own baseline).  Piggy-backed on
      the existing reply traffic: zero extra messages, 64 bits billed
      per published value per sibling.
    - **two-choices probe** (``two_choices``) — layer a deterministic
      power-of-two-choices check on the greedy argmin: compare the
      argmin candidate against the alternate ``item mod k`` (bumped by
      one when it collides with the candidate) under the gossip-fresh
      beliefs and keep the cheaper target.  Off by default: with gossip
      keeping beliefs fresh the plain argmin is already near-optimal.
    """

    gossip: bool = True
    #: bill one 64-bit digest per shard edge every N gossiped tuples
    #: per shard; 0 disables billing (never affects routing)
    gossip_stride: int = 16
    snoop: bool = True
    two_choices: bool = False

    def __post_init__(self) -> None:
        if self.gossip_stride < 0:
            raise ValueError(
                f"gossip_stride must be >= 0, got {self.gossip_stride}"
            )


@dataclass(frozen=True)
class POSGConfig:
    """Configuration shared by the POSG scheduler and operator instances.

    Parameters
    ----------
    epsilon:
        Count-Min precision parameter; controls the number of columns
        ``c = ceil(e / epsilon)`` unless ``cols`` is given.
    delta:
        Count-Min failure probability; controls the number of rows
        ``r = ceil(ln 1/delta)`` unless ``rows`` is given.
    window_size:
        ``N`` — number of executed tuples between FSM checks on each
        operator instance (Figure 2).
    mu:
        Stability tolerance on the snapshot relative error (Eq. 1).
    rows, cols:
        Explicit sketch dimensions overriding the analytic sizing.
    merge_matrices:
        How the scheduler treats a newly received ``(F, W)`` pair
        (Figure 3.F says it "updates" its local pair, which is ambiguous
        because the instance *resets* its matrices after shipping):
        ``False`` (default) replaces the stored pair — maximum
        adaptivity, matching the recovery behaviour of Figure 10;
        ``True`` merges the new counters into the stored pair (Count-Min
        sketches are linear), accumulating samples and sharpening
        estimates over time at the cost of slower adaptation.
    pooled_estimates:
        Beyond-paper variance-reduction ablation: estimate a tuple's
        execution time by averaging over *every* instance's matrices
        instead of only the target's.  For uniform instances this removes
        the cross-instance estimate variance that makes the greedy
        scheduler systematically favour under-estimating instances
        (adverse selection); for heterogeneous instances it biases the
        estimate toward the fleet average, so it is off by default.
    merge_decay:
        Beyond-paper aging ablation, only meaningful with
        ``merge_matrices``: before folding a freshly received pair in,
        the stored counters are multiplied by this factor.  ``1.0``
        (default) keeps the full history; values below 1 trade long-run
        estimate sharpness for faster adaptation to load changes
        (bridging the replace/merge trade-off of Figure 10).
    recovery:
        Optional :class:`RecoveryConfig` arming the scheduler's
        fault-tolerance defenses (sync-round retransmission, staleness
        watchdog).  ``None`` (default) keeps the paper's fault-free
        protocol bit for bit.
    coordination:
        Optional :class:`CoordinationConfig` arming cross-shard
        coordination under multi-source scheduling (delta gossip,
        sync-reply snooping, two-choices probe).  ``None`` (default)
        keeps sharded runs bit-identical to the uncoordinated protocol.
    """

    epsilon: float = 0.05
    delta: float = 0.1
    window_size: int = 1024
    mu: float = 0.05
    rows: int | None = None
    cols: int | None = None
    merge_matrices: bool = False
    pooled_estimates: bool = False
    merge_decay: float = 1.0
    recovery: RecoveryConfig | None = None
    coordination: CoordinationConfig | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.epsilon <= 1.0:
            raise ValueError(f"epsilon must be in (0, 1], got {self.epsilon}")
        if not 0.0 < self.delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {self.delta}")
        if self.window_size < 1:
            raise ValueError(f"window_size must be >= 1, got {self.window_size}")
        if self.mu < 0.0:
            raise ValueError(f"mu must be >= 0, got {self.mu}")
        if self.rows is not None and self.rows < 1:
            raise ValueError(f"rows must be >= 1, got {self.rows}")
        if self.cols is not None and self.cols < 1:
            raise ValueError(f"cols must be >= 1, got {self.cols}")
        if not 0.0 <= self.merge_decay <= 1.0:
            raise ValueError(
                f"merge_decay must be in [0, 1], got {self.merge_decay}"
            )

    @property
    def sketch_shape(self) -> tuple[int, int]:
        """Effective ``(rows, cols)`` of the F and W matrices."""
        auto_rows, auto_cols = dims_for(self.epsilon, self.delta)
        return (
            self.rows if self.rows is not None else auto_rows,
            self.cols if self.cols is not None else auto_cols,
        )

    @classmethod
    def paper_defaults(cls) -> "POSGConfig":
        """The exact configuration of Section V-A: N=1024, mu=0.05, r=4, c=54."""
        return cls(epsilon=0.05, delta=0.1, window_size=1024, mu=0.05, rows=4, cols=54)

    def memory_bits(self, stream_length: int, universe_size: int) -> int:
        """Rough per-instance memory footprint in bits (Theorem 3.2).

        Two ``r x c`` matrices of counters of ``log2(m)`` bits plus the hash
        function domain of ``log2(n)`` bits per row.
        """
        rows, cols = self.sketch_shape
        counter_bits = max(1, math.ceil(math.log2(max(2, stream_length))))
        domain_bits = max(1, math.ceil(math.log2(max(2, universe_size))))
        return 2 * rows * cols * counter_bits + rows * domain_bits
