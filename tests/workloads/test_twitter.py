"""Tests for the synthetic Twitter dataset."""

import numpy as np
import pytest

from repro.workloads.twitter import (
    CLASS_MEDIA,
    CLASS_OTHER,
    CLASS_POLITICIAN,
    PAPER_CLASS_TIMES,
    TwitterDatasetSpec,
    assign_entity_classes,
    calibrate_zipf_alpha,
    generate_twitter_stream,
)


class TestCalibration:
    def test_top_probability_reached(self):
        n, target = 35_000, 0.065
        alpha = calibrate_zipf_alpha(n, target)
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** (-alpha)
        top_p = weights[0] / weights.sum()
        assert top_p == pytest.approx(target, rel=1e-3)

    def test_rejects_unreachable_target(self):
        with pytest.raises(ValueError):
            calibrate_zipf_alpha(10, 0.05)  # uniform already gives 0.1

    def test_monotone_in_target(self):
        low = calibrate_zipf_alpha(1000, 0.01)
        high = calibrate_zipf_alpha(1000, 0.2)
        assert high > low


class TestClasses:
    def test_fractions_respected(self):
        spec = TwitterDatasetSpec(n=1000, media_fraction=0.05,
                                  politician_fraction=0.20)
        classes = assign_entity_classes(spec, np.random.default_rng(0))
        assert np.sum(classes == CLASS_MEDIA) == 50
        assert np.sum(classes == CLASS_POLITICIAN) == 200
        assert np.sum(classes == CLASS_OTHER) == 750

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            TwitterDatasetSpec(media_fraction=0.8, politician_fraction=0.5)
        with pytest.raises(ValueError):
            TwitterDatasetSpec(top_probability=1.5)
        with pytest.raises(ValueError):
            TwitterDatasetSpec(m=0)


class TestStream:
    @pytest.fixture(scope="class")
    def stream(self):
        spec = TwitterDatasetSpec(m=20_000, n=2_000, top_probability=0.065)
        return generate_twitter_stream(spec, np.random.default_rng(1))

    def test_length(self, stream):
        assert stream.m == 20_000

    def test_times_are_class_times(self, stream):
        valid = set(PAPER_CLASS_TIMES.values())
        assert set(np.unique(stream.base_times).tolist()) <= valid

    def test_top_entity_frequency_near_paper(self, stream):
        counts = np.bincount(stream.items, minlength=stream.n)
        empirical_top = counts.max() / stream.m
        assert empirical_top == pytest.approx(0.065, rel=0.15)

    def test_label(self, stream):
        assert stream.label == "twitter"

    def test_skew_present(self, stream):
        """The head of the distribution dominates (Zipf-like)."""
        counts = np.bincount(stream.items, minlength=stream.n)
        top_100_share = np.sort(counts)[::-1][:100].sum() / stream.m
        assert top_100_share > 0.4

    def test_deterministic_given_seed(self):
        spec = TwitterDatasetSpec(m=1_000, n=500, top_probability=0.065)
        a = generate_twitter_stream(spec, np.random.default_rng(2))
        b = generate_twitter_stream(spec, np.random.default_rng(2))
        np.testing.assert_array_equal(a.items, b.items)
