"""Tests for stream save/load."""

import numpy as np

from repro.core.grouping import RoundRobinGrouping
from repro.simulator.run import simulate_stream
from repro.workloads.distributions import ZipfItems
from repro.workloads.synthetic import Stream, StreamSpec, generate_stream


class TestStreamPersistence:
    def test_round_trip(self, tmp_path):
        stream = generate_stream(
            ZipfItems(64, 1.0), StreamSpec(m=200, n=64, w_n=8),
            np.random.default_rng(0),
        )
        path = tmp_path / "stream.npz"
        stream.save(path)
        loaded = Stream.load(path)
        np.testing.assert_array_equal(loaded.items, stream.items)
        np.testing.assert_allclose(loaded.base_times, stream.base_times)
        np.testing.assert_allclose(loaded.arrivals, stream.arrivals)
        np.testing.assert_allclose(loaded.time_table, stream.time_table)
        assert loaded.n == stream.n
        assert loaded.label == stream.label

    def test_loaded_stream_simulates_identically(self, tmp_path):
        stream = generate_stream(
            ZipfItems(64, 1.0), StreamSpec(m=500, n=64, w_n=8, k=2),
            np.random.default_rng(1),
        )
        path = tmp_path / "stream.npz"
        stream.save(path)
        loaded = Stream.load(path)
        a = simulate_stream(stream, RoundRobinGrouping(), k=2)
        b = simulate_stream(loaded, RoundRobinGrouping(), k=2)
        np.testing.assert_array_equal(a.stats.assignments, b.stats.assignments)
        np.testing.assert_allclose(a.stats.completions, b.stats.completions)
