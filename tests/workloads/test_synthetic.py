"""Tests for synthetic stream generation."""

import numpy as np
import pytest

from repro.workloads.distributions import UniformItems, ZipfItems
from repro.workloads.synthetic import (
    Stream,
    StreamSpec,
    arrival_times,
    default_stream,
    generate_stream,
)


class TestStreamSpec:
    def test_paper_defaults(self):
        spec = StreamSpec()
        assert spec.m == 32_768
        assert spec.n == 4_096
        assert spec.w_n == 64
        assert spec.k == 5
        assert spec.over_provisioning == 1.0

    @pytest.mark.parametrize("field,value", [
        ("m", 0), ("k", 0), ("over_provisioning", 0.0),
    ])
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            StreamSpec(**{field: value})


class TestArrivalTimes:
    def test_inter_arrival_formula(self):
        # k=5, W=10ms, 100% provisioning -> inter-arrival 2ms
        arrivals = arrival_times(4, k=5, average_time=10.0, over_provisioning=1.0)
        np.testing.assert_allclose(arrivals, [0.0, 2.0, 4.0, 6.0])

    def test_over_provisioned_slower_rate(self):
        fast = arrival_times(10, 5, 10.0, 1.0)
        slow = arrival_times(10, 5, 10.0, 1.15)
        assert slow[-1] > fast[-1]

    def test_undersized_faster_rate(self):
        nominal = arrival_times(10, 5, 10.0, 1.0)
        undersized = arrival_times(10, 5, 10.0, 0.95)
        assert undersized[-1] < nominal[-1]

    def test_zero_average_time(self):
        np.testing.assert_allclose(arrival_times(3, 5, 0.0, 1.0), [0, 0, 0])


class TestGenerateStream:
    def test_shapes(self):
        spec = StreamSpec(m=1000, n=256)
        stream = generate_stream(UniformItems(256), spec, np.random.default_rng(0))
        assert stream.m == 1000
        assert stream.items.shape == (1000,)
        assert stream.base_times.shape == (1000,)
        assert stream.arrivals.shape == (1000,)
        assert stream.n == 256

    def test_times_match_table(self):
        spec = StreamSpec(m=500, n=128, w_n=16)
        stream = generate_stream(UniformItems(128), spec, np.random.default_rng(1))
        np.testing.assert_allclose(
            stream.base_times, stream.time_table[stream.items]
        )

    def test_time_of_oracle(self):
        spec = StreamSpec(m=100, n=64, w_n=8)
        stream = generate_stream(UniformItems(64), spec, np.random.default_rng(2))
        item = int(stream.items[0])
        assert stream.time_of(item) == stream.base_times[0]

    def test_average_time_within_range(self):
        spec = StreamSpec(m=5000, n=256)
        stream = generate_stream(ZipfItems(256, 1.0), spec, np.random.default_rng(3))
        assert 1.0 <= stream.average_time <= 64.0

    def test_arrival_rate_consistent_with_average(self):
        spec = StreamSpec(m=1000, n=256, k=4, over_provisioning=1.0)
        stream = generate_stream(UniformItems(256), spec, np.random.default_rng(4))
        inter = stream.arrivals[1] - stream.arrivals[0]
        assert inter == pytest.approx(stream.average_time / 4)

    def test_different_streams_per_call(self):
        """The paper's 100 streams differ in item-time association."""
        rng = np.random.default_rng(5)
        spec = StreamSpec(m=100, n=256)
        a = generate_stream(UniformItems(256), spec, rng)
        b = generate_stream(UniformItems(256), spec, rng)
        assert not np.array_equal(a.time_table, b.time_table)

    def test_rejects_mismatched_universe(self):
        with pytest.raises(ValueError):
            generate_stream(UniformItems(100), StreamSpec(n=256))

    def test_misaligned_stream_rejected(self):
        with pytest.raises(ValueError):
            Stream(
                items=np.array([1, 2]),
                base_times=np.array([1.0]),
                arrivals=np.array([0.0, 1.0]),
                n=4,
                time_table=np.ones(4),
            )

    def test_label_propagates(self):
        spec = StreamSpec(m=10, n=16, w_n=4)
        stream = generate_stream(ZipfItems(16, 2.0), spec, np.random.default_rng(6))
        assert stream.label == "zipf-2"


class TestDefaultStream:
    def test_paper_shape(self):
        stream = default_stream(seed=0, m=2048)
        assert stream.m == 2048
        assert stream.label == "zipf-1"

    def test_seeded_reproducibility(self):
        a = default_stream(seed=7, m=512)
        b = default_stream(seed=7, m=512)
        np.testing.assert_array_equal(a.items, b.items)
        np.testing.assert_allclose(a.base_times, b.base_times)
