"""Tests for the gradual-drift scenario."""

import numpy as np
import pytest

from repro.core.config import POSGConfig
from repro.core.grouping import POSGGrouping, RoundRobinGrouping
from repro.simulator.run import simulate_stream
from repro.workloads.distributions import ZipfItems
from repro.workloads.nonstationary import DriftScenario
from repro.workloads.synthetic import StreamSpec, generate_stream


class TestDriftScenario:
    def test_validation(self):
        with pytest.raises(ValueError):
            DriftScenario(start=(1.0,), end=(1.0, 2.0), duration=10)
        with pytest.raises(ValueError):
            DriftScenario(start=(), end=(), duration=10)
        with pytest.raises(ValueError):
            DriftScenario(start=(1.0,), end=(1.0,), duration=0)
        with pytest.raises(ValueError):
            DriftScenario(start=(0.0,), end=(1.0,), duration=10)

    def test_linear_interpolation(self):
        scenario = DriftScenario(start=(1.0,), end=(3.0,), duration=100)
        assert scenario.multiplier(0, 0) == pytest.approx(1.0)
        assert scenario.multiplier(0, 50) == pytest.approx(2.0)
        assert scenario.multiplier(0, 100) == pytest.approx(3.0)

    def test_clamps_after_duration(self):
        scenario = DriftScenario(start=(1.0,), end=(2.0,), duration=10)
        assert scenario.multiplier(0, 1000) == pytest.approx(2.0)

    def test_k(self):
        assert DriftScenario(start=(1.0, 1.0), end=(2.0, 0.5), duration=5).k == 2

    def test_simulator_accepts_drift(self):
        """POSG keeps beating RR even under continuous drift — the
        stability gate keeps re-checking, but sketches track the moving
        mixture well enough."""
        k = 4
        scenario = DriftScenario(
            start=(1.5, 1.2, 0.8, 0.6),
            end=(0.6, 0.8, 1.2, 1.5),
            duration=16_000,
        )
        stream = generate_stream(
            ZipfItems(512, 1.2), StreamSpec(m=16_384, n=512, k=k),
            np.random.default_rng(0),
        )
        rr = simulate_stream(stream, RoundRobinGrouping(), k=k,
                             scenario=scenario)
        posg = simulate_stream(
            stream,
            POSGGrouping(POSGConfig(window_size=64, rows=4, cols=54,
                                    merge_matrices=True, merge_decay=0.5)),
            k=k, scenario=scenario, rng=np.random.default_rng(1),
        )
        assert (posg.stats.average_completion_time
                < rr.stats.average_completion_time)
