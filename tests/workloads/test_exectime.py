"""Tests for the execution-time models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.exectime import (
    ClassBasedTimeModel,
    ExecutionTimeModel,
    Spacing,
    execution_time_values,
)


class TestValues:
    def test_paper_defaults_are_one_to_sixtyfour(self):
        values = execution_time_values(64, 1.0, 64.0)
        np.testing.assert_allclose(values, np.arange(1, 65, dtype=float))

    def test_single_value(self):
        np.testing.assert_allclose(execution_time_values(1, 3.0, 64.0), [3.0])

    def test_two_values_are_extremes(self):
        np.testing.assert_allclose(execution_time_values(2, 1.0, 64.0), [1.0, 64.0])

    def test_geometric_spacing(self):
        values = execution_time_values(7, 1.0, 64.0, Spacing.GEOMETRIC)
        np.testing.assert_allclose(values, [1, 2, 4, 8, 16, 32, 64])

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            execution_time_values(4, 10.0, 5.0)
        with pytest.raises(ValueError):
            execution_time_values(4, 0.0, 5.0)

    def test_rejects_bad_wn(self):
        with pytest.raises(ValueError):
            execution_time_values(0, 1.0, 64.0)


class TestExecutionTimeModel:
    def test_every_item_has_a_valid_time(self):
        model = ExecutionTimeModel(n=256, w_n=64, rng=np.random.default_rng(0))
        valid = set(model.values.tolist())
        for item in range(256):
            assert model.time_of(item) in valid

    def test_values_used_evenly(self):
        """Each of the w_n values is assigned n/w_n items (Section V-A)."""
        model = ExecutionTimeModel(n=256, w_n=64, rng=np.random.default_rng(1))
        table = model.table()
        counts = {v: int(np.sum(table == v)) for v in model.values}
        assert all(count == 4 for count in counts.values())

    def test_uneven_split_spreads_remainder(self):
        model = ExecutionTimeModel(n=10, w_n=3, rng=np.random.default_rng(2))
        table = model.table()
        counts = sorted(int(np.sum(table == v)) for v in model.values)
        assert counts == [3, 3, 4]

    def test_association_randomized_per_seed(self):
        a = ExecutionTimeModel(n=256, w_n=64, rng=np.random.default_rng(1)).table()
        b = ExecutionTimeModel(n=256, w_n=64, rng=np.random.default_rng(2)).table()
        assert not np.array_equal(a, b)

    def test_times_of_vectorized(self):
        model = ExecutionTimeModel(n=64, w_n=8, rng=np.random.default_rng(3))
        items = np.array([0, 5, 63])
        np.testing.assert_allclose(
            model.times_of(items), [model.time_of(int(i)) for i in items]
        )

    def test_average_time(self):
        model = ExecutionTimeModel(n=4, w_n=2, w_min=1.0, w_max=3.0,
                                   rng=np.random.default_rng(4))
        uniform = np.full(4, 0.25)
        assert model.average_time(uniform) == pytest.approx(2.0)

    def test_average_time_rejects_bad_shape(self):
        model = ExecutionTimeModel(n=4, w_n=2, rng=np.random.default_rng(4))
        with pytest.raises(ValueError):
            model.average_time(np.ones(3) / 3)

    def test_rejects_wn_above_n(self):
        with pytest.raises(ValueError):
            ExecutionTimeModel(n=4, w_n=8)

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_times_always_within_range(self, w_n):
        model = ExecutionTimeModel(
            n=64, w_n=w_n, w_min=1.0, w_max=64.0, rng=np.random.default_rng(w_n)
        )
        table = model.table()
        assert table.min() >= 1.0
        assert table.max() <= 64.0


class TestClassBasedTimeModel:
    def test_lookup(self):
        classes = np.array([0, 1, 2, 1])
        model = ClassBasedTimeModel(classes, {0: 25.0, 1: 5.0, 2: 1.0})
        assert model.time_of(0) == 25.0
        assert model.time_of(1) == 5.0
        assert model.time_of(2) == 1.0
        assert model.class_of(3) == 1

    def test_vectorized(self):
        classes = np.array([0, 1, 2])
        model = ClassBasedTimeModel(classes, {0: 25.0, 1: 5.0, 2: 1.0})
        np.testing.assert_allclose(model.times_of(np.array([2, 0])), [1.0, 25.0])

    def test_rejects_missing_class_time(self):
        with pytest.raises(ValueError):
            ClassBasedTimeModel(np.array([0, 1]), {0: 25.0})

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            ClassBasedTimeModel(np.array([0]), {0: -1.0})

    def test_n(self):
        model = ClassBasedTimeModel(np.array([0, 0, 0]), {0: 1.0})
        assert model.n == 3
