"""Tests for the arrival processes (constant and Poisson)."""

import numpy as np
import pytest

from repro.workloads.distributions import UniformItems
from repro.workloads.synthetic import StreamSpec, arrival_times, generate_stream


class TestPoissonArrivals:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            StreamSpec(arrival_process="bursty")

    def test_unknown_process_rejected(self):
        with pytest.raises(ValueError):
            arrival_times(10, 2, 1.0, 1.0, process="weird")

    def test_monotone_nondecreasing(self):
        arrivals = arrival_times(
            1000, 5, 30.0, 1.0, process="poisson",
            rng=np.random.default_rng(0),
        )
        assert np.all(np.diff(arrivals) >= 0)
        assert arrivals[0] == 0.0

    def test_mean_rate_matches_constant(self):
        constant = arrival_times(50_000, 5, 30.0, 1.0)
        poisson = arrival_times(
            50_000, 5, 30.0, 1.0, process="poisson",
            rng=np.random.default_rng(1),
        )
        # same mean inter-arrival within Monte-Carlo tolerance
        assert poisson[-1] == pytest.approx(constant[-1], rel=0.05)

    def test_deterministic_given_seed(self):
        a = arrival_times(100, 2, 1.0, 1.0, "poisson", np.random.default_rng(3))
        b = arrival_times(100, 2, 1.0, 1.0, "poisson", np.random.default_rng(3))
        np.testing.assert_allclose(a, b)

    def test_generate_stream_with_poisson(self):
        spec = StreamSpec(m=500, n=32, w_n=4, arrival_process="poisson")
        stream = generate_stream(UniformItems(32), spec, np.random.default_rng(4))
        assert np.all(np.diff(stream.arrivals) >= 0)
        # inter-arrivals vary (not the constant process)
        gaps = np.diff(stream.arrivals)
        assert gaps.std() > 0

    def test_poisson_queues_harder_than_constant(self):
        """Burstiness increases queueing at equal load (Kingman)."""
        from repro.core.grouping import RoundRobinGrouping
        from repro.simulator.run import simulate_stream

        ls = {}
        for process in ("constant", "poisson"):
            spec = StreamSpec(m=8192, n=256, k=3, arrival_process=process)
            stream = generate_stream(
                UniformItems(256), spec, np.random.default_rng(5)
            )
            result = simulate_stream(stream, RoundRobinGrouping(), k=3)
            ls[process] = result.stats.average_completion_time
        assert ls["poisson"] > ls["constant"]
