"""Tests for the item-frequency distributions."""

import numpy as np
import pytest

from repro.workloads.distributions import (
    UniformItems,
    ZipfItems,
    paper_distributions,
)


class TestUniform:
    def test_probabilities_sum_to_one(self):
        assert UniformItems(100).probabilities().sum() == pytest.approx(1.0)

    def test_all_equal(self):
        probs = UniformItems(10).probabilities()
        assert np.allclose(probs, 0.1)

    def test_sample_range(self):
        items = UniformItems(50).sample(1000, np.random.default_rng(0))
        assert items.min() >= 0
        assert items.max() < 50

    def test_sample_deterministic(self):
        d = UniformItems(50)
        a = d.sample(100, np.random.default_rng(3))
        b = d.sample(100, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            UniformItems(0)

    def test_rejects_negative_m(self):
        with pytest.raises(ValueError):
            UniformItems(5).sample(-1, np.random.default_rng(0))

    def test_label(self):
        assert UniformItems(5).label == "uniform"


class TestZipf:
    def test_probabilities_sum_to_one(self):
        assert ZipfItems(4096, 1.0).probabilities().sum() == pytest.approx(1.0)

    def test_probabilities_decreasing(self):
        probs = ZipfItems(100, 1.5).probabilities()
        assert np.all(np.diff(probs) <= 0)

    def test_alpha_zero_is_uniform(self):
        probs = ZipfItems(10, 0.0).probabilities()
        assert np.allclose(probs, 0.1)

    def test_higher_alpha_more_skew(self):
        light = ZipfItems(100, 0.5).probabilities()[0]
        heavy = ZipfItems(100, 3.0).probabilities()[0]
        assert heavy > light

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            ZipfItems(10, -1.0)

    def test_label(self):
        assert ZipfItems(10, 1.5).label == "zipf-1.5"
        assert ZipfItems(10, 1.0).label == "zipf-1"

    def test_empirical_frequency_matches_law(self):
        dist = ZipfItems(50, 1.0)
        items = dist.sample(50_000, np.random.default_rng(1))
        empirical_top = np.mean(items == 0)
        assert empirical_top == pytest.approx(dist.probabilities()[0], rel=0.1)


class TestPaperSet:
    def test_seven_distributions(self):
        dists = paper_distributions()
        assert len(dists) == 7
        assert dists[0].label == "uniform"
        assert [d.label for d in dists[1:]] == [
            "zipf-0.5", "zipf-1", "zipf-1.5", "zipf-2", "zipf-2.5", "zipf-3",
        ]

    def test_default_universe(self):
        assert all(d.n == 4096 for d in paper_distributions())
