"""Tests for the non-stationary load scenarios."""

import pytest

from repro.workloads.nonstationary import (
    PAPER_PHASE1,
    PAPER_PHASE2,
    LoadShiftScenario,
)


class TestValidation:
    def test_rejects_empty_phases(self):
        with pytest.raises(ValueError):
            LoadShiftScenario(phases=(), boundaries=())

    def test_rejects_wrong_boundary_count(self):
        with pytest.raises(ValueError):
            LoadShiftScenario(phases=((1.0,), (2.0,)), boundaries=())

    def test_rejects_unsorted_boundaries(self):
        with pytest.raises(ValueError):
            LoadShiftScenario(
                phases=((1.0,), (2.0,), (3.0,)), boundaries=(10, 5)
            )

    def test_rejects_mismatched_k(self):
        with pytest.raises(ValueError):
            LoadShiftScenario(phases=((1.0, 1.0), (1.0,)), boundaries=(5,))

    def test_rejects_nonpositive_multiplier(self):
        with pytest.raises(ValueError):
            LoadShiftScenario(phases=((0.0, 1.0),), boundaries=())


class TestPhases:
    def test_paper_scenario(self):
        scenario = LoadShiftScenario.paper_figure10(m=150_000)
        assert scenario.k == 5
        assert scenario.multiplier(0, 0) == PAPER_PHASE1[0]
        assert scenario.multiplier(0, 74_999) == PAPER_PHASE1[0]
        assert scenario.multiplier(0, 75_000) == PAPER_PHASE2[0]
        assert scenario.multiplier(4, 149_999) == PAPER_PHASE2[4]

    def test_phase_of(self):
        scenario = LoadShiftScenario(
            phases=((1.0,), (2.0,), (3.0,)), boundaries=(10, 20)
        )
        assert scenario.phase_of(0) == 0
        assert scenario.phase_of(9) == 0
        assert scenario.phase_of(10) == 1
        assert scenario.phase_of(19) == 1
        assert scenario.phase_of(20) == 2

    def test_constant_uniform(self):
        scenario = LoadShiftScenario.constant(3)
        assert scenario.k == 3
        assert all(scenario.multiplier(i, 1000) == 1.0 for i in range(3))

    def test_constant_heterogeneous(self):
        scenario = LoadShiftScenario.constant(2, (1.0, 2.0))
        assert scenario.multiplier(1, 0) == 2.0
