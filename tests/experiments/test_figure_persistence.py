"""Tests for FigureResult JSON persistence and the CLI --output flag."""

import json

from repro.experiments.cli import main
from repro.experiments.figures import FigureResult


class TestFigureResultPersistence:
    def test_round_trip(self, tmp_path):
        result = FigureResult(
            name="figureX", description="demo", columns=["a", "b"],
            rows=[{"a": 1, "b": 2.5}], notes=["hello"],
        )
        path = tmp_path / "fig.json"
        result.save(path)
        loaded = FigureResult.load(path)
        assert loaded == result

    def test_json_is_plain(self, tmp_path):
        result = FigureResult(name="f", description="d", columns=["x"],
                              rows=[{"x": 1.0}])
        path = tmp_path / "f.json"
        result.save(path)
        payload = json.loads(path.read_text())
        assert payload["rows"] == [{"x": 1.0}]


class TestCliOutput:
    def test_output_directory(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_REPS", raising=False)
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        code = main([
            "figure5", "--reps", "1", "--scale", "0.03125",
            "--output", str(tmp_path / "results"),
        ])
        assert code == 0
        saved = tmp_path / "results" / "figure5.json"
        assert saved.exists()
        loaded = FigureResult.load(saved)
        assert loaded.name == "figure5"
        assert loaded.rows
