"""Smoke test for the chaos experiment (fault-injected POSG run)."""

import json

from repro.experiments.cli import main


class TestChaosExperiment:
    def test_runs_recovers_and_writes_artifacts(self, tmp_path, capsys):
        # --scale below the floor still clamps to the minimum stream that
        # leaves a restarted instance room to re-stabilize
        code = main(["chaos", "--scale", "0.01", "--output", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "degradation" in out
        assert "recovered=True" in out

        report = json.loads((tmp_path / "report.json").read_text())
        assert report["schema"] == "posg-run-report/v4"
        assert report["faults"] is not None
        assert report["faults"]["injected"]["crashes"] == 1
        assert sum(report["faults"]["injected"]["dropped"].values()) > 0
        assert report["speedup_vs_baseline"] > 0

        # v3: the estimator audit splits at the crash, quality is present
        assert report["audit"]["samples"] > 0
        segments = report["audit"]["segments"]
        assert len(segments) == 2
        assert segments[0]["samples"] > 0 and segments[1]["samples"] > 0
        assert "estimator audit" in out and "before crash" in out
        quality = report["quality"]
        assert quality["makespan"]["achieved_vs_oracle"] >= 1.0
        assert 0.0 <= quality["regret"]["misroute_fraction"] <= 1.0

        prom = (tmp_path / "metrics.prom").read_text()
        assert "posg_fault_" in prom
        assert "posg_scheduler_sync_retransmits_total" in prom
        trace = (tmp_path / "trace.jsonl").read_text()
        assert "fault_" in trace

    def test_listed_in_cli(self, capsys):
        assert main(["list"]) == 0
        assert "chaos" in capsys.readouterr().out
