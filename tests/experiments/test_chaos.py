"""Smoke test for the chaos experiment (fault-injected POSG run)."""

import json

from repro.experiments.cli import main


class TestChaosExperiment:
    def test_runs_recovers_and_writes_artifacts(self, tmp_path, capsys):
        # --scale below the floor still clamps to the minimum stream that
        # leaves a restarted instance room to re-stabilize
        code = main(["chaos", "--scale", "0.01", "--output", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "degradation" in out
        assert "recovered=True" in out

        report = json.loads((tmp_path / "report.json").read_text())
        assert report["schema"] == "posg-run-report/v6"
        assert report["faults"] is not None
        assert report["faults"]["injected"]["crashes"] == 1
        assert sum(report["faults"]["injected"]["dropped"].values()) > 0
        assert report["speedup_vs_baseline"] > 0

        # v3: the estimator audit splits at the crash, quality is present
        assert report["audit"]["samples"] > 0
        segments = report["audit"]["segments"]
        assert len(segments) == 2
        assert segments[0]["samples"] > 0 and segments[1]["samples"] > 0
        assert "estimator audit" in out and "before crash" in out
        quality = report["quality"]
        assert quality["makespan"]["achieved_vs_oracle"] >= 1.0
        assert 0.0 <= quality["regret"]["misroute_fraction"] <= 1.0

        prom = (tmp_path / "metrics.prom").read_text()
        assert "posg_fault_" in prom
        assert "posg_scheduler_sync_retransmits_total" in prom
        trace = (tmp_path / "trace.jsonl").read_text()
        assert "fault_" in trace

    def test_listed_in_cli(self, capsys):
        assert main(["list"]) == 0
        assert "chaos" in capsys.readouterr().out


class TestChaosParallelExperiment:
    def test_runs_heals_and_writes_recovery_report(self, tmp_path, capsys):
        code = main(
            ["chaos", "--parallel", "2", "--scale", "0.01",
             "--output", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "gate: bit-identical to sequential engine = True" in out
        assert "gate: fully recovered via respawn-replay = True" in out

        recovery = json.loads((tmp_path / "recovery_report.json").read_text())
        assert recovery["schema"] == "posg-recovery-report/v1"
        assert recovery["gates"]["bit_identical"] is True
        assert recovery["gates"]["recovered"] is True
        supervision = recovery["supervision"]
        assert supervision["crashes_detected"] >= 1
        assert supervision["hangs_detected"] >= 1
        assert supervision["respawns_total"] >= 2
        assert supervision["degraded_workers"] == []
        kinds = [event["event"] for event in supervision["lifecycle"]]
        assert "worker_crash_detected" in kinds
        assert "worker_respawned" in kinds
        assert recovery["timing_seconds"]["recovery_overhead"] is not None

        report = json.loads((tmp_path / "report.json").read_text())
        assert report["schema"] == "posg-run-report/v6"
        assert report["supervision"]["recovered"] is True
        assert report["faults"]["injected"]["worker_faults"]["crash"] == 1
        assert report["faults"]["injected"]["worker_faults"]["hang"] == 1
        assert report["faults"]["injected"]["worker_respawns"] == 2

        trace = (tmp_path / "trace.jsonl").read_text()
        assert "fault_worker" in trace
        assert "worker_respawn" in trace
