"""Tests for the experiment runner."""

import numpy as np
import pytest

from repro.core.config import POSGConfig
from repro.experiments.runner import (
    ExperimentSettings,
    compare_policies,
    env_reps,
    env_scale,
)
from repro.workloads.distributions import ZipfItems
from repro.workloads.synthetic import StreamSpec, generate_stream


def tiny_settings(reps=2):
    return ExperimentSettings(
        k=2, reps=reps, base_seed=5,
        posg_config=POSGConfig(window_size=32, rows=2, cols=16),
    )


def stream_factory(rng):
    spec = StreamSpec(m=512, n=64, w_n=8, k=2)
    return generate_stream(ZipfItems(64, 1.0), spec, rng)


class TestEnv:
    def test_env_reps_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPS", raising=False)
        assert env_reps(7) == 7

    def test_env_reps_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPS", "3")
        assert env_reps(7) == 3

    def test_env_reps_rejects_zero(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPS", "0")
        with pytest.raises(ValueError):
            env_reps()

    def test_env_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert env_scale() == 1.0

    def test_env_scale_rejects_negative(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            env_scale()


class TestComparePolicies:
    def test_all_policies_run(self):
        outcomes = compare_policies(stream_factory, tiny_settings())
        assert set(outcomes) == {"round_robin", "posg", "full_knowledge"}
        for outcome in outcomes.values():
            assert len(outcome.completion_times) == 2
            assert len(outcome.speedups) == 2

    def test_round_robin_speedup_is_one(self):
        outcomes = compare_policies(stream_factory, tiny_settings())
        assert all(s == pytest.approx(1.0) for s in outcomes["round_robin"].speedups)

    def test_summaries(self):
        outcomes = compare_policies(stream_factory, tiny_settings(reps=3))
        summary = outcomes["posg"].summary()
        assert summary["min"] <= summary["mean"] <= summary["max"]
        speedup = outcomes["posg"].speedup_summary()
        assert speedup["min"] <= speedup["mean"] <= speedup["max"]

    def test_deterministic_given_settings(self):
        a = compare_policies(stream_factory, tiny_settings())
        b = compare_policies(stream_factory, tiny_settings())
        assert a["posg"].completion_times == b["posg"].completion_times

    def test_full_knowledge_wins(self):
        outcomes = compare_policies(stream_factory, tiny_settings(reps=3))
        fk = outcomes["full_knowledge"].summary()["mean"]
        rr = outcomes["round_robin"].summary()["mean"]
        assert fk < rr
