"""Tests for the ASCII plot renderer."""

import math

import pytest

from repro.experiments.figures import FigureResult
from repro.experiments.plotting import ascii_plot, plot_figure


class TestAsciiPlot:
    def test_basic_render(self):
        plot = ascii_plot({"line": [0.0, 1.0, 2.0, 3.0]}, title="t",
                          y_label="y")
        assert "t" in plot
        assert "legend: * line" in plot
        assert "*" in plot

    def test_extremes_on_correct_rows(self):
        plot = ascii_plot({"a": [0.0, 10.0]}, height=5, width=10)
        lines = plot.splitlines()
        assert "*" in lines[0]      # max on top row
        assert "*" in lines[4]      # min on bottom row

    def test_multiple_series_distinct_markers(self):
        plot = ascii_plot({"a": [0.0, 1.0], "b": [1.0, 0.0]})
        assert "* a" in plot
        assert "+ b" in plot

    def test_nan_skipped(self):
        plot = ascii_plot({"a": [0.0, math.nan, 2.0]})
        assert plot  # renders without error

    def test_constant_series(self):
        plot = ascii_plot({"flat": [5.0, 5.0, 5.0]})
        assert "*" in plot

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"a": [1.0], "b": [1.0, 2.0]})
        with pytest.raises(ValueError):
            ascii_plot({"a": []})
        with pytest.raises(ValueError):
            ascii_plot({"a": [1.0]}, width=2)
        with pytest.raises(ValueError):
            ascii_plot({"a": [math.nan]})
        with pytest.raises(ValueError):
            ascii_plot({"a": [1.0, 2.0]}, x=[0.0])


class TestPlotFigure:
    def test_time_series_figure(self):
        result = FigureResult(
            name="figure10", description="d",
            columns=["index", "posg_mean", "rr_mean"],
            rows=[{"index": i, "posg_mean": float(i), "rr_mean": 2.0 * i}
                  for i in range(10)],
        )
        plot = plot_figure(result)
        assert "posg_mean" in plot
        assert "rr_mean" in plot

    def test_policy_sweep_figure(self):
        result = FigureResult(
            name="figure4", description="d",
            columns=["distribution", "policy", "min", "mean", "max"],
            rows=[
                {"distribution": d, "policy": p, "min": 1.0, "mean": 2.0,
                 "max": 3.0}
                for d in ("uniform", "zipf-1")
                for p in ("posg", "round_robin")
            ],
        )
        plot = plot_figure(result)
        assert "posg" in plot
        assert "round_robin" in plot

    def test_min_mean_max_figure(self):
        result = FigureResult(
            name="figure5", description="d",
            columns=["over_provisioning", "min", "mean", "max"],
            rows=[{"over_provisioning": 1.0, "min": 0.9, "mean": 1.0,
                   "max": 1.1},
                  {"over_provisioning": 1.1, "min": 0.8, "mean": 0.9,
                   "max": 1.0}],
        )
        plot = plot_figure(result)
        assert "mean" in plot

    def test_empty_rows(self):
        result = FigureResult(name="x", description="d", columns=["a"])
        assert plot_figure(result) == "(no rows to plot)"
