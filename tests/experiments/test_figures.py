"""Structural tests for the figure harness (tiny scale: shapes of the
output, not of the science — the benchmarks assert the science)."""

import numpy as np
import pytest

from repro.core.config import POSGConfig
from repro.experiments.figures import (
    figure4_distributions,
    figure5_overprovisioning,
    figure8_instances,
    figure9_epsilon,
    figure10_timeseries,
    figure11_prototype_timeseries,
    figure12_twitter,
)
from repro.experiments.runner import ExperimentSettings


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_REPS", "2")
    monkeypatch.setenv("REPRO_SCALE", "0.03125")  # m = 1024 everywhere


def tiny_settings(k=2):
    return ExperimentSettings(
        k=k, reps=2, base_seed=3,
        posg_config=POSGConfig(window_size=32, rows=2, cols=16),
    )


class TestSweepFigures:
    def test_figure4_structure(self):
        result = figure4_distributions(tiny_settings())
        assert result.name == "figure4"
        # 7 distributions x 3 policies
        assert len(result.rows) == 21
        assert {row["policy"] for row in result.rows} == {
            "round_robin", "posg", "full_knowledge"
        }

    def test_figure5_structure(self):
        result = figure5_overprovisioning(
            tiny_settings(), percentages=(0.95, 1.0, 1.05)
        )
        assert [row["over_provisioning"] for row in result.rows] == [0.95, 1.0, 1.05]
        assert all("mean" in row for row in result.rows)

    def test_figure8_structure(self):
        result = figure8_instances(tiny_settings(), instance_counts=(1, 2))
        assert [row["k"] for row in result.rows] == [1, 2]
        # k=1: speedup must be ~1 even at tiny scale
        assert result.rows[0]["mean"] == pytest.approx(1.0, abs=0.02)

    def test_figure9_structure(self):
        result = figure9_epsilon(tiny_settings(), epsilons=(0.05, 1.0))
        assert [row["epsilon"] for row in result.rows] == [0.05, 1.0]
        assert result.rows[0]["cols"] == 55
        assert result.rows[1]["cols"] == 3


class TestTimeSeriesFigures:
    def test_figure10_structure(self):
        result = figure10_timeseries(
            m=4096, k=2, bin_size=512,
            posg_config=POSGConfig(window_size=64, rows=2, cols=16),
        )
        assert len(result.rows) == 8
        assert any("entered RUN" in note for note in result.notes)
        for row in result.rows:
            assert row["posg_min"] <= row["posg_mean"] <= row["posg_max"]

    def test_figure11_structure(self):
        result = figure11_prototype_timeseries(
            m=4096, k=2, bin_size=1024,
            posg_config=POSGConfig(window_size=64, rows=2, cols=16),
        )
        assert len(result.rows) == 4
        assert any(note.startswith("POSG timeouts") for note in result.notes)
        assert any(note.startswith("ASSG timeouts") for note in result.notes)

    def test_figure12_structure(self):
        result = figure12_twitter(
            instance_counts=(1, 2), m=2000,
            posg_config=POSGConfig(window_size=64, rows=2, cols=16),
        )
        assert [row["k"] for row in result.rows] == [1, 2]
        for row in result.rows:
            assert row["posg_L"] > 0
            assert row["assg_L"] > 0
