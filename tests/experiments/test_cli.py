"""Tests for the experiments CLI."""

import pytest

from repro.experiments.cli import FIGURES, build_parser, main


class TestParser:
    def test_figure_choices(self):
        parser = build_parser()
        args = parser.parse_args(["figure4", "--reps", "2"])
        assert args.figure == "figure4"
        assert args.reps == 2

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure99"])

    def test_all_nine_figures_registered(self):
        assert len(FIGURES) == 9
        assert set(FIGURES) == {f"figure{i}" for i in range(4, 13)}


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out

    def test_runs_one_figure_tiny(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_REPS", raising=False)
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        code = main(["figure5", "--reps", "1", "--scale", "0.03125"])
        assert code == 0
        out = capsys.readouterr().out
        assert "figure5" in out
        assert "over_provisioning" in out

    def test_env_propagation(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_REPS", raising=False)
        main(["figure5", "--reps", "1", "--scale", "0.03125"])
        import os
        assert os.environ["REPRO_REPS"] == "1"
