"""Smoke tests for the attribution experiment (flight-recorder sweep)."""

import json

from repro.experiments.attribution import run
from repro.experiments.cli import main


class TestAttributionExperiment:
    def test_runs_and_writes_artifacts(self, tmp_path, capsys):
        # two sweep points keep the three-engine matrix fast; --scale
        # below the floor clamps to the minimum stream length
        code = run(
            scale=0.01,
            output=str(tmp_path),
            source_counts=(1, 2),
            workers=2,
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "timelines bit-identical across reference/chunked/parallel" in out
        assert "shard lanes" in out  # the ANSI timeline rendering

        payload = json.loads((tmp_path / "attribution.json").read_text())
        assert [row["sources"] for row in payload["curve"]] == [1, 2]
        for row in payload["curve"]:
            assert row["timelines_identical"] is True
            regret = row["attribution"]["regret"]
            # the buckets partition the replayed regret (up to float
            # accumulation order)
            bucket_sum = (
                regret["collision_ms"]
                + regret["stale_ms"]
                + regret["residual_ms"]
            )
            assert abs(regret["total_ms"] - bucket_sum) <= 1e-6 * max(
                1.0, regret["total_ms"]
            )
            # ...and the excess split mirrors the bucket shares
            split = row["excess_split_ms"]
            assert abs(
                sum(split.values()) - row["excess_ms"]
            ) <= 1e-6 * max(1.0, abs(row["excess_ms"]))
        assert payload["curve"][0]["degradation"] == 1.0

        html = (tmp_path / "attribution.html").read_text()
        assert "Flight recorder" in html

    def test_listed_in_cli(self, capsys):
        assert main(["list"]) == 0
        assert "attribution" in capsys.readouterr().out
