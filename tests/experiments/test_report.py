"""Tests for the ASCII report renderer."""

from repro.experiments.figures import FigureResult
from repro.experiments.report import format_table, render_figure


class TestFormatTable:
    def test_empty(self):
        assert format_table([], ["a"]) == "(no rows)"

    def test_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 100, "b": 0.125}]
        table = format_table(rows, ["a", "b"])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("b")
        assert "100" in lines[3]
        assert "0.12" in lines[3]  # floats rendered at 2 decimals

    def test_missing_cell_blank(self):
        table = format_table([{"a": 1}], ["a", "b"])
        assert table.splitlines()[2].strip().startswith("1")


class TestRenderFigure:
    def test_includes_notes(self):
        result = FigureResult(
            name="fig", description="desc", columns=["x"],
            rows=[{"x": 1}], notes=["hello"],
        )
        text = render_figure(result)
        assert "== fig: desc ==" in text
        assert "note: hello" in text
        assert "1" in text
