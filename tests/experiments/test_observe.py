"""Smoke tests for the observe experiment (the quality observatory)."""

import json

from repro.experiments.cli import main


class TestObserveExperiment:
    def test_runs_and_writes_artifacts(self, tmp_path, capsys):
        # --scale below the floor clamps to the minimum observable stream
        code = main(["observe", "--scale", "0.01", "--output", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "posg observe" in out  # the static dashboard frame
        assert "estimator audit" in out

        report = json.loads((tmp_path / "quality_report.json").read_text())
        assert report["schema"] == "posg-run-report/v6"
        assert report["policy"] == "posg"

        audit = report["audit"]
        assert audit["samples"] > 0
        assert audit["theorem43"]["all_markov_hold"] is True
        assert audit["abs_error_quantiles_ms"]["p50"] is not None

        quality = report["quality"]
        assert quality["makespan"]["achieved_vs_oracle"] >= 1.0
        assert quality["makespan"]["theorem42_holds"] is True
        assert 0.0 <= quality["regret"]["misroute_fraction"] <= 1.0

        html = (tmp_path / "quality_report.html").read_text()
        assert "Decision quality" in html
        assert "Estimator audit" in html

        prom = (tmp_path / "metrics.prom").read_text()
        assert "posg_estimator_samples_total" in prom
        assert "posg_quality_achieved_makespan_ms" in prom

        profile = json.loads((tmp_path / "profile.json").read_text())
        names = {span["name"] for span in profile["spans"]}
        assert {"simulate", "route", "estimate"} <= names
        flame = (tmp_path / "flamegraph.txt").read_text()
        assert flame.splitlines()[0].startswith("simulate")

    def test_reproducible_audit(self, tmp_path, capsys):
        for run in ("a", "b"):
            assert main([
                "observe", "--scale", "0.01",
                "--output", str(tmp_path / run),
            ]) == 0
        capsys.readouterr()  # drain
        first = json.loads((tmp_path / "a" / "quality_report.json").read_text())
        second = json.loads((tmp_path / "b" / "quality_report.json").read_text())
        assert first["audit"] == second["audit"]
        assert first["quality"] == second["quality"]

    def test_listed_in_cli(self, capsys):
        assert main(["list"]) == 0
        assert "observe" in capsys.readouterr().out
