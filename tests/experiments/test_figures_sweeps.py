"""Structural tests for the remaining sweep figures (6 and 7)."""

import pytest

from repro.core.config import POSGConfig
from repro.experiments.figures import figure6_wmax, figure7_wn
from repro.experiments.runner import ExperimentSettings


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_REPS", "1")
    monkeypatch.setenv("REPRO_SCALE", "0.03125")


def tiny_settings():
    return ExperimentSettings(
        k=2, reps=1, base_seed=3,
        posg_config=POSGConfig(window_size=32, rows=2, cols=16),
    )


class TestFigure6:
    def test_structure(self):
        result = figure6_wmax(tiny_settings(), w_max_values=(2, 64))
        assert result.name == "figure6"
        assert len(result.rows) == 4  # 2 sweep points x 2 policies
        assert {row["policy"] for row in result.rows} == {"round_robin", "posg"}

    def test_wn_clamped_to_wmax(self):
        """w_n cannot exceed the number of integer values in the range."""
        result = figure6_wmax(tiny_settings(), w_max_values=(2,))
        assert result.rows  # would raise inside if w_n > n of values

    def test_rr_speedup_is_one(self):
        result = figure6_wmax(tiny_settings(), w_max_values=(8,))
        rr_row = next(r for r in result.rows if r["policy"] == "round_robin")
        assert rr_row["speedup_mean"] == 1.0


class TestFigure7:
    def test_structure(self):
        result = figure7_wn(tiny_settings(), w_n_values=(2, 16))
        assert result.name == "figure7"
        assert [row["w_n"] for row in result.rows] == [2, 2, 16, 16]

    def test_summaries_ordered(self):
        result = figure7_wn(tiny_settings(), w_n_values=(4,))
        for row in result.rows:
            assert row["min"] <= row["mean"] <= row["max"]
