"""Prometheus 0.0.4 text-exposition lint over every emitted metrics.prom.

A pure-python validator (no prometheus client dependency) enforcing the
format rules of exposition version 0.0.4:

- sample lines parse as ``name{labels} value`` with legal metric and
  label names and properly escaped label values;
- ``# TYPE`` appears at most once per metric, *before* the metric's
  first sample, with a legal type;
- ``# HELP`` appears at most once per metric;
- all samples of one metric family are consecutive (no interleaving);
- no duplicate series (same name + label set);
- values parse as floats (``+Inf``/``-Inf``/``NaN`` allowed) and
  counters are never negative.

Every experiment CLI that writes a ``metrics.prom`` runs here at the
minimum scale and its output must lint clean.
"""

import re

import pytest

from repro.experiments.cli import main

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)(?: (?P<timestamp>-?\d+))?$"
)
LABEL_PAIR = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
#: suffixes that samples of a histogram/summary family may carry
FAMILY_SUFFIXES = ("_bucket", "_sum", "_count")


def _family(name: str) -> str:
    for suffix in FAMILY_SUFFIXES:
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def _parse_labels(raw: str, errors: list, line_no: int) -> tuple:
    pairs = []
    rest = raw
    while rest:
        match = LABEL_PAIR.match(rest)
        if match is None:
            errors.append(f"line {line_no}: malformed label in {raw!r}")
            return tuple(pairs)
        value = match.group("value")
        # only \\ \" \n escapes are legal inside label values
        if re.search(r'\\(?![\\"n])', value):
            errors.append(
                f"line {line_no}: illegal escape in label value {value!r}"
            )
        pairs.append((match.group("name"), value))
        rest = rest[match.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            errors.append(f"line {line_no}: junk after label pair: {rest!r}")
            break
    names = [name for name, _ in pairs]
    if len(names) != len(set(names)):
        errors.append(f"line {line_no}: duplicate label name in {raw!r}")
    return tuple(pairs)


def lint_prometheus(text: str) -> list:
    """Return a list of format violations (empty = clean)."""
    errors: list = []
    helped: set = set()
    typed: dict = {}
    sampled_families: list = []
    series: set = set()
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                # other comments are allowed and ignored
                if line.startswith(("# HELP", "# TYPE")):
                    errors.append(f"line {line_no}: malformed {line!r}")
                continue
            keyword, name = parts[1], parts[2]
            if not METRIC_NAME.match(name):
                errors.append(f"line {line_no}: bad metric name {name!r}")
                continue
            if keyword == "HELP":
                if name in helped:
                    errors.append(f"line {line_no}: duplicate HELP for {name}")
                helped.add(name)
            else:
                kind = parts[3] if len(parts) > 3 else ""
                if kind not in TYPES:
                    errors.append(
                        f"line {line_no}: illegal TYPE {kind!r} for {name}"
                    )
                if name in typed:
                    errors.append(f"line {line_no}: duplicate TYPE for {name}")
                if name in sampled_families:
                    errors.append(
                        f"line {line_no}: TYPE for {name} after its samples"
                    )
                typed[name] = kind
            continue
        match = SAMPLE_LINE.match(line)
        if match is None:
            errors.append(f"line {line_no}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        family = _family(name)
        if family not in sampled_families:
            sampled_families.append(family)
        elif sampled_families[-1] != family:
            errors.append(
                f"line {line_no}: samples of {family} are not consecutive"
            )
        labels = _parse_labels(match.group("labels") or "", errors, line_no)
        for label_name, _ in labels:
            if not LABEL_NAME.match(label_name):
                errors.append(
                    f"line {line_no}: bad label name {label_name!r}"
                )
        key = (name, labels)
        if key in series:
            errors.append(f"line {line_no}: duplicate series {line!r}")
        series.add(key)
        raw_value = match.group("value")
        try:
            value = float(raw_value)
        except ValueError:
            if raw_value not in ("+Inf", "-Inf", "NaN"):
                errors.append(f"line {line_no}: bad value {raw_value!r}")
            value = 0.0
        if typed.get(family) == "counter" and value < 0.0:
            errors.append(
                f"line {line_no}: negative counter {name} = {raw_value}"
            )
    return errors


class TestValidator:
    """The linter itself must catch the violations it claims to."""

    def test_accepts_minimal_valid_exposition(self):
        text = (
            "# HELP posg_x_total Things.\n"
            "# TYPE posg_x_total counter\n"
            'posg_x_total{shard="0"} 3\n'
            'posg_x_total{shard="1"} 4\n'
        )
        assert lint_prometheus(text) == []

    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("1posg 1\n", "unparseable"),
            ("# TYPE posg_x counter\n# TYPE posg_x counter\nposg_x 1\n",
             "duplicate TYPE"),
            ("posg_x 1\n# TYPE posg_x counter\n", "after its samples"),
            ("# TYPE posg_x rate\nposg_x 1\n", "illegal TYPE"),
            ('posg_x{a="1"} 1\nposg_x{a="1"} 2\n', "duplicate series"),
            ('posg_x{a="1"} 1\nposg_y 1\nposg_x{a="2"} 1\n',
             "not consecutive"),
            ("# TYPE posg_x counter\nposg_x -1\n", "negative counter"),
            ('posg_x{a="\\t"} 1\n', "illegal escape"),
            ("posg_x oops\n", "bad value"),
        ],
    )
    def test_rejects_violations(self, text, fragment):
        errors = lint_prometheus(text)
        assert any(fragment in error for error in errors), errors


#: every experiment CLI invocation that writes a metrics.prom
EMITTERS = [
    pytest.param(["telemetry"], id="telemetry"),
    pytest.param(["chaos"], id="chaos"),
    pytest.param(["observe"], id="observe"),
    pytest.param(["latency"], id="latency"),
]


class TestEmittedMetrics:
    @pytest.mark.parametrize("command", EMITTERS)
    def test_cli_metrics_lint_clean(self, command, tmp_path, capsys):
        code = main(
            command + ["--scale", "0.01", "--output", str(tmp_path)]
        )
        capsys.readouterr()  # drain the CLI's table output
        assert code == 0
        path = tmp_path / "metrics.prom"
        assert path.exists(), f"{command[0]} wrote no metrics.prom"
        text = path.read_text()
        assert text.strip(), f"{command[0]} wrote an empty metrics.prom"
        errors = lint_prometheus(text)
        assert errors == [], "\n".join(str(e) for e in errors)
