"""Flight-recorder determinism across engines: bit-identity contracts.

Three contracts, following ``test_audit_equivalence.py``:

- enabling the flight recorder never perturbs the run: routing,
  completions, FSM transitions, and control traffic are bit-identical
  with the recorder on or off, in every engine;
- the recorded **timelines themselves** are bit-identical between the
  per-tuple reference engine (``chunk_size=0``), the chunked engine,
  and the multi-process parallel engine (fork *and* spawn) — the
  determinism contract the attribution experiment self-gates on;
- the same holds under an active fault plan (faults force the generic
  per-tuple chunk loop sequentially and the per-tuple fallback in the
  parallel engine).
"""

import numpy as np
import pytest

from repro.core.config import POSGConfig, RecoveryConfig
from repro.core.grouping import POSGGrouping
from repro.core.multisource import MultiSourcePOSGGrouping
from repro.faults import CrashFault, FaultPlan, MessageFaults, SlowdownFault
from repro.simulator.parallel import simulate_stream_parallel
from repro.simulator.run import simulate_stream
from repro.telemetry.flightrecorder import FlightRecorder, FlightRecorderConfig
from repro.workloads.synthetic import default_stream

M = 8_000
K = 5
FLIGHT = FlightRecorderConfig(sample_every=97, window=512)


def config():
    return POSGConfig(window_size=128)


def chaos_plan():
    stream = default_stream(seed=0, m=M)
    return FaultPlan(
        matrices=MessageFaults(drop=0.05, delay=0.2, delay_ms=4.0),
        sync_requests=MessageFaults(drop=0.10),
        sync_replies=MessageFaults(drop=0.10, reorder=0.3),
        crashes=(
            CrashFault(
                instance=2,
                at_ms=float(stream.arrivals[M // 2]),
                outage_ms=400.0,
            ),
        ),
        slowdowns=(
            SlowdownFault(
                instance=1,
                at_ms=float(stream.arrivals[M // 4]),
                duration_ms=600.0,
                factor=3.0,
            ),
        ),
        seed=7,
    )


def sync_fault_plan():
    """Faults on the sync plane only — matrices always get through.

    Dropped matrices (or a crash delaying an instance's first window)
    would starve the FSM in ROUND_ROBIN forever — no retransmit exists
    for matrices and recovery timers only arm in WAIT_ALL — so the
    recovery-config test keeps the bootstrap reliable and stresses the
    request/reply path instead.
    """
    return FaultPlan(
        sync_requests=MessageFaults(drop=0.10),
        sync_replies=MessageFaults(drop=0.10, reorder=0.3),
        seed=7,
    )


def run_sequential(sources, chunk_size, flight=None, faults=None, cfg=None):
    stream = default_stream(seed=0, m=M)
    cfg = cfg or config()
    policy = (
        POSGGrouping(cfg)
        if sources is None
        else MultiSourcePOSGGrouping(sources, cfg)
    )
    return simulate_stream(
        stream,
        policy,
        k=K,
        rng=np.random.default_rng(1),
        chunk_size=chunk_size,
        flight=flight,
        faults=faults,
    )


def run_parallel(sources, workers, flight=None, faults=None, **kwargs):
    stream = default_stream(seed=0, m=M)
    return simulate_stream_parallel(
        stream,
        MultiSourcePOSGGrouping(sources, config()),
        workers=workers,
        k=K,
        rng=np.random.default_rng(1),
        chunk_size=2048,
        flight=flight,
        faults=faults,
        **kwargs,
    )


def assert_run_identical(a, b):
    np.testing.assert_array_equal(a.stats.completions, b.stats.completions)
    np.testing.assert_array_equal(a.stats.assignments, b.stats.assignments)
    assert a.state_transitions == b.state_transitions
    assert a.control_messages == b.control_messages
    assert a.control_bits == b.control_bits


@pytest.fixture(scope="module")
def reference():
    """Per-tuple reference run with the recorder (s = 3)."""
    return run_sequential(3, 0, flight=FLIGHT)


class TestFlightIsPureObserver:
    @pytest.mark.parametrize("chunk_size", [0, 2048])
    def test_sharded_routing_unchanged(self, chunk_size):
        bare = run_sequential(3, chunk_size)
        flown = run_sequential(3, chunk_size, flight=FLIGHT)
        assert_run_identical(bare, flown)
        assert bare.flight is None
        assert flown.flight is not None
        assert flown.flight.report()["events_total"] > 0

    @pytest.mark.parametrize("chunk_size", [0, 2048])
    def test_single_scheduler_routing_unchanged(self, chunk_size):
        bare = run_sequential(None, chunk_size)
        flown = run_sequential(None, chunk_size, flight=FLIGHT)
        assert_run_identical(bare, flown)
        # a single-scheduler policy records as one shard
        assert flown.flight.sources == 1
        assert flown.flight.report()["per_shard"][0]["route_samples"] > 0

    def test_parallel_routing_unchanged(self):
        bare = run_parallel(3, 2)
        flown = run_parallel(3, 2, flight=FLIGHT)
        assert_run_identical(bare, flown)


class TestCrossEngineTimelineIdentity:
    @pytest.mark.parametrize("chunk_size", [64, 1000, 2048, 4096])
    def test_chunked_matches_reference(self, reference, chunk_size):
        chunked = run_sequential(3, chunk_size, flight=FLIGHT)
        assert_run_identical(reference, chunked)
        assert reference.flight.timelines() == chunked.flight.timelines()
        assert reference.flight.report() == chunked.flight.report()

    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_parallel_matches_reference(self, reference, workers):
        parallel = run_parallel(3, workers, flight=FLIGHT)
        assert_run_identical(reference, parallel)
        assert reference.flight.timelines() == parallel.flight.timelines()
        assert reference.flight.report() == parallel.flight.report()

    def test_spawn_start_method_matches(self, reference):
        parallel = run_parallel(3, 2, flight=FLIGHT, start_method="spawn")
        assert parallel.parallel["start_method"] == "spawn"
        assert_run_identical(reference, parallel)
        assert reference.flight.timelines() == parallel.flight.timelines()

    def test_single_scheduler_cross_engine(self):
        reference = run_sequential(None, 0, flight=FLIGHT)
        chunked = run_sequential(None, 2048, flight=FLIGHT)
        assert reference.flight.timelines() == chunked.flight.timelines()

    def test_coprime_stride_samples_every_shard(self, reference):
        # sample_every=97 is coprime with s=3 already; with s=4 the
        # recorder keeps it (gcd(97, 4) = 1) and all shards get routes
        for shard in range(3):
            assert (
                reference.flight.report()["per_shard"][shard]["route_samples"]
                > 0
            )


class TestFaultedTimelineIdentity:
    @pytest.fixture(scope="class")
    def faulted_reference(self):
        return run_sequential(3, 0, flight=FLIGHT, faults=chaos_plan())

    def test_chunked_matches_reference(self, faulted_reference):
        chunked = run_sequential(3, 2048, flight=FLIGHT, faults=chaos_plan())
        assert_run_identical(faulted_reference, chunked)
        assert (
            faulted_reference.flight.timelines()
            == chunked.flight.timelines()
        )

    @pytest.mark.parametrize("workers", [2, 3])
    def test_parallel_matches_reference(self, faulted_reference, workers):
        parallel = run_parallel(3, workers, flight=FLIGHT, faults=chaos_plan())
        assert_run_identical(faulted_reference, parallel)
        assert (
            faulted_reference.flight.timelines()
            == parallel.flight.timelines()
        )

    def test_control_starvation_is_visible(self, faulted_reference):
        # this plan drops matrices and no recovery is configured, so no
        # shard ever assembles all k matrices and no sync round starts;
        # the recorder makes that starvation legible per shard (partial
        # matrices, zero folds) while route sampling keeps going
        report = faulted_reference.flight.report()
        for shard in report["per_shard"]:
            assert 0 < shard["matrices"] < K
            assert shard["folds"] == 0
            assert shard["route_samples"] > 0

    def test_recovery_config_faulted_sync_identity(self):
        # with the self-healing scheduler and a sync-plane-only fault
        # plan the control plane survives: sync rounds complete and the
        # timelines stay bit-identical across the sequential engines
        cfg = POSGConfig(
            window_size=128,
            recovery=RecoveryConfig(sync_timeout=256, staleness_limit=4096),
        )
        reference = run_sequential(
            3, 0, flight=FLIGHT, faults=sync_fault_plan(), cfg=cfg
        )
        chunked = run_sequential(
            3, 2048, flight=FLIGHT, faults=sync_fault_plan(), cfg=cfg
        )
        assert_run_identical(reference, chunked)
        assert reference.flight.timelines() == chunked.flight.timelines()
        report = reference.flight.report()
        assert sum(s["sync_replies"] for s in report["per_shard"]) > 0
        assert sum(s["folds"] for s in report["per_shard"]) > 0


class TestArgumentResolution:
    def test_rejects_wrong_flight_type(self):
        stream = default_stream(seed=0, m=64)
        with pytest.raises(TypeError, match="flight"):
            simulate_stream(
                stream,
                POSGGrouping(),
                k=K,
                rng=np.random.default_rng(1),
                flight="black box",
            )

    def test_flight_needs_posg_family_policy(self):
        from repro.core.grouping import RoundRobinGrouping

        stream = default_stream(seed=0, m=64)
        with pytest.raises(ValueError, match="attach_flight"):
            simulate_stream(
                stream,
                RoundRobinGrouping(),
                k=K,
                rng=np.random.default_rng(1),
                flight=FlightRecorderConfig(),
            )

    def test_prebuilt_recorder_passes_through(self):
        flight = FlightRecorder(FLIGHT)
        result = run_sequential(2, 2048, flight=flight)
        assert result.flight is flight
        assert flight.sources == 2
