"""Self-healing parallel data plane: supervision, failover, degradation.

The acceptance contract of :mod:`repro.simulator.supervisor`: a run
that loses workers mid-flight — injected crashes, hangs, stalls — and
heals them by respawn-replay produces output **bit-identical** to the
sequential engine, across start methods and the fault/audit feature
matrix.  Degraded mode (inline routing after the respawn budget) must
preserve the same bits; strict mode (no ``SupervisionConfig``) must
keep the old raise-on-crash behaviour plus a finite hang deadline.
"""

import numpy as np
import pytest

from repro.core.config import POSGConfig
from repro.core.multisource import MultiSourcePOSGGrouping
from repro.faults import FaultPlan, MessageFaults, WorkerFault
from repro.simulator import supervisor as supervisor_module
from repro.simulator.parallel import simulate_stream_parallel
from repro.simulator.run import simulate_stream
from repro.simulator.supervisor import SupervisionConfig
from repro.telemetry.audit import AuditConfig
from repro.telemetry.flightrecorder import FlightRecorderConfig
from repro.telemetry.recorder import TelemetryRecorder
from repro.telemetry.report import RunReport
from repro.workloads.synthetic import default_stream

M = 8_000
K = 5

#: heals fast in tests: short deadline, quick backoff
HEALING = SupervisionConfig(
    ack_deadline_s=0.2,
    max_respawns=2,
    backoff_base_s=0.01,
    backoff_max_s=0.05,
)


def config():
    return POSGConfig(window_size=128)


def message_faults():
    return MessageFaults(drop=0.08, delay=0.2, delay_ms=4.0)


def plan(worker_faults=(), messages=False):
    loss = message_faults() if messages else MessageFaults()
    return FaultPlan(
        matrices=loss,
        sync_requests=loss,
        sync_replies=loss,
        worker_faults=tuple(worker_faults),
        seed=7,
    )


CRASH = WorkerFault(worker=1, segment=1, kind="crash")
HANG = WorkerFault(worker=0, segment=2, kind="hang", hang_ms=500.0)


def run_reference(faults=None, audit=False):
    return simulate_stream(
        default_stream(seed=0, m=M),
        MultiSourcePOSGGrouping(4, config()),
        k=K,
        rng=np.random.default_rng(1),
        chunk_size=2048,
        faults=faults,
        audit=AuditConfig(sample_every=64) if audit else None,
    )


def run_parallel(faults=None, audit=False, supervision=HEALING, **kwargs):
    return simulate_stream_parallel(
        default_stream(seed=0, m=M),
        MultiSourcePOSGGrouping(4, config()),
        workers=2,
        k=K,
        rng=np.random.default_rng(1),
        chunk_size=2048,
        faults=faults,
        audit=AuditConfig(sample_every=64) if audit else None,
        supervision=supervision,
        **kwargs,
    )


def assert_run_identical(a, b):
    np.testing.assert_array_equal(a.stats.completions, b.stats.completions)
    np.testing.assert_array_equal(a.stats.assignments, b.stats.assignments)
    assert a.state_transitions == b.state_transitions
    assert a.control_messages == b.control_messages
    assert a.control_bits == b.control_bits


class TestRespawnReplay:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_crash_and_hang_recovery_is_bit_identical(self, start_method):
        reference = run_reference(faults=plan([CRASH, HANG]))
        parallel = run_parallel(
            faults=plan([CRASH, HANG]), start_method=start_method
        )
        assert_run_identical(reference, parallel)
        sup = parallel.parallel["supervision"]
        assert sup["crashes_detected"] == 1
        assert sup["hangs_detected"] == 1
        assert sup["respawns_total"] == 2
        assert sup["replayed_segments"] == 2
        assert sup["degraded_workers"] == []
        assert sup["recovered"] is True

    def test_recovery_with_message_faults_and_audit(self):
        reference = run_reference(faults=plan([CRASH], messages=True), audit=True)
        parallel = run_parallel(faults=plan([CRASH], messages=True), audit=True)
        assert_run_identical(reference, parallel)
        assert reference.audit.report() == parallel.audit.report()
        # message-fault draws are unaffected by the process-level chaos
        ref_injected = reference.faults.report()["injected"]
        par_injected = parallel.faults.report()["injected"]
        assert ref_injected["dropped"] == par_injected["dropped"]
        assert ref_injected["delayed"] == par_injected["delayed"]

    def test_stall_fault_is_absorbed_without_detection(self):
        stall = WorkerFault(worker=0, segment=1, kind="stall", stall_factor=1.5)
        reference = run_reference(faults=plan([stall]))
        parallel = run_parallel(faults=plan([stall]))
        assert_run_identical(reference, parallel)
        sup = parallel.parallel["supervision"]
        assert sup["crashes_detected"] == 0 and sup["hangs_detected"] == 0
        assert sup["injected_worker_faults"]["stall"] == 1
        assert parallel.faults.report()["injected"]["worker_faults"]["stall"] == 1

    def test_flight_timelines_survive_respawn(self):
        flight_a = FlightRecorderConfig(sample_every=97)
        flight_b = FlightRecorderConfig(sample_every=97)
        reference = simulate_stream(
            default_stream(seed=0, m=M),
            MultiSourcePOSGGrouping(4, config()),
            k=K,
            rng=np.random.default_rng(1),
            chunk_size=2048,
            faults=plan([CRASH]),
            flight=flight_a,
        )
        parallel = run_parallel(faults=plan([CRASH]), flight=flight_b)
        assert_run_identical(reference, parallel)
        assert reference.flight.timelines() == parallel.flight.timelines()
        # the lifecycle side channel carries the supervision story and
        # stays out of the deterministic timelines
        assert reference.flight.worker_events == ()
        kinds = [event[0] for event in parallel.flight.worker_events]
        assert "worker_crash_detected" in kinds
        assert "worker_respawned" in kinds


class TestDegradedMode:
    def test_inline_fallback_is_bit_identical(self):
        crashes = [
            WorkerFault(worker=1, segment=1, kind="crash"),
            WorkerFault(worker=1, segment=2, kind="crash"),
        ]
        reference = run_reference(faults=plan(crashes))
        parallel = run_parallel(
            faults=plan(crashes),
            supervision=SupervisionConfig(
                ack_deadline_s=5.0,
                max_respawns=1,
                backoff_base_s=0.01,
                backoff_max_s=0.05,
                degraded_policy="inline",
            ),
        )
        assert_run_identical(reference, parallel)
        sup = parallel.parallel["supervision"]
        assert sup["degraded_workers"] == [1]
        assert sup["inline_segments"] > 0
        assert sup["recovered"] is False

    def test_raise_policy_escalates_after_budget(self):
        crashes = [
            WorkerFault(worker=1, segment=1, kind="crash"),
            WorkerFault(worker=1, segment=2, kind="crash"),
        ]
        with pytest.raises(RuntimeError, match="respawns used"):
            run_parallel(
                faults=plan(crashes),
                supervision=SupervisionConfig(
                    ack_deadline_s=5.0,
                    max_respawns=1,
                    backoff_base_s=0.01,
                    backoff_max_s=0.05,
                    degraded_policy="raise",
                ),
            )


class TestStrictDefault:
    def test_crash_without_supervision_raises(self):
        with pytest.raises(RuntimeError, match="crash"):
            run_parallel(faults=plan([CRASH]), supervision=None)

    def test_hang_without_supervision_trips_deadline(self, monkeypatch):
        # the strict policy reads the module default at call time, so a
        # test can shrink the deadline without arming supervision
        monkeypatch.setattr(supervisor_module, "DEFAULT_ACK_DEADLINE_S", 0.2)
        hang = WorkerFault(worker=0, segment=1, kind="hang", hang_ms=2_000.0)
        with pytest.raises(RuntimeError, match="hang"):
            run_parallel(faults=plan([hang]), supervision=None)

    def test_fault_free_run_reports_strict_supervision(self):
        parallel = run_parallel(supervision=None)
        sup = parallel.parallel["supervision"]
        assert sup["enabled"] is False
        assert sup["config"]["max_respawns"] == 0
        assert sup["config"]["degraded_policy"] == "raise"
        assert sup["crashes_detected"] == 0
        assert sup["recovered"] is True


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ack_deadline_s": 0.0},
            {"max_respawns": -1},
            {"backoff_base_s": -0.1},
            {"backoff_factor": 0.5},
            {"backoff_base_s": 1.0, "backoff_max_s": 0.5},
            {"degraded_policy": "shrug"},
            {"spawn_grace_s": -1.0},
        ],
    )
    def test_config_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            SupervisionConfig(**kwargs)

    def test_fault_targeting_missing_worker_is_rejected(self):
        ghost = WorkerFault(worker=7, segment=0, kind="crash")
        with pytest.raises(ValueError, match="worker 7"):
            run_parallel(faults=plan([ghost]))


class TestReporting:
    def test_run_report_carries_supervision_block(self):
        with TelemetryRecorder() as recorder:
            parallel = simulate_stream_parallel(
                default_stream(seed=0, m=M),
                MultiSourcePOSGGrouping(4, config(), telemetry=recorder),
                workers=2,
                k=K,
                rng=np.random.default_rng(1),
                chunk_size=2048,
                telemetry=recorder,
                faults=plan([CRASH]),
                supervision=HEALING,
            )
            report = RunReport.from_simulation(parallel, K, telemetry=recorder)
        assert report.schema == "posg-run-report/v6"
        assert report.supervision is not None
        assert report.supervision["crashes_detected"] == 1
        assert report.supervision["recovered"] is True
        assert "supervision" in report.summary()
        prom = recorder.registry.to_prometheus()
        assert "posg_supervisor_crashes_detected_total 1" in prom
        assert "posg_supervisor_respawns_total 1" in prom
        assert 'posg_fault_worker_total{kind="crash"} 1' in prom
        assert "posg_fault_worker_respawns_total 1" in prom

    def test_sequential_run_report_has_no_supervision(self):
        reference = run_reference()
        report = RunReport.from_simulation(reference, K)
        assert report.supervision is None
