"""Tests for completion-time metrics."""

import numpy as np
import pytest

from repro.simulator.metrics import CompletionStats, aggregate_runs


def make_stats(completions, assignments=None):
    completions = np.asarray(completions, dtype=float)
    if assignments is None:
        assignments = np.zeros(len(completions), dtype=int)
    return CompletionStats(completions, np.asarray(assignments))


class TestBasics:
    def test_average(self):
        stats = make_stats([1.0, 2.0, 3.0])
        assert stats.average_completion_time == 2.0

    def test_total(self):
        assert make_stats([1.0, 2.0]).total_completion_time == 3.0

    def test_max_and_percentile(self):
        stats = make_stats(np.arange(1, 101, dtype=float))
        assert stats.max_completion_time == 100.0
        assert stats.percentile(50, exact=True) == pytest.approx(50.5)
        # The default streaming (P²) path approximates the same value.
        assert stats.percentile(50) == pytest.approx(50.5, rel=0.05)

    def test_percentile_extremes_and_validation(self):
        stats = make_stats(np.arange(1, 101, dtype=float))
        assert stats.percentile(0) == 1.0
        assert stats.percentile(100) == 100.0
        with pytest.raises(ValueError):
            stats.percentile(101)

    def test_percentile_small_sample_is_exact(self):
        values = [3.0, 1.0, 2.0]
        stats = make_stats(values)
        for q in (0.0, 25.0, 50.0, 90.0, 100.0):
            assert stats.percentile(q) == pytest.approx(
                np.percentile(values, q)
            )

    def test_percentile_duplicate_heavy_stream(self):
        # a duplicate-heavy stream is the adversarial case for the P²
        # markers: most completions collapse onto two values, so the
        # parabolic interpolation sits between duplicates where the
        # exact path snaps onto one — the documented contract is that
        # the streaming estimate stays within the local value spacing
        rng = np.random.default_rng(7)
        values = np.where(
            rng.random(5_000) < 0.45, 10.0,
            np.where(rng.random(5_000) < 0.9, 20.0, 30.0),
        )
        stats = make_stats(values)
        for q in (50.0, 90.0, 99.0):
            exact = stats.percentile(q, exact=True)
            streaming = stats.percentile(q)
            # both paths land in the data's range and within one value
            # step (10.0) of each other despite the duplicate plateaus
            assert 10.0 <= streaming <= 30.0
            assert abs(streaming - exact) <= 10.0
        # a stream that is ONE duplicated value is exact on both paths
        constant = make_stats(np.full(1_000, 42.0))
        for q in (50.0, 99.0):
            assert constant.percentile(q) == 42.0
            assert constant.percentile(q, exact=True) == 42.0

    def test_m(self):
        assert make_stats([1.0, 2.0, 3.0]).m == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            make_stats([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            make_stats([-1.0])

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            CompletionStats(np.array([1.0]), np.array([0, 1]))

    def test_readonly_views(self):
        stats = make_stats([1.0, 2.0])
        with pytest.raises(ValueError):
            stats.completions[0] = 9.0
        with pytest.raises(ValueError):
            stats.assignments[0] = 9


class TestSpeedup:
    def test_speedup_definition(self):
        """S_L = sum(l_RR) / sum(l_POSG)."""
        posg = make_stats([1.0, 1.0])
        rr = make_stats([2.0, 2.0])
        assert posg.speedup_over(rr) == 2.0

    def test_speedup_below_one_when_slower(self):
        slow = make_stats([4.0])
        fast = make_stats([2.0])
        assert slow.speedup_over(fast) == 0.5

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            make_stats([1.0]).speedup_over(make_stats([1.0, 2.0]))


class TestInstanceCounts:
    def test_counts(self):
        stats = make_stats([1.0] * 5, [0, 1, 1, 2, 0])
        np.testing.assert_array_equal(stats.instance_tuple_counts(4), [2, 2, 1, 0])


class TestTimeSeries:
    def test_bins(self):
        completions = np.concatenate([np.full(10, 1.0), np.full(10, 3.0)])
        stats = make_stats(completions)
        series = stats.time_series(bin_size=10)
        assert len(series) == 2
        np.testing.assert_allclose(series.mean, [1.0, 3.0])
        np.testing.assert_allclose(series.minimum, [1.0, 3.0])
        np.testing.assert_allclose(series.maximum, [1.0, 3.0])

    def test_partial_last_bin(self):
        stats = make_stats([1.0, 2.0, 3.0])
        series = stats.time_series(bin_size=2)
        assert len(series) == 2
        assert series.mean[1] == 3.0

    def test_min_mean_max_ordering(self):
        rng = np.random.default_rng(0)
        stats = make_stats(rng.uniform(0, 10, size=100))
        series = stats.time_series(bin_size=25)
        assert np.all(series.minimum <= series.mean)
        assert np.all(series.mean <= series.maximum)

    def test_rejects_bad_bin(self):
        with pytest.raises(ValueError):
            make_stats([1.0]).time_series(bin_size=0)


class TestAggregateRuns:
    def test_aggregate(self):
        agg = aggregate_runs([1.0, 2.0, 3.0])
        assert agg == {"min": 1.0, "mean": 2.0, "max": 3.0}

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            aggregate_runs([])
