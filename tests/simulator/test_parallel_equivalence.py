"""Bit-identity of the multi-process parallel engine.

The acceptance contract of ``repro.simulator.parallel``: for fixed
seeds, :func:`simulate_stream_parallel` produces the *exact* run the
sequential per-tuple reference engine (``chunk_size=0``) produces —
completions, assignments, FSM transitions, control traffic, queue
samples, fault report and audit report — across every worker count,
shard count, and the fault/audit feature matrix.  Workers perform no
random draws, so the worker count can never change a result; these
tests sweep it anyway to catch layout/merge bugs that only appear when
shards split across processes.

Reference results are computed once per configuration (module-scoped
cache) — the sweep is workers x sources x faults x audit and the
sequential runs dominate the runtime.
"""

import numpy as np
import pytest

from repro.core.config import POSGConfig
from repro.core.grouping import POSGGrouping
from repro.core.multisource import MultiSourcePOSGGrouping
from repro.core.config import RecoveryConfig
from repro.faults import CrashFault, FaultPlan, MessageFaults, SlowdownFault
from repro.simulator.network import UniformLatency
from repro.simulator.parallel import ShardArena, simulate_stream_parallel
from repro.simulator.run import simulate_stream
from repro.telemetry.audit import AuditConfig
from repro.telemetry.recorder import TelemetryRecorder
from repro.workloads.synthetic import default_stream

M = 8_000
K = 5
SAMPLE_EVERY = 97


def config():
    return POSGConfig(window_size=128)


def chaos_plan():
    stream = default_stream(seed=0, m=M)
    return FaultPlan(
        matrices=MessageFaults(drop=0.05, delay=0.2, delay_ms=4.0),
        sync_requests=MessageFaults(drop=0.10),
        sync_replies=MessageFaults(drop=0.10, reorder=0.3),
        crashes=(
            CrashFault(
                instance=2,
                at_ms=float(stream.arrivals[2 * M // 3]),
                outage_ms=500.0,
            ),
        ),
        slowdowns=(
            SlowdownFault(
                instance=1,
                at_ms=float(stream.arrivals[M // 3]),
                duration_ms=2000.0,
                factor=3.0,
            ),
        ),
        seed=7,
    )


def run_reference(sources, faulted, audited):
    return simulate_stream(
        default_stream(seed=0, m=M),
        MultiSourcePOSGGrouping(sources, config()),
        k=K,
        rng=np.random.default_rng(1),
        chunk_size=0,
        sample_queues_every=SAMPLE_EVERY,
        faults=chaos_plan() if faulted else None,
        audit=AuditConfig(sample_every=64) if audited else None,
    )


def run_parallel(sources, workers, faulted, audited, **kwargs):
    return simulate_stream_parallel(
        default_stream(seed=0, m=M),
        MultiSourcePOSGGrouping(sources, config()),
        workers=workers,
        k=K,
        rng=np.random.default_rng(1),
        sample_queues_every=SAMPLE_EVERY,
        faults=chaos_plan() if faulted else None,
        audit=AuditConfig(sample_every=64) if audited else None,
        **kwargs,
    )


@pytest.fixture(scope="module")
def reference():
    cache = {}

    def get(sources, faulted=False, audited=False):
        key = (sources, faulted, audited)
        if key not in cache:
            cache[key] = run_reference(*key)
        return cache[key]

    return get


def assert_run_identical(a, b):
    np.testing.assert_array_equal(a.stats.completions, b.stats.completions)
    np.testing.assert_array_equal(a.stats.assignments, b.stats.assignments)
    assert a.state_transitions == b.state_transitions
    assert a.control_messages == b.control_messages
    assert a.control_bits == b.control_bits
    np.testing.assert_array_equal(a.queue_samples, b.queue_samples)
    np.testing.assert_array_equal(
        a.queue_sample_indices, b.queue_sample_indices
    )


class TestBitIdentity:
    @pytest.mark.parametrize("sources", [1, 2, 4, 8])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_reference(self, reference, sources, workers):
        parallel = run_parallel(sources, workers, False, False)
        assert_run_identical(reference(sources), parallel)

    @pytest.mark.parametrize("sources", [1, 4])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_matches_reference_under_faults(self, reference, sources, workers):
        parallel = run_parallel(sources, workers, True, False)
        ref = reference(sources, faulted=True)
        assert_run_identical(ref, parallel)
        assert ref.faults.report() == parallel.faults.report()

    @pytest.mark.parametrize("sources", [1, 4])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_matches_reference_with_audit(self, reference, sources, workers):
        parallel = run_parallel(sources, workers, False, True)
        ref = reference(sources, audited=True)
        assert_run_identical(ref, parallel)
        assert ref.audit.report() == parallel.audit.report()

    def test_matches_reference_faults_and_audit(self, reference):
        parallel = run_parallel(4, 4, True, True)
        ref = reference(4, faulted=True, audited=True)
        assert_run_identical(ref, parallel)
        assert ref.faults.report() == parallel.faults.report()
        assert ref.audit.report() == parallel.audit.report()

    def test_chunk_size_sweep(self, reference):
        for chunk in (64, 1000, 4096):
            parallel = run_parallel(4, 2, False, False, chunk_size=chunk)
            assert_run_identical(reference(4), parallel)

    def test_spawn_start_method_matches(self, reference):
        parallel = run_parallel(2, 2, False, False, start_method="spawn")
        assert_run_identical(reference(2), parallel)
        assert parallel.parallel["start_method"] == "spawn"


class TestRunAccounting:
    def test_parallel_info_shape(self):
        result = run_parallel(4, 2, False, False)
        info = result.parallel
        assert info["workers"] == 2
        assert info["worker_shards"] == [[0, 2], [1, 3]]
        assert sum(info["worker_tuples"]) == M
        assert info["segments"] > 0
        # every shard spends exactly K tuples per SEND_ALL round
        assert info["fallback_tuples"] % K == 0
        assert info["discarded_speculative_tuples"] >= 0

    def test_workers_clamped_to_sources(self):
        result = run_parallel(2, 8, False, False)
        assert result.parallel["workers"] == 2

    def test_telemetry_records_run_and_parallel_counters(self):
        recorder = TelemetryRecorder()
        result = simulate_stream_parallel(
            default_stream(seed=0, m=M),
            MultiSourcePOSGGrouping(2, config(), telemetry=recorder),
            workers=2,
            k=K,
            rng=np.random.default_rng(1),
            telemetry=recorder,
        )
        snapshot = recorder.registry.snapshot()
        assert snapshot["sim_tuples_total"] == M
        assert (
            snapshot["sim_parallel_segments_total"]
            == result.parallel["segments"]
        )
        worker_totals = [
            value
            for key, value in snapshot.items()
            if key.startswith("sim_parallel_worker_tuples_total")
        ]
        assert sum(worker_totals) == M


class TestValidation:
    def test_rejects_non_multisource_policy(self):
        with pytest.raises(TypeError, match="MultiSourcePOSGGrouping"):
            simulate_stream_parallel(
                default_stream(seed=0, m=256), POSGGrouping(config()), k=K
            )

    def test_rejects_per_tuple_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            run_parallel(2, 2, False, False, chunk_size=0)

    def test_rejects_recovery_config(self):
        policy = MultiSourcePOSGGrouping(
            2, POSGConfig(window_size=128, recovery=RecoveryConfig())
        )
        with pytest.raises(ValueError, match="recovery"):
            simulate_stream_parallel(
                default_stream(seed=0, m=256), policy, k=K
            )

    def test_rejects_random_data_latency(self):
        with pytest.raises(ValueError, match="constant data latencies"):
            run_parallel(
                2, 2, False, False, data_latency=UniformLatency(0.0, 1.0)
            )

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="workers"):
            run_parallel(2, 0, False, False)


class TestShardArenaLayout:
    def test_views_are_disjoint_and_attachable(self):
        arena = ShardArena(sources=3, k=5, rows=4, cols=54, m=100, cap=50)
        try:
            arena.items[:] = np.arange(100)
            arena.freq[2][4][:] = 7.0
            arena.work[0][0][:] = 3.0
            arena.c_hat[1][:] = np.arange(5)
            arena.out_est[2][:] = 1.5
            attached = ShardArena(
                3, 5, 4, 54, 100, 50, name=arena.name
            )
            try:
                np.testing.assert_array_equal(
                    attached.items, np.arange(100)
                )
                assert float(attached.freq[2][4][0, 0]) == 7.0
                # regions must not alias: freq write didn't leak anywhere
                assert float(attached.work[2][4][0, 0]) == 0.0
                assert float(attached.work[0][0][-1, -1]) == 3.0
                np.testing.assert_array_equal(
                    attached.c_hat[1], np.arange(5)
                )
                assert float(attached.out_est[2][-1]) == 1.5
            finally:
                attached.close()
        finally:
            arena.close()
            arena.unlink()
