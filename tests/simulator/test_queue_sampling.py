"""Tests for the backlog-trace instrumentation."""

import numpy as np
import pytest

from repro.core.grouping import RoundRobinGrouping
from repro.simulator.run import simulate_stream
from repro.workloads.distributions import UniformItems
from repro.workloads.synthetic import Stream, StreamSpec, generate_stream


def small_stream(m=1000, n=64, k=3, seed=0, **overrides):
    spec = StreamSpec(m=m, n=n, w_n=8, k=k, **overrides)
    return generate_stream(UniformItems(n), spec, np.random.default_rng(seed))


class TestQueueSampling:
    def test_disabled_by_default(self):
        result = simulate_stream(small_stream(m=50), RoundRobinGrouping(), k=3)
        assert result.queue_samples is None
        assert result.queue_sample_indices is None

    def test_sample_shape(self):
        result = simulate_stream(
            small_stream(m=1000), RoundRobinGrouping(), k=3,
            sample_queues_every=100,
        )
        assert result.queue_samples.shape == (10, 3)
        np.testing.assert_array_equal(
            result.queue_sample_indices, np.arange(0, 1000, 100)
        )

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            simulate_stream(
                small_stream(m=10), RoundRobinGrouping(), k=2,
                sample_queues_every=0,
            )

    def test_backlogs_nonnegative(self):
        result = simulate_stream(
            small_stream(m=2000), RoundRobinGrouping(), k=3,
            sample_queues_every=50,
        )
        assert np.all(result.queue_samples >= 0)

    def test_overloaded_instance_backlog_grows(self):
        """Single slow instance at rho > 1: backlog grows monotonically
        on average."""
        stream = Stream(
            items=np.zeros(500, dtype=np.int64),
            base_times=np.full(500, 10.0),
            arrivals=np.arange(500, dtype=np.float64) * 5.0,  # rho = 2
            n=1,
            time_table=np.array([10.0]),
        )
        result = simulate_stream(
            stream, RoundRobinGrouping(), k=1, sample_queues_every=100
        )
        backlog = result.queue_samples[:, 0]
        assert backlog[-1] > backlog[0]
        assert backlog[-1] > 1000.0  # ~500 tuples * 5ms excess / sampled late

    def test_idle_system_backlog_zero(self):
        stream = small_stream(m=300, over_provisioning=50.0)
        result = simulate_stream(
            stream, RoundRobinGrouping(), k=3, sample_queues_every=50
        )
        # massively over-provisioned: queues are empty at almost every sample
        assert np.mean(result.queue_samples == 0.0) > 0.9
