"""Property-based invariants of the fast simulation path."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grouping import RandomGrouping, RoundRobinGrouping
from repro.simulator.run import simulate_stream
from repro.workloads.synthetic import Stream


@st.composite
def tiny_streams(draw):
    m = draw(st.integers(min_value=1, max_value=60))
    n = draw(st.integers(min_value=1, max_value=8))
    items = draw(
        st.lists(st.integers(min_value=0, max_value=n - 1),
                 min_size=m, max_size=m)
    )
    table = draw(
        st.lists(st.floats(min_value=0.1, max_value=50.0),
                 min_size=n, max_size=n)
    )
    gaps = draw(
        st.lists(st.floats(min_value=0.0, max_value=20.0),
                 min_size=m, max_size=m)
    )
    arrivals = np.cumsum(gaps) - gaps[0]
    table = np.asarray(table)
    items = np.asarray(items)
    return Stream(
        items=items,
        base_times=table[items],
        arrivals=np.asarray(arrivals),
        n=n,
        time_table=table,
    )


class TestFastPathInvariants:
    @given(tiny_streams(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_completion_at_least_service_time(self, stream, k):
        result = simulate_stream(stream, RoundRobinGrouping(), k=k)
        assert np.all(result.stats.completions >= stream.base_times - 1e-9)

    @given(tiny_streams(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_fifo_order_per_instance(self, stream, k):
        result = simulate_stream(stream, RoundRobinGrouping(), k=k)
        finish = stream.arrivals + result.stats.completions
        for instance in range(k):
            mask = result.stats.assignments == instance
            assert np.all(np.diff(finish[mask]) >= -1e-9)

    @given(tiny_streams(), st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_no_idle_while_queued(self, stream, k, seed):
        """Work conservation: an instance's total busy time equals the sum
        of its service times, and its makespan is at most last-arrival +
        total service (it never idles with work queued)."""
        result = simulate_stream(
            stream, RandomGrouping(), k=k,
            rng=np.random.default_rng(seed),
        )
        finish = stream.arrivals + result.stats.completions
        for instance in range(k):
            mask = result.stats.assignments == instance
            if not mask.any():
                continue
            total_service = stream.base_times[mask].sum()
            last_arrival = stream.arrivals[mask].max()
            assert finish[mask].max() <= last_arrival + total_service + 1e-6

    @given(tiny_streams())
    @settings(max_examples=30, deadline=None)
    def test_single_instance_is_sequential(self, stream):
        """k=1: completions are the M/G/1-style recursion exactly."""
        result = simulate_stream(stream, RoundRobinGrouping(), k=1)
        finish = 0.0
        for j in range(stream.m):
            start = max(stream.arrivals[j], finish)
            finish = start + stream.base_times[j]
            expected = finish - stream.arrivals[j]
            assert result.stats.completions[j] == expected
