"""Crash-mid-run hygiene: an externally SIGKILLed worker must not leak.

Satellite of the supervision PR: whatever kills a worker — not just
the injected faults the supervisor knows about, but a raw ``SIGKILL``
from outside (the OOM killer's signature move) — the parent must end
the run cleanly: a crisp error in strict mode, a healed run under
supervision, and in both cases no orphaned ``/dev/shm`` segment and no
``resource_tracker`` complaints on stderr.

Each case runs in a subprocess harness: the simulation runs in a
thread while the main thread finds the ``posg-shard-worker-0`` child
(parked there by an injected hang fault, which opens a wide kill
window) and SIGKILLs it mid-run.
"""

import json
import os
import subprocess
import sys

import pytest

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

HARNESS = """
import json
import multiprocessing
import os
import signal
import sys
import threading
import time

import numpy as np

from repro.core.config import POSGConfig
from repro.core.multisource import MultiSourcePOSGGrouping
from repro.faults import FaultPlan, WorkerFault
from repro.simulator.parallel import simulate_stream_parallel
from repro.simulator.supervisor import SupervisionConfig
from repro.workloads.synthetic import default_stream

start_method = sys.argv[1]
supervised = sys.argv[2] == "supervised"

shm_before = set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()

# the hang parks worker 0 inside segment 1 for 20s — a wide, reliable
# window for the external SIGKILL (far beyond any test's real runtime:
# the kill always lands first and the supervisor's deadline never
# expires on its own)
plan = FaultPlan(
    worker_faults=(
        WorkerFault(worker=0, segment=1, kind="hang", hang_ms=20_000.0),
    ),
)
supervision = (
    SupervisionConfig(
        ack_deadline_s=60.0,
        max_respawns=2,
        backoff_base_s=0.01,
        backoff_max_s=0.05,
    )
    if supervised
    else None
)

outcome = {}


def run():
    try:
        result = simulate_stream_parallel(
            default_stream(seed=0, m=8_000),
            MultiSourcePOSGGrouping(4, POSGConfig(window_size=128)),
            workers=2,
            k=5,
            rng=np.random.default_rng(1),
            chunk_size=2048,
            faults=plan,
            supervision=supervision,
            start_method=start_method,
        )
        outcome["status"] = "completed"
        outcome["supervision"] = {
            key: result.parallel["supervision"][key]
            for key in ("crashes_detected", "respawns_total", "recovered")
        }
        outcome["tuples"] = int(result.stats.completions.sum())
    except RuntimeError as error:
        outcome["status"] = "error"
        outcome["message"] = str(error)


thread = threading.Thread(target=run)
thread.start()

victim = None
deadline = time.monotonic() + 30.0
while victim is None and time.monotonic() < deadline:
    for child in multiprocessing.active_children():
        if child.name == "posg-shard-worker-0":
            victim = child
            break
    time.sleep(0.02)
assert victim is not None, "worker 0 never appeared"

# let the run reach the hung segment (spawn startup can take a good
# second), then strike from outside
time.sleep(2.0)
os.kill(victim.pid, signal.SIGKILL)

thread.join(timeout=120)
assert not thread.is_alive(), "simulation never returned after the kill"

shm_after = set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()
outcome["leaked_shm"] = sorted(shm_after - shm_before)
print(json.dumps(outcome))
"""


def run_harness(start_method, mode):
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.run(
        [sys.executable, "-c", HARNESS, start_method, mode],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert proc.returncode == 0, (
        f"harness failed (rc={proc.returncode})\n"
        f"stdout: {proc.stdout}\nstderr: {proc.stderr}"
    )
    outcome = json.loads(proc.stdout.strip().splitlines()[-1])
    return outcome, proc.stderr


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_sigkill_with_supervision_recovers_cleanly(start_method):
    outcome, stderr = run_harness(start_method, "supervised")
    assert outcome["status"] == "completed"
    assert outcome["supervision"]["crashes_detected"] >= 1
    assert outcome["supervision"]["respawns_total"] >= 1
    assert outcome["supervision"]["recovered"] is True
    # bit-identity to the sequential engine is gated in
    # test_supervision.py; here it is enough that the run completed
    assert outcome["tuples"] > 0
    assert outcome["leaked_shm"] == []
    assert "resource_tracker" not in stderr


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_sigkill_without_supervision_fails_cleanly(start_method):
    outcome, stderr = run_harness(start_method, "strict")
    assert outcome["status"] == "error"
    assert "crash" in outcome["message"]
    assert outcome["leaked_shm"] == []
    assert "resource_tracker" not in stderr
