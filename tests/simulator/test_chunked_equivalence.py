"""Chunked engine vs per-tuple reference: bit-for-bit equivalence.

``simulate_stream(chunk_size=0)`` runs the original per-tuple loop;
any positive chunk size runs the batched data plane.  The two must agree
exactly — same completion times (IEEE-equal), same assignments, same FSM
transitions, same control traffic, same queue samples — because the
chunked engine only reorders bookkeeping, never arithmetic.
"""

import copy

import numpy as np
import pytest

from repro.core.config import POSGConfig
from repro.core.grouping import (
    FullKnowledgeGrouping,
    POSGGrouping,
    RoundRobinGrouping,
)
from repro.simulator.network import UniformLatency
from repro.simulator.run import simulate_stream
from repro.workloads.nonstationary import LoadShiftScenario
from repro.workloads.synthetic import default_stream

M = 12_000


def run_both(policy_factory, **kwargs):
    results = []
    for chunk in (0, 1024):
        kw = dict(kwargs)
        if "latency_factory" in kw:
            kw["data_latency"] = kw.pop("latency_factory")()
        stream = default_stream(seed=0, m=M)
        results.append(
            simulate_stream(
                stream,
                policy_factory(),
                k=5,
                rng=np.random.default_rng(1),
                sample_queues_every=500,
                chunk_size=chunk,
                **kw,
            )
        )
    return results


def assert_identical(reference, chunked):
    np.testing.assert_array_equal(
        reference.stats.completions, chunked.stats.completions
    )
    np.testing.assert_array_equal(
        reference.stats.assignments, chunked.stats.assignments
    )
    assert reference.state_transitions == chunked.state_transitions
    assert reference.control_messages == chunked.control_messages
    assert reference.control_bits == chunked.control_bits
    np.testing.assert_array_equal(
        reference.queue_sample_indices, chunked.queue_sample_indices
    )
    np.testing.assert_array_equal(
        reference.queue_samples, chunked.queue_samples
    )


class TestPOSGEquivalence:
    def test_load_shift_scenario(self):
        """The issue's canonical case: POSG on the Figure 10 load shift.

        A small FSM window makes the scheduler cycle through its full
        state machine (matrices, SEND_ALL syncs, RUN) well within the
        shortened stream."""
        ref, chunked = run_both(
            lambda: POSGGrouping(POSGConfig(window_size=256)),
            scenario=LoadShiftScenario.paper_figure10(M),
        )
        assert_identical(ref, chunked)
        # the run must actually exercise the adaptive path
        assert ref.state_transitions
        assert ref.control_messages > 0

    def test_paper_defaults_config(self):
        ref, chunked = run_both(
            lambda: POSGGrouping(POSGConfig.paper_defaults())
        )
        assert_identical(ref, chunked)

    def test_per_instance_constant_latency(self):
        ref, chunked = run_both(
            lambda: POSGGrouping(),
            data_latency=[0.0, 0.05, 0.1, 0.15, 0.2],
        )
        assert_identical(ref, chunked)

    def test_random_latency_model(self):
        """Fresh latency models per run (same seed) — the chunked engine
        must consume the latency RNG in the same per-instance order."""
        ref, chunked = run_both(
            lambda: POSGGrouping(),
            latency_factory=lambda: UniformLatency(
                0.0, 0.2, rng=np.random.default_rng(7)
            ),
        )
        assert_identical(ref, chunked)

    def test_latency_hints(self):
        ref, chunked = run_both(
            lambda: POSGGrouping(latency_hints=[0.0, 0.05, 0.1, 0.15, 0.2])
        )
        assert_identical(ref, chunked)

    def test_chunk_size_invariance(self):
        """Different chunk sizes all reproduce the reference exactly."""
        outputs = []
        for chunk in (0, 64, 1000, 4096):
            stream = default_stream(seed=0, m=M)
            outputs.append(
                simulate_stream(
                    stream,
                    POSGGrouping(),
                    k=5,
                    rng=np.random.default_rng(1),
                    sample_queues_every=500,
                    chunk_size=chunk,
                )
            )
        for other in outputs[1:]:
            assert_identical(outputs[0], other)


class TestBaselineEquivalence:
    def test_round_robin(self):
        ref, chunked = run_both(lambda: RoundRobinGrouping())
        assert_identical(ref, chunked)

    def test_full_knowledge(self):
        ref, chunked = run_both(lambda: FullKnowledgeGrouping)
        assert_identical(ref, chunked)


class TestBlockRouterEquivalence:
    def test_block_routing_matches_submit(self):
        """A pre-gathered block routes the same instance sequence as
        per-tuple ``submit`` from the same scheduler state."""
        stream = default_stream(seed=0, m=M)
        policy = POSGGrouping()
        simulate_stream(
            stream, policy, k=5, rng=np.random.default_rng(1)
        )
        scheduler = policy.scheduler
        items = np.arange(0, 200, dtype=np.int64)
        per_tuple = copy.deepcopy(scheduler)
        blocked = copy.deepcopy(scheduler)
        expected = [per_tuple.submit(int(item)).instance for item in items]
        block = blocked.begin_block(items)
        got = [block.route_next() for _ in items]
        block.commit()
        assert got == expected
        np.testing.assert_array_equal(blocked.c_hat, per_tuple.c_hat)
