"""Multi-source scheduling through the simulator engines.

The acceptance contracts of the sharded subsystem:

- ``sources=1`` is bit-identical to the single-scheduler
  :class:`POSGGrouping` path — assignments, completions, FSM
  transitions, control traffic, telemetry registry/trace, and the
  estimator-audit report all match exactly;
- for ``sources > 1`` the chunked engine is bit-identical to the
  per-tuple reference engine (``chunk_size=0``), with and without an
  active :class:`FaultPlan`;
- per-scheduler fault channels hit only the addressed shard.
"""

import numpy as np
import pytest

from repro.core.config import POSGConfig
from repro.core.grouping import POSGGrouping
from repro.core.multisource import MultiSourcePOSGGrouping
from repro.faults import CrashFault, FaultPlan, MessageFaults, SlowdownFault
from repro.simulator.run import simulate_stream
from repro.telemetry.audit import AuditConfig
from repro.telemetry.recorder import TelemetryRecorder
from repro.workloads.synthetic import default_stream

M = 12_000
K = 5


def config():
    return POSGConfig(window_size=256)


def run(policy, chunk_size, telemetry=None, faults=None, audit=None):
    stream = default_stream(seed=0, m=M)
    return simulate_stream(
        stream,
        policy,
        k=K,
        rng=np.random.default_rng(1),
        chunk_size=chunk_size,
        telemetry=telemetry,
        faults=faults,
        audit=audit,
    )


def chaos_plan(**overrides):
    stream = default_stream(seed=0, m=M)
    faults = dict(
        matrices=MessageFaults(drop=0.05, delay=0.2, delay_ms=4.0),
        sync_requests=MessageFaults(drop=0.10),
        sync_replies=MessageFaults(drop=0.10, reorder=0.3),
        crashes=(
            CrashFault(
                instance=2,
                at_ms=float(stream.arrivals[2 * M // 3]),
                outage_ms=500.0,
            ),
        ),
        slowdowns=(
            SlowdownFault(
                instance=1,
                at_ms=float(stream.arrivals[M // 3]),
                duration_ms=2000.0,
                factor=3.0,
            ),
        ),
        seed=7,
    )
    faults.update(overrides)
    return FaultPlan(**faults)


def assert_run_identical(a, b):
    np.testing.assert_array_equal(a.stats.completions, b.stats.completions)
    np.testing.assert_array_equal(a.stats.assignments, b.stats.assignments)
    assert a.state_transitions == b.state_transitions
    assert a.control_messages == b.control_messages
    assert a.control_bits == b.control_bits


class TestSingleSourceBitIdentity:
    @pytest.mark.parametrize("chunk_size", [0, 2048])
    def test_matches_single_scheduler_path(self, chunk_size):
        single = run(POSGGrouping(config()), chunk_size)
        sharded = run(MultiSourcePOSGGrouping(1, config()), chunk_size)
        assert_run_identical(single, sharded)
        assert (
            single.policy.scheduler.stats() == sharded.policy.scheduler.stats()
        )

    def test_telemetry_identical_to_single_scheduler(self):
        rec_single, rec_sharded = TelemetryRecorder(), TelemetryRecorder()
        run(
            POSGGrouping(config(), telemetry=rec_single),
            2048,
            telemetry=rec_single,
        )
        run(
            MultiSourcePOSGGrouping(1, config(), telemetry=rec_sharded),
            2048,
            telemetry=rec_sharded,
        )
        assert rec_single.registry.snapshot() == rec_sharded.registry.snapshot()
        assert (
            rec_single.registry.to_prometheus()
            == rec_sharded.registry.to_prometheus()
        )

        # the run_complete event carries the policy's *name* ("posg" vs
        # "posg_multisource") — the only allowed difference; every other
        # event field must match bit for bit
        def normalized(recorder):
            events = []
            for event in recorder.tracer.events():
                if event.get("kind") == "run_complete":
                    event = {
                        key: value
                        for key, value in event.items()
                        if key != "policy"
                    }
                events.append(event)
            return events

        assert normalized(rec_single) == normalized(rec_sharded)

    def test_audit_report_identical_to_single_scheduler(self):
        audit = AuditConfig(sample_every=64)
        single = run(POSGGrouping(config()), 2048, audit=audit)
        sharded = run(MultiSourcePOSGGrouping(1, config()), 2048, audit=audit)
        assert single.audit.report() == sharded.audit.report()

    def test_faulted_s1_matches_single_scheduler(self):
        plan = chaos_plan()
        single = run(POSGGrouping(config()), 0, faults=plan)
        sharded = run(MultiSourcePOSGGrouping(1, config()), 0, faults=plan)
        assert_run_identical(single, sharded)
        assert single.faults.report() == sharded.faults.report()


class TestCrossEngineIdentity:
    @pytest.mark.parametrize("sources", [2, 4, 8])
    def test_chunked_matches_reference(self, sources):
        reference = run(MultiSourcePOSGGrouping(sources, config()), 0)
        chunked = run(MultiSourcePOSGGrouping(sources, config()), 2048)
        assert_run_identical(reference, chunked)

    @pytest.mark.parametrize("sources", [2, 4])
    def test_chunked_matches_reference_under_faults(self, sources):
        plan = chaos_plan(
            source_sync_requests={0: MessageFaults(drop=0.5)},
            source_sync_replies={1: MessageFaults(drop=0.5)},
        )
        reference = run(MultiSourcePOSGGrouping(sources, config()), 0, faults=plan)
        chunked = run(MultiSourcePOSGGrouping(sources, config()), 2048, faults=plan)
        assert_run_identical(reference, chunked)
        assert reference.faults.report() == chunked.faults.report()

    def test_chunk_size_sweep(self):
        results = [
            run(MultiSourcePOSGGrouping(4, config()), chunk)
            for chunk in (0, 64, 1000, 4096)
        ]
        for other in results[1:]:
            assert_run_identical(results[0], other)

    def test_telemetry_identical_across_engines(self):
        def instrumented(chunk):
            recorder = TelemetryRecorder()
            run(
                MultiSourcePOSGGrouping(4, config(), telemetry=recorder),
                chunk,
                telemetry=recorder,
            )
            return recorder

        rec_ref = instrumented(0)
        rec_chunk = instrumented(2048)
        assert rec_ref.registry.snapshot() == rec_chunk.registry.snapshot()
        assert rec_ref.tracer.events() == rec_chunk.tracer.events()


class TestShardedProtocolLiveness:
    def test_every_shard_synchronizes(self):
        result = run(MultiSourcePOSGGrouping(4, config()), 2048)
        for scheduler in result.policy.schedulers:
            assert scheduler.sync_rounds_completed >= 1
        merged = result.policy.stats()
        assert merged["tuples_scheduled"] == M

    def test_audit_runs_against_merged_assignment(self):
        # the audit binds to shard 0, but matrices broadcast makes every
        # shard's estimates identical, so sampling the merged stream is
        # well defined; the report must be engine-independent too
        audit = AuditConfig(sample_every=64)
        reference = run(MultiSourcePOSGGrouping(4, config()), 0, audit=audit)
        chunked = run(MultiSourcePOSGGrouping(4, config()), 2048, audit=audit)
        assert reference.audit.samples == M // 64 + 1  # indices 0, 64, ...
        assert reference.audit.report() == chunked.audit.report()


class TestPerSchedulerFaultChannels:
    def test_reply_override_hits_only_addressed_shard(self):
        # drop ALL of shard 1's sync replies: shard 1 can never complete
        # a sync round while the other shards stay live
        plan = FaultPlan(
            source_sync_replies={1: MessageFaults(drop=1.0)}, seed=3
        )
        result = run(MultiSourcePOSGGrouping(3, config()), 2048, faults=plan)
        schedulers = result.policy.schedulers
        assert schedulers[0].sync_rounds_completed >= 1
        assert schedulers[2].sync_rounds_completed >= 1
        assert schedulers[1].sync_rounds_completed == 0
        dropped = result.faults.report()["injected"]["dropped"]
        assert dropped["sync_reply"] > 0

    def test_request_override_hits_only_addressed_shard(self):
        plan = FaultPlan(
            source_sync_requests={1: MessageFaults(drop=1.0)}, seed=3
        )
        result = run(MultiSourcePOSGGrouping(3, config()), 2048, faults=plan)
        schedulers = result.policy.schedulers
        assert schedulers[0].sync_rounds_completed >= 1
        assert schedulers[2].sync_rounds_completed >= 1
        assert schedulers[1].sync_rounds_completed == 0

    def test_override_plan_without_global_faults_is_active(self):
        plan = FaultPlan(source_sync_replies={0: MessageFaults(drop=0.5)})
        assert plan.active
        assert "source_sync_replies" in plan.summary()
