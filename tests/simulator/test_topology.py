"""Tests for the event-driven stage topology and its equivalence with the
fast path."""

import numpy as np
import pytest

from repro.core.config import POSGConfig
from repro.core.grouping import (
    FullKnowledgeGrouping,
    POSGGrouping,
    RoundRobinGrouping,
)
from repro.simulator.run import simulate_stream
from repro.simulator.topology import StageTopology
from repro.workloads.distributions import ZipfItems
from repro.workloads.nonstationary import LoadShiftScenario
from repro.workloads.synthetic import StreamSpec, generate_stream


def small_stream(seed=0, m=1024, n=128, k=3):
    spec = StreamSpec(m=m, n=n, k=k)
    return generate_stream(ZipfItems(n, 1.0), spec, np.random.default_rng(seed))


class TestBasics:
    def test_runs_to_completion(self):
        stream = small_stream()
        topo = StageTopology(3, RoundRobinGrouping())
        result = topo.run(stream)
        assert result.stats.m == stream.m

    def test_single_use(self):
        stream = small_stream(m=16)
        topo = StageTopology(2, RoundRobinGrouping())
        topo.run(stream)
        with pytest.raises(RuntimeError):
            topo.run(stream)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            StageTopology(0, RoundRobinGrouping())

    def test_rejects_short_scenario(self):
        with pytest.raises(ValueError):
            StageTopology(
                5, RoundRobinGrouping(), scenario=LoadShiftScenario.constant(2)
            )


class TestEquivalenceWithFastPath:
    """The DES reference and the fast path must agree tuple-for-tuple."""

    def assert_equivalent(self, stream, k, make_policy, scenario=None, seed=7):
        fast = simulate_stream(
            stream, make_policy(), k=k, scenario=scenario,
            rng=np.random.default_rng(seed),
        )
        topo = StageTopology(k, make_policy(), scenario=scenario,
                             rng=np.random.default_rng(seed))
        slow = topo.run(stream)
        np.testing.assert_array_equal(
            fast.stats.assignments, slow.stats.assignments
        )
        np.testing.assert_allclose(
            fast.stats.completions, slow.stats.completions, rtol=1e-12
        )
        assert fast.control_messages == slow.control_messages

    def test_round_robin(self):
        self.assert_equivalent(small_stream(), 3, RoundRobinGrouping)

    def test_full_knowledge(self):
        stream = small_stream(seed=1)
        fast = simulate_stream(
            stream, lambda oracle: FullKnowledgeGrouping(oracle), k=3
        )
        topo = StageTopology(3, lambda oracle: FullKnowledgeGrouping(oracle))
        slow = topo.run(stream)
        np.testing.assert_array_equal(
            fast.stats.assignments, slow.stats.assignments
        )
        np.testing.assert_allclose(
            fast.stats.completions, slow.stats.completions, rtol=1e-12
        )

    def test_posg(self):
        config = POSGConfig(window_size=64, rows=2, cols=16)
        self.assert_equivalent(
            small_stream(seed=2, m=2048),
            3,
            lambda: POSGGrouping(config),
        )

    def test_posg_with_load_shift(self):
        config = POSGConfig(window_size=64, rows=2, cols=16)
        scenario = LoadShiftScenario(
            phases=((1.1, 1.0, 0.9), (0.9, 1.0, 1.1)), boundaries=(1024,)
        )
        self.assert_equivalent(
            small_stream(seed=3, m=2048),
            3,
            lambda: POSGGrouping(config),
            scenario=scenario,
        )

    def test_posg_under_drift(self):
        """Continuous drift: the duck-typed DriftScenario must produce
        identical results on both simulation paths."""
        from repro.workloads.nonstationary import DriftScenario

        config = POSGConfig(window_size=64, rows=2, cols=16)
        scenario = DriftScenario(
            start=(1.2, 1.0, 0.8), end=(0.8, 1.0, 1.2), duration=1500
        )
        self.assert_equivalent(
            small_stream(seed=6, m=2048),
            3,
            lambda: POSGGrouping(config),
            scenario=scenario,
        )

    def test_posg_with_data_latency(self):
        config = POSGConfig(window_size=64, rows=2, cols=16)
        stream = small_stream(seed=4, m=2048)
        fast = simulate_stream(
            stream, POSGGrouping(config), k=3, data_latency=0.5,
            rng=np.random.default_rng(11),
        )
        topo = StageTopology(
            3, POSGGrouping(config), data_latency=0.5,
            rng=np.random.default_rng(11),
        )
        slow = topo.run(stream)
        np.testing.assert_array_equal(
            fast.stats.assignments, slow.stats.assignments
        )
        np.testing.assert_allclose(
            fast.stats.completions, slow.stats.completions, rtol=1e-12
        )
